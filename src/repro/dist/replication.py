"""Replicated shards: the 2PC participant as a Paxos state machine.

PR 8's shards were single processes — one injected crash lost the shard
and stranded the coordinator until presumed-abort recovery cleaned up.
Here each shard becomes a **replica group**: its 2PC endpoint state
(validation verdicts, prepare locks, decisions, applied writes) is a
deterministic state machine driven by the group's replicated log from
:mod:`repro.dist.paxos`, so any replica that holds the chosen log prefix
can reconstruct the shard, and a crash of the leader mid-2PC costs an
election, not an outcome.

The key protocol decision: **2PC actions are durable in the shard log
before they are externalized.**

* A ``prepare`` is answered only after the command ``("prepare", txn,
  reads, writes)`` is *chosen* and applied — validation (OCC backward
  check + prepare-lock conflict) runs at apply time, against replicated
  state, on every replica identically.  The vote the leader then sends
  is a fact of the log: any future leader re-derives the same vote from
  the same chosen entry, so a YES can never be forgotten by a crash and
  a NO can never flip to YES.
* A ``decision`` is likewise chosen as ``("decide", txn, outcome)``
  before the acknowledgement is sent; applying it releases locks and
  installs writes.  Application is **idempotent by txn id**: duplicate
  decision messages are re-acknowledged without burning a log slot, and
  duplicate chosen entries (two successive leaders proposing the same
  decree) are detected and skipped at apply time.

Client traffic handling follows the leader-lease rules: a follower
forwards to its leader hint (one hop, marked ``fwd`` to prevent loops);
a replica that has lost ``suspect_after`` elections in a row — the
signature of being on the minority side of a partition — answers
``unavail`` with the ``repl-no-quorum`` taxonomy code so the
coordinator sheds instead of hanging; an established leader whose
quorum lease lapsed does the same.

Chaos: :class:`ReplicaCrashSpec` extends PR 8's coordinator
``CrashSpec`` idiom to replicas — crash the *leader* at a named
protocol transition (prepare/decide, logged/applied: the four points
where durable and externalized state can diverge) for the nth distinct
transaction, or crash a named replica (or the current leader) at a
virtual time via the :class:`ChaosController` pseudo-node.  Restarts
keep the durable log, so the harness exercises real catch-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.reasons import ABORT_REPL_NO_QUORUM
from repro.engine.storage import DataStore
from repro.obs.trace import Tracer

from .network import Message, SimulatedNetwork
from .paxos import LEADER, PaxosReplica, ReplicationConfig
from .recovery import ABORT, COMMIT
from .tpc import COORDINATOR, TpcConfig

#: the four replica-group crash points: after a 2PC command is logged
#: (locally appended, possibly before any follower holds it) and after
#: it is applied (state mutated, vote/ack not yet sent) — for each of
#: the two command kinds
REPL_PREPARE_LOGGED = "repl-prepare-logged"
REPL_PREPARE_APPLIED = "repl-prepare-applied"
REPL_DECIDE_LOGGED = "repl-decide-logged"
REPL_DECIDE_APPLIED = "repl-decide-applied"

REPL_CRASH_POINTS = (
    REPL_PREPARE_LOGGED,
    REPL_PREPARE_APPLIED,
    REPL_DECIDE_LOGGED,
    REPL_DECIDE_APPLIED,
)


@dataclass(frozen=True)
class ReplicaCrashSpec:
    """Crash one replica of one shard's group, then restart it.

    Two trigger styles (exactly one must be set):

    * ``transition`` — crash the group's **leader** the ``txn_index``-th
      distinct transaction it carries through that protocol transition
      (mirrors the coordinator's ``CrashSpec``);
    * ``at`` — crash at a virtual time, either the named ``replica`` or
      (``replica=None``) whoever leads the group at that instant.
    """

    shard: str
    transition: Optional[str] = None
    txn_index: int = 0
    at: Optional[float] = None
    replica: Optional[str] = None
    restart_delay: float = 12.0

    def __post_init__(self) -> None:
        if (self.transition is None) == (self.at is None):
            raise ValueError(
                "exactly one of transition= and at= must be set, got "
                f"transition={self.transition!r} at={self.at!r}"
            )
        if self.transition is not None and self.transition not in REPL_CRASH_POINTS:
            raise ValueError(
                f"unknown replica crash transition {self.transition!r}; "
                f"expected one of {REPL_CRASH_POINTS}"
            )
        if self.at is not None and self.at < 0:
            raise ValueError(f"crash time must be non-negative, got {self.at!r}")
        if self.txn_index < 0:
            raise ValueError(f"txn_index must be >= 0, got {self.txn_index!r}")
        if self.restart_delay <= 0:
            raise ValueError(
                f"restart_delay must be positive, got {self.restart_delay!r}"
            )


class ReplicaCrashPlan:
    """Consume :class:`ReplicaCrashSpec` triggers deterministically.

    Transition triggers count *distinct* transactions per (shard,
    transition) — a retried prepare for the same transaction does not
    advance the count — and each spec fires at most once.
    """

    def __init__(self, specs: Sequence[ReplicaCrashSpec] = ()) -> None:
        self._pending: List[ReplicaCrashSpec] = [
            spec for spec in specs if spec.transition is not None
        ]
        self.timed: List[ReplicaCrashSpec] = sorted(
            (spec for spec in specs if spec.at is not None),
            key=lambda spec: (spec.at, spec.shard, spec.replica or ""),
        )
        self._seen: Dict[Tuple[str, str], List[int]] = {}

    def should_crash(
        self, shard: str, transition: str, txn_id: int
    ) -> Optional[ReplicaCrashSpec]:
        seen = self._seen.setdefault((shard, transition), [])
        if txn_id not in seen:
            seen.append(txn_id)
        position = seen.index(txn_id)
        for spec in self._pending:
            if (
                spec.shard == shard
                and spec.transition == transition
                and spec.txn_index == position
            ):
                self._pending.remove(spec)
                return spec
        return None


# ----------------------------------------------------------------------
# the replicated participant
# ----------------------------------------------------------------------


class ReplicatedParticipant(PaxosReplica):
    """One replica of one shard: consensus member + 2PC state machine.

    Exposes the same introspection surface as the unreplicated
    :class:`~repro.dist.tpc.ShardParticipant` (``prepared``, ``locks``,
    ``outcomes``, ``applied``, ``applied_writes``, ``in_doubt``) so the
    PR-8 oracles judge a replica exactly as they judge a shard.
    """

    def __init__(
        self,
        name: str,
        shard: str,
        peers: List[str],
        initial_data: Dict[str, Any],
        network: SimulatedNetwork,
        tpc_config: TpcConfig,
        config: Optional[ReplicationConfig] = None,
        seed: int = 0,
        crash_plan: Optional[ReplicaCrashPlan] = None,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.shard = shard
        self.tpc_config = tpc_config
        self.crash_plan = crash_plan
        self.initial_data = dict(initial_data)
        self.store = DataStore(self.initial_data)
        #: txn → (reads, writes): chosen-and-validated, decision pending
        self.prepared: Dict[int, Tuple[Dict[str, int], Dict[str, Any]]] = {}
        self.locks: Dict[str, int] = {}
        self.outcomes: Dict[int, str] = {}
        self.applied: Set[int] = set()
        self.applied_writes: Dict[int, Dict[str, Any]] = {}
        # leader-local dedupe: commands proposed but not yet applied
        self._pending_prepares: Set[int] = set()
        self._pending_decides: Set[int] = set()
        self._status_timers: Dict[int, int] = {}
        self._status_delays: Dict[int, float] = {}
        super().__init__(
            name,
            group=shard,
            peers=peers,
            network=network,
            config=config,
            seed=seed,
            metrics=metrics,
            tracer=tracer,
        )

    @property
    def in_doubt(self) -> Set[int]:
        """Transactions prepared but not yet decided (locks held)."""
        return set(self.prepared)

    # ------------------------------------------------------------------
    # client (2PC) traffic: gate, forward, or serve
    # ------------------------------------------------------------------
    def on_client_message(self, now: float, message: Message) -> None:
        kind = message.kind
        if kind not in ("read-req", "prepare", "decision"):
            raise ValueError(f"{self.name}: unknown message kind {kind!r}")
        payload = message.payload
        if self.role != LEADER:
            if self.quorum_suspect():
                # repeated failed elections: we are very likely on the
                # minority side of a partition — shed loudly, don't hang
                self._send_unavail(payload)
                return
            hint = self.leader_hint
            if hint is not None and hint != self.name and not payload.get("fwd"):
                forwarded = dict(payload)
                forwarded["fwd"] = True
                self.network.send(self.name, hint, kind, forwarded)
            return
        if not self.is_established_leader():
            # new leader, term no-op not yet chosen: serving now could
            # vote on a log we cannot yet commit into; the coordinator's
            # retry (re-routed here) covers the establishment gap
            return
        if not self.has_lease(now):
            self._send_unavail(payload)
            return
        if kind == "read-req":
            self._on_read_req(now, payload)
        elif kind == "prepare":
            self._on_prepare(now, payload)
        else:
            self._on_decision(now, payload)

    def _send_unavail(self, payload: Dict[str, Any]) -> None:
        self.metrics.incr("dist.repl.unavail")
        self.network.send(
            self.name,
            COORDINATOR,
            "unavail",
            {
                "txn": payload["txn"],
                "shard": self.shard,
                "code": ABORT_REPL_NO_QUORUM,
                "replica": self.name,
            },
        )

    def _on_read_req(self, now: float, payload: Dict[str, Any]) -> None:
        values: Dict[str, Any] = {}
        versions: Dict[str, int] = {}
        for key in payload["keys"]:
            version = self.store.read_version(key)
            values[key] = version.value
            versions[key] = version.version
        self.network.send(
            self.name,
            COORDINATOR,
            "read-reply",
            {
                "txn": payload["txn"],
                "shard": self.shard,
                "values": values,
                "versions": versions,
                "replica": self.name,
            },
        )

    def _on_prepare(self, now: float, payload: Dict[str, Any]) -> None:
        txn_id = payload["txn"]
        if txn_id in self.outcomes:
            # decided (or NO-voted: recorded as abort) — re-answer from
            # the record; a forgotten transaction can never flip to YES
            self._send_vote(
                txn_id, self.outcomes[txn_id] == COMMIT, "duplicate prepare after decision"
            )
            return
        if txn_id in self.prepared:
            self._send_vote(txn_id, True, "duplicate prepare while prepared")
            return
        if txn_id in self._pending_prepares:
            return  # already in the log pipeline; the vote follows choice
        self._pending_prepares.add(txn_id)
        self._propose_2pc(
            now,
            ("prepare", txn_id, dict(payload["reads"]), dict(payload["writes"])),
            REPL_PREPARE_LOGGED,
            txn_id,
        )

    def _on_decision(self, now: float, payload: Dict[str, Any]) -> None:
        txn_id = payload["txn"]
        outcome = payload["outcome"]
        if txn_id in self._pending_decides:
            return  # the ack follows choice; don't burn another log slot
        if txn_id in self.outcomes and txn_id not in self.prepared:
            # decision already chosen and applied: idempotent re-ack by
            # txn id, no new log entry for the duplicate
            self._send_ack(txn_id)
            return
        self._pending_decides.add(txn_id)
        self._propose_2pc(
            now, ("decide", txn_id, outcome), REPL_DECIDE_LOGGED, txn_id
        )

    def _propose_2pc(
        self, now: float, command: Tuple[Any, ...], crash_point: str, txn_id: int
    ) -> None:
        # inline `propose` so the crash point sits between the local
        # append and the replication broadcast — the mid-round window
        # where only the (about-to-die) leader holds the entry
        self.log.append((self.current_term, command))
        self.metrics.incr("dist.repl.proposals")
        if self._maybe_crash(now, crash_point, txn_id):
            return
        self._advance_commit(now)
        self._broadcast_appends(now)

    def _send_vote(self, txn_id: int, vote: bool, reason: str) -> None:
        self.network.send(
            self.name,
            COORDINATOR,
            "vote",
            {
                "txn": txn_id,
                "shard": self.shard,
                "vote": vote,
                "reason": reason,
                "replica": self.name,
            },
        )

    def _send_ack(self, txn_id: int) -> None:
        self.network.send(
            self.name,
            COORDINATOR,
            "ack",
            {"txn": txn_id, "shard": self.shard, "replica": self.name},
        )

    # ------------------------------------------------------------------
    # the replicated state machine: apply chosen 2PC commands
    # ------------------------------------------------------------------
    def apply_command(self, now: float, index: int, command: Tuple[Any, ...]) -> None:
        kind = command[0]
        if kind == "noop":
            return
        if kind == "prepare":
            _, txn_id, reads, writes = command
            self._pending_prepares.discard(txn_id)
            self._apply_prepare(now, txn_id, reads, writes)
        elif kind == "decide":
            _, txn_id, outcome = command
            self._pending_decides.discard(txn_id)
            self._apply_decide(now, txn_id, outcome)
        else:
            raise ValueError(f"{self.name}: unknown log command {command!r}")

    def _apply_prepare(
        self, now: float, txn_id: int, reads: Dict[str, int], writes: Dict[str, Any]
    ) -> None:
        if txn_id in self.outcomes or txn_id in self.prepared:
            # duplicate chosen entry (e.g. two successive leaders each
            # proposed the coordinator's retried prepare): the first
            # application decided — re-derive the same vote, mutate nothing
            if self.role == LEADER:
                vote = txn_id in self.prepared or self.outcomes.get(txn_id) == COMMIT
                self._send_vote(txn_id, vote, "duplicate prepare entry")
            return
        reason = self._validate(txn_id, reads, writes)
        if reason is not None:
            # the NO is durable: this chosen entry fixes the verdict on
            # every replica, so no future leader can answer differently
            self.outcomes[txn_id] = ABORT
            self.metrics.incr("dist.participant.no_votes")
            if self.role == LEADER:
                self._send_vote(txn_id, False, reason)
            return
        self.prepared[txn_id] = (dict(reads), dict(writes))
        for key in sorted(set(reads) | set(writes)):
            self.locks[key] = txn_id
        self.metrics.incr("dist.participant.prepares")
        if self.role == LEADER:
            if self._maybe_crash(now, REPL_PREPARE_APPLIED, txn_id):
                return
            self._arm_status_timer(txn_id)
            self._send_vote(txn_id, True, "validated")

    def _validate(
        self, txn_id: int, reads: Dict[str, int], writes: Dict[str, Any]
    ) -> Optional[str]:
        """OCC validation against replicated state — identical on every
        replica because it runs at apply time over the chosen prefix."""
        for key in sorted(set(reads) | set(writes)):
            holder = self.locks.get(key)
            if holder is not None and holder != txn_id:
                return f"{key!r} prepare-locked by T{holder}"
        for key in sorted(reads):
            current = self.store.version_number(key)
            if current != reads[key]:
                return (
                    f"stale read of {key!r}: validated v{reads[key]}, "
                    f"committed is v{current}"
                )
        return None

    def _apply_decide(self, now: float, txn_id: int, outcome: str) -> None:
        record = self.prepared.pop(txn_id, None)
        if record is not None:
            reads, writes = record
            for key in sorted(set(reads) | set(writes)):
                if self.locks.get(key) == txn_id:
                    del self.locks[key]
            if outcome == COMMIT:
                for key in sorted(writes):
                    self.store.write(key, writes[key], writer=txn_id)
                self.applied.add(txn_id)
                self.applied_writes[txn_id] = dict(writes)
                self.metrics.incr("dist.participant.applies")
            self.outcomes[txn_id] = outcome
        elif txn_id not in self.outcomes:
            # a decision for a transaction this shard never prepared can
            # only be an abort (commit requires our YES vote)
            self.outcomes[txn_id] = outcome
        if self.role == LEADER:
            self._cancel_status_timer(txn_id)
            if self._maybe_crash(now, REPL_DECIDE_APPLIED, txn_id):
                return
            self._send_ack(txn_id)

    # ------------------------------------------------------------------
    # status inquiries: a prepared leader must not hold locks forever
    # ------------------------------------------------------------------
    def _arm_status_timer(self, txn_id: int) -> None:
        delay = self._status_delays.get(txn_id, 0.0)
        delay = (
            min(delay * self.tpc_config.backoff, self.tpc_config.max_backoff)
            if delay
            else self.tpc_config.status_timeout
        )
        self._status_delays[txn_id] = delay
        self._status_timers[txn_id] = self.network.set_timer(
            self.name, delay, "repl-status", {"txn": txn_id}
        )

    def _cancel_status_timer(self, txn_id: int) -> None:
        timer_id = self._status_timers.pop(txn_id, None)
        if timer_id is not None:
            self.network.cancel_timer(timer_id)
        self._status_delays.pop(txn_id, None)

    def on_client_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        if kind != "repl-status":
            raise ValueError(f"{self.name}: unknown timer kind {kind!r}")
        txn_id = payload["txn"]
        self._status_timers.pop(txn_id, None)
        if self.role != LEADER or txn_id not in self.prepared:
            return
        self.metrics.incr("dist.participant.status_inquiries")
        self.network.send(
            self.name,
            COORDINATOR,
            "status-req",
            {"txn": txn_id, "shard": self.shard, "replica": self.name},
        )
        self._arm_status_timer(txn_id)

    # ------------------------------------------------------------------
    # consensus hooks
    # ------------------------------------------------------------------
    def on_elected(self, now: float) -> None:
        # inherited in-doubt transactions (chosen prepares without chosen
        # decisions) restart their status inquiries under the new leader
        for txn_id in sorted(self.prepared):
            self._arm_status_timer(txn_id)

    def on_step_down(self, now: float) -> None:
        for txn_id in sorted(self._status_timers):
            self.network.cancel_timer(self._status_timers[txn_id])
        self._status_timers = {}
        self._status_delays = {}
        # proposed-but-unchosen dedupe guards are leader-local; a command
        # still in our log may yet be chosen, and apply-time dedupe (by
        # txn id) handles the duplicate if a new leader re-proposes it
        self._pending_prepares = set()
        self._pending_decides = set()

    def reset_state(self, now: float) -> None:
        self.store = DataStore(self.initial_data)
        self.prepared = {}
        self.locks = {}
        self.outcomes = {}
        self.applied = set()
        self.applied_writes = {}
        self._pending_prepares = set()
        self._pending_decides = set()
        self._status_timers = {}
        self._status_delays = {}

    # ------------------------------------------------------------------
    # chaos
    # ------------------------------------------------------------------
    def _maybe_crash(self, now: float, transition: str, txn_id: int) -> bool:
        if self.crash_plan is None:
            return False
        spec = self.crash_plan.should_crash(self.shard, transition, txn_id)
        if spec is None:
            return False
        self.crash(now, spec.restart_delay)
        return True


# ----------------------------------------------------------------------
# the group view
# ----------------------------------------------------------------------


class ReplicaGroup:
    """One shard's replica set, plus the adapters the oracles consume.

    The group presents the unreplicated participant's introspection
    surface (``applied``, ``outcomes``, ``locks``, ``in_doubt``,
    ``applied_writes``, ``store``) by delegating to its *authoritative*
    replica — the live replica that has applied the most of the chosen
    log (ties broken by name).  At quiescence every live replica agrees
    with it; the replication oracles check exactly that.
    """

    def __init__(self, shard: str, replicas: Sequence[ReplicatedParticipant]) -> None:
        self.shard = shard
        self.name = shard
        self.replicas = list(replicas)

    def replica(self, name: str) -> ReplicatedParticipant:
        for rep in self.replicas:
            if rep.name == name:
                return rep
        raise KeyError(f"group {self.shard} has no replica {name!r}")

    @property
    def live(self) -> List[ReplicatedParticipant]:
        return [rep for rep in self.replicas if rep.alive]

    def current_leader(self) -> Optional[ReplicatedParticipant]:
        leaders = [rep for rep in self.live if rep.role == LEADER]
        if not leaders:
            return None
        return max(leaders, key=lambda rep: (rep.current_term, rep.name))

    @property
    def authoritative(self) -> ReplicatedParticipant:
        pool = self.live or self.replicas
        return max(pool, key=lambda rep: (rep.last_applied, rep.name))

    # oracle-facing adapters (the ShardParticipant surface)
    @property
    def store(self) -> DataStore:
        return self.authoritative.store

    @property
    def prepared(self) -> Dict[int, Tuple[Dict[str, int], Dict[str, Any]]]:
        return self.authoritative.prepared

    @property
    def locks(self) -> Dict[str, int]:
        return self.authoritative.locks

    @property
    def outcomes(self) -> Dict[int, str]:
        return self.authoritative.outcomes

    @property
    def applied(self) -> Set[int]:
        return self.authoritative.applied

    @property
    def applied_writes(self) -> Dict[int, Dict[str, Any]]:
        return self.authoritative.applied_writes

    @property
    def in_doubt(self) -> Set[int]:
        return self.authoritative.in_doubt

    def quiescent(self) -> bool:
        """All replicas up, one established leader, logs converged,
        everything chosen applied, no in-doubt transactions."""
        if any(not rep.alive for rep in self.replicas):
            return False
        leader = self.current_leader()
        if leader is None or not leader.is_established_leader():
            return False
        length = len(leader.log)
        for rep in self.replicas:
            if len(rep.log) != length:
                return False
            if rep.commit_index != length or rep.last_applied != length:
                return False
            if rep.prepared or rep._pending_prepares or rep._pending_decides:
                return False
        return True


# ----------------------------------------------------------------------
# timed chaos
# ----------------------------------------------------------------------


class ChaosController:
    """A pseudo-node that fires timed :class:`ReplicaCrashSpec` triggers.

    Registered on the network like any node, but never crashes itself,
    so its timers are ordinary events in the deterministic heap.  A
    leader-targeted spec (``replica=None``) resolves its victim at fire
    time: the group's current leader, or — leaderless mid-election — the
    live replica with the highest term (ties by name), which is the most
    likely next leader.
    """

    name = "chaos"
    accepting_messages = True
    accepting_timers = True

    def __init__(
        self,
        network: SimulatedNetwork,
        groups: Dict[str, ReplicaGroup],
        specs: Sequence[ReplicaCrashSpec],
    ) -> None:
        self.network = network
        self.groups = groups
        self.specs = list(specs)
        self.pending = 0
        for index, spec in enumerate(self.specs):
            if spec.shard not in groups:
                raise KeyError(f"chaos spec targets unknown shard {spec.shard!r}")
            self.network.set_timer(self.name, spec.at, "chaos-crash", {"index": index})
            self.pending += 1

    def on_message(self, now: float, message: Message) -> None:
        raise ValueError("the chaos controller exchanges no messages")

    def on_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        if kind != "chaos-crash":
            raise ValueError(f"chaos: unknown timer kind {kind!r}")
        self.pending -= 1
        spec = self.specs[payload["index"]]
        group = self.groups[spec.shard]
        if spec.replica is not None:
            target: Optional[ReplicatedParticipant] = group.replica(spec.replica)
        else:
            target = group.current_leader()
            if target is None:
                live = group.live
                if live:
                    target = max(live, key=lambda rep: (rep.current_term, rep.name))
        if target is not None and target.alive:
            target.crash(now, spec.restart_delay)


def replica_seed(seed: int, shard_index: int, replica_index: int) -> int:
    """The per-replica RNG seed: arithmetic (never ``hash()``) so runs
    replay byte-for-byte across processes."""
    return seed * 1_000_003 + shard_index * 8_191 + replica_index * 127 + 17
