"""Two-phase commit over the simulated network: cross-shard transactions.

This is the layer the ROADMAP's "distributed transactions" item asks
for: one transaction may now touch keys on several shards, and the
shards must agree on its outcome even when messages are lost,
duplicated, reordered, delayed past timeouts, or the coordinator
crashes mid-protocol.

The protocol is **distributed optimistic concurrency control with a
presumed-abort two-phase commit** — Kung & Robinson's validate-at-commit
idea stretched across a network:

1. **Read phase.**  The coordinator fetches the transaction's read set
   from the owning shards (``read-req``/``read-reply``), recording the
   committed version of every value, then executes the transaction
   program locally: transforms see the full cross-shard read buffer, and
   the outputs become a per-shard write set.  No locks are held.
2. **Prepare / vote.**  Each involved shard receives ``prepare`` with
   its slice of read versions and writes.  The participant *validates*
   — every read version must still be current, and no touched key may be
   prepare-locked by a rival — then locks the footprint and votes YES,
   or votes NO and forgets (a NO vote is an abort commitment, so a
   duplicate prepare is re-answered NO).  Validation-at-prepare is the
   serial-equivalence argument: a transaction whose reads are still
   current when its locks are granted behaves as if it executed at its
   decision point.
3. **Decision.**  All YES → the coordinator logs COMMIT in the
   write-ahead :class:`~repro.dist.recovery.DecisionLog` and broadcasts;
   any NO or an exhausted retry budget → abort (presumed: not logged).
   Participants apply or discard, release locks, and acknowledge;
   acks retire the log entry (``end``).

Every message the coordinator waits on has a **timeout with bounded
retry and exponential backoff**; a participant holding prepare locks
runs its own status-inquiry timer (unbounded, capped backoff), which is
what makes the protocol non-blocking *in practice* once the coordinator
recovers — presumed abort answers any inquiry the log cannot.

**Graceful degradation.**  The coordinator tracks a sliding
timeout/abort window per shard; a shard whose failure rate crosses the
threshold is marked degraded, new cross-shard admissions touching it are
shed immediately (``2pc-shed``) except for a deterministic every-Kth
probe, and the global in-flight admission limit (``max_in_flight`` — the
distributed sibling of the executor's ``max_concurrent`` backpressure
path) drops to ``degraded_max_in_flight`` so the backlog queue, not the
network, absorbs the burst.  All of it is surfaced through ``dist.*``
metrics counters.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dist.network import LatencyModel, Message, SimulatedNetwork
from repro.dist.recovery import (
    ABORT,
    COMMIT,
    CrashPlan,
    DecisionLog,
    AFTER_DECISION,
    AFTER_VOTES,
    BEFORE_PREPARE,
    MID_BROADCAST,
)
from repro.engine.faults import NetworkFaultPlan, NetworkFaultSpec, network_plan_from
from repro.engine.metrics import Metrics
from repro.engine.operations import TransactionSpec
from repro.engine.reasons import (
    ABORT_REPL_NO_QUORUM,
    ABORT_TPC_COORDINATOR_CRASH,
    ABORT_TPC_PARTICIPANT_NO,
    ABORT_TPC_SHED,
    ABORT_TPC_TIMEOUT,
)
from repro.engine.storage import DataStore, ShardedDataStore
from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_TRACER, Tracer

COORDINATOR = "coordinator"


@dataclass(frozen=True)
class TpcConfig:
    """Timeout, retry, admission and degradation knobs for the 2PC layer.

    Timeouts are in virtual time and must clear a round trip under the
    configured latency model; retries multiply the previous delay by
    ``backoff`` (capped at ``max_backoff``) so a congested or partitioned
    shard sees exponentially spaced resends, not a retry storm.
    """

    read_timeout: float = 6.0
    vote_timeout: float = 8.0
    ack_timeout: float = 8.0
    status_timeout: float = 12.0
    max_retries: int = 4
    backoff: float = 2.0
    max_backoff: float = 64.0
    #: admission control: cross-shard transactions in flight at once
    max_in_flight: int = 8
    #: the reduced limit while any shard is degraded (backpressure mode)
    degraded_max_in_flight: int = 2
    #: a shard is degraded when timed-out exchanges exceed this fraction
    #: of its sliding window (once min_health_samples outcomes are in
    #: it); NO votes are *healthy* responses and never count against it
    shed_threshold: float = 0.5
    health_window: int = 8
    min_health_samples: int = 4
    #: every Kth admission touching a degraded shard goes through as a
    #: health probe, so a recovered shard can clear its own reputation
    probe_every: int = 4
    #: client-side retry policy for aborted/shed transactions
    client_max_attempts: int = 3
    client_retry_delay: float = 6.0

    def __post_init__(self) -> None:
        for name in ("read_timeout", "vote_timeout", "ack_timeout", "status_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_in_flight < 1 or self.degraded_max_in_flight < 1:
            raise ValueError("in-flight limits must be >= 1")
        if not 0.0 < self.shed_threshold <= 1.0:
            raise ValueError("shed_threshold must be in (0, 1]")
        if self.probe_every < 1:
            raise ValueError("probe_every must be >= 1")
        if self.client_max_attempts < 1:
            raise ValueError("client_max_attempts must be >= 1")


# ----------------------------------------------------------------------
# the participant: one per shard
# ----------------------------------------------------------------------


class _Prepared:
    """A participant's record of a YES-voted transaction (locks held)."""

    __slots__ = ("txn_id", "reads", "writes", "timer_id", "status_delay")

    def __init__(self, txn_id: int, reads: Dict[str, int], writes: Dict[str, Any]) -> None:
        self.txn_id = txn_id
        self.reads = reads
        self.writes = writes
        self.timer_id: Optional[int] = None
        self.status_delay = 0.0


class ShardParticipant:
    """One shard's 2PC endpoint: validate, vote, hold locks, apply.

    The participant owns the shard's :class:`~repro.engine.storage.
    DataStore` — the same versioned storage substrate the per-shard
    engine kernels run on — and uses its version counters for
    OCC-style backward validation at prepare time.  Prepare locks are
    the only concurrency control it needs *between* messages because
    each message is processed atomically by the network's event loop;
    their job is to serialize *across* the prepare→decision window.

    Duplicate- and reorder-tolerance is by construction: every handler
    is idempotent (a known outcome is re-acknowledged, a prepared
    transaction re-votes its recorded vote, a NO vote is remembered as
    an abort commitment and never upgraded).
    """

    def __init__(
        self,
        name: str,
        store: DataStore,
        network: SimulatedNetwork,
        config: TpcConfig,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.name = name
        self.store = store
        self.network = network
        self.config = config
        self.metrics = metrics if metrics is not None else network.metrics
        self.accepting_messages = True
        self.accepting_timers = True
        self.prepared: Dict[int, _Prepared] = {}
        self.locks: Dict[str, int] = {}
        #: decided transactions this shard took part in (idempotency +
        #: the atomicity oracle's evidence)
        self.outcomes: Dict[int, str] = {}
        self.applied: Set[int] = set()
        #: the write set actually installed per committed transaction —
        #: the replay-consistency oracle's raw material
        self.applied_writes: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def on_message(self, now: float, message: Message) -> None:
        handler = getattr(self, "_on_" + message.kind.replace("-", "_"), None)
        if handler is None:
            raise ValueError(f"{self.name}: unknown message kind {message.kind!r}")
        handler(now, message.payload)

    def _on_read_req(self, now: float, payload: Dict[str, Any]) -> None:
        txn_id = payload["txn"]
        values: Dict[str, Any] = {}
        versions: Dict[str, int] = {}
        for key in payload["keys"]:
            version = self.store.read_version(key)
            values[key] = version.value
            versions[key] = version.version
        self.network.send(
            self.name,
            COORDINATOR,
            "read-reply",
            {"txn": txn_id, "shard": self.name, "values": values, "versions": versions},
        )

    def _on_prepare(self, now: float, payload: Dict[str, Any]) -> None:
        txn_id = payload["txn"]
        if txn_id in self.outcomes:
            # duplicate prepare after the decision: re-answer from the
            # recorded outcome (NO votes were recorded as aborts, so a
            # forgotten transaction can never flip to YES)
            vote = self.outcomes[txn_id] == COMMIT
            self._send_vote(txn_id, vote, "duplicate prepare after decision")
            return
        record = self.prepared.get(txn_id)
        if record is not None:
            self._send_vote(txn_id, True, "duplicate prepare while prepared")
            return
        reads: Dict[str, int] = payload["reads"]
        writes: Dict[str, Any] = payload["writes"]
        footprint = sorted(set(reads) | set(writes))
        reason = None
        for key in footprint:
            holder = self.locks.get(key)
            if holder is not None and holder != txn_id:
                reason = f"{key!r} prepare-locked by T{holder}"
                break
        if reason is None:
            for key in sorted(reads):
                current = self.store.version_number(key)
                if current != reads[key]:
                    reason = (
                        f"stale read of {key!r}: validated v{reads[key]}, "
                        f"committed is v{current}"
                    )
                    break
        if reason is not None:
            # presumed abort: a NO vote is an abort commitment — record
            # it so duplicates re-answer NO, and hold no state
            self.outcomes[txn_id] = ABORT
            self.metrics.incr("dist.participant.no_votes")
            self._send_vote(txn_id, False, reason)
            return
        record = _Prepared(txn_id, dict(reads), dict(writes))
        self.prepared[txn_id] = record
        for key in footprint:
            self.locks[key] = txn_id
        self.metrics.incr("dist.participant.prepares")
        self._arm_status_timer(record)
        self._send_vote(txn_id, True, "validated")

    def _send_vote(self, txn_id: int, vote: bool, reason: str) -> None:
        self.network.send(
            self.name,
            COORDINATOR,
            "vote",
            {"txn": txn_id, "shard": self.name, "vote": vote, "reason": reason},
        )

    def _on_decision(self, now: float, payload: Dict[str, Any]) -> None:
        txn_id = payload["txn"]
        outcome = payload["outcome"]
        record = self.prepared.pop(txn_id, None)
        if record is not None:
            if record.timer_id is not None:
                self.network.cancel_timer(record.timer_id)
            for key in sorted(set(record.reads) | set(record.writes)):
                if self.locks.get(key) == txn_id:
                    del self.locks[key]
            if outcome == COMMIT:
                for key in sorted(record.writes):
                    self.store.write(key, record.writes[key], writer=txn_id)
                self.applied.add(txn_id)
                self.applied_writes[txn_id] = dict(record.writes)
                self.metrics.incr("dist.participant.applies")
            self.outcomes[txn_id] = outcome
        elif txn_id not in self.outcomes:
            # a decision for a transaction this shard never prepared can
            # only be an abort (commit requires our YES vote); remember it
            self.outcomes[txn_id] = outcome
        self.network.send(
            self.name, COORDINATOR, "ack", {"txn": txn_id, "shard": self.name}
        )

    # ------------------------------------------------------------------
    # the status-inquiry path: prepared participants must not block forever
    # ------------------------------------------------------------------
    def _arm_status_timer(self, record: _Prepared) -> None:
        record.status_delay = (
            min(record.status_delay * self.config.backoff, self.config.max_backoff)
            if record.status_delay
            else self.config.status_timeout
        )
        record.timer_id = self.network.set_timer(
            self.name, record.status_delay, "status", {"txn": record.txn_id}
        )

    def on_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        if kind != "status":
            raise ValueError(f"{self.name}: unknown timer kind {kind!r}")
        txn_id = payload["txn"]
        record = self.prepared.get(txn_id)
        if record is None:
            return
        # still in doubt: ask the coordinator (presumed abort guarantees
        # an answer once it is up), then re-arm with capped backoff —
        # unbounded retries are safe because the inquiry stops the moment
        # a decision arrives
        self.metrics.incr("dist.participant.status_inquiries")
        self.network.send(
            self.name, COORDINATOR, "status-req", {"txn": txn_id, "shard": self.name}
        )
        self._arm_status_timer(record)

    # ------------------------------------------------------------------
    # introspection (the oracles' view)
    # ------------------------------------------------------------------
    @property
    def in_doubt(self) -> Set[int]:
        """Transactions prepared but not yet decided (locks held)."""
        return set(self.prepared)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

#: coordinator-side transaction states
_READING = "reading"
_PREPARING = "preparing"
_DECIDED = "decided"


class _TxnState:
    """The coordinator's volatile record of one in-flight transaction."""

    __slots__ = (
        "txn_id",
        "index",
        "spec",
        "state",
        "shards",
        "read_shards",
        "pending",
        "values",
        "versions",
        "writes_by_shard",
        "votes",
        "acked",
        "outcome",
        "code",
        "reason",
        "retries",
        "delay",
        "timer_id",
    )

    def __init__(self, txn_id: int, index: int, spec: TransactionSpec) -> None:
        self.txn_id = txn_id
        self.index = index
        self.spec = spec
        self.state = _READING
        self.shards: Tuple[str, ...] = ()
        self.read_shards: Tuple[str, ...] = ()
        self.pending: Set[str] = set()
        self.values: Dict[str, Any] = {}
        self.versions: Dict[str, int] = {}
        self.writes_by_shard: Dict[str, Dict[str, Any]] = {}
        self.votes: Dict[str, bool] = {}
        self.acked: Set[str] = set()
        self.outcome: Optional[str] = None
        self.code: Optional[str] = None
        self.reason = ""
        self.retries = 0
        self.delay = 0.0
        self.timer_id: Optional[int] = None


class _ShardHealth:
    """A sliding window of per-shard outcomes driving degradation."""

    __slots__ = ("window", "outcomes")

    def __init__(self, window: int) -> None:
        self.window = window
        self.outcomes: deque = deque(maxlen=window)

    def record(self, ok: bool) -> None:
        self.outcomes.append(ok)

    def failure_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for ok in self.outcomes if not ok) / len(self.outcomes)


class TwoPhaseCommitCoordinator:
    """Drive cross-shard transactions through read → prepare → decide.

    All per-transaction state here is **volatile** — a crash wipes it —
    except :attr:`log`, the write-ahead :class:`DecisionLog` standing in
    for stable storage.  :meth:`recover` replays that log: logged
    commits are re-broadcast until acknowledged, everything else is
    presumed aborted.  The ``crash_plan`` is consulted at each
    :data:`~repro.dist.recovery.CRASH_POINTS` transition, which is what
    lets the conformance sweep kill the coordinator at *every* state and
    assert that no shard ever disagrees on an outcome.
    """

    name = COORDINATOR

    def __init__(
        self,
        network: SimulatedNetwork,
        shard_of: Callable[[str], str],
        shard_names: Sequence[str],
        config: Optional[TpcConfig] = None,
        crash_plan: Optional[CrashPlan] = None,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
        on_complete: Optional[Callable[[int, int, str, Optional[str], str], None]] = None,
        replica_map: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        self.network = network
        self.shard_of = shard_of
        self.shard_names = tuple(shard_names)
        # routing: logical shard name → the replica addresses serving it.
        # Unreplicated shards route to themselves; replicated shards pin
        # to the replica that last answered (the leader names itself in
        # every reply) and rotate on timeouts/unavailability.
        self._replica_map: Dict[str, Tuple[str, ...]] = {
            name: tuple(replica_map[name]) if replica_map and name in replica_map else (name,)
            for name in self.shard_names
        }
        self._routes: Dict[str, str] = {
            name: members[0] for name, members in self._replica_map.items()
        }
        self.config = config if config is not None else TpcConfig()
        self.crash_plan = crash_plan
        self.metrics = metrics if metrics is not None else network.metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._tracing = self.tracer.enabled
        #: the local (reliable) completion callback to the client driver:
        #: (txn_id, submission index, outcome, code, reason)
        self.on_complete = on_complete
        self.accepting_messages = True
        self.accepting_timers = True
        # --- stable storage ------------------------------------------------
        self.log = DecisionLog()
        # --- volatile state (wiped by a crash) -----------------------------
        self._txns: Dict[int, _TxnState] = {}
        self._backlog: deque = deque()
        self._notified: Set[int] = set()
        # monotone counters survive crashes: they model the recovery pass
        # re-reading its id allocator from the log's high-water mark
        self._next_txn_id = 1
        self._next_index = 0
        self._probe_counter = 0
        self._health: Dict[str, _ShardHealth] = {
            name: _ShardHealth(self.config.health_window) for name in self.shard_names
        }
        self.crashes = 0

    # ------------------------------------------------------------------
    # routing (replica groups)
    # ------------------------------------------------------------------
    def _addr(self, shard: str) -> str:
        """The node address currently serving the logical shard."""
        return self._routes.get(shard, shard)

    def _pin_route(self, shard: str, replica: Optional[str]) -> None:
        """Pin the route to the replica that answered (the leader)."""
        if replica is None:
            return
        members = self._replica_map.get(shard, ())
        if replica in members and self._routes.get(shard) != replica:
            self._routes[shard] = replica

    def _rotate_route(self, shard: str) -> None:
        """Try the next replica (the pinned one timed out or shed us)."""
        members = self._replica_map.get(shard, ())
        if len(members) < 2:
            return
        current = self._routes.get(shard, members[0])
        position = members.index(current) if current in members else 0
        self._routes[shard] = members[(position + 1) % len(members)]
        self.metrics.incr("dist.route_rotations")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, spec: TransactionSpec) -> int:
        """Admit one transaction; returns its submission index.

        Shedding happens here — before any message is sent — so a
        degraded shard costs a rejected admission, not a timeout.
        """
        index = self._next_index
        self._next_index += 1
        if self._try_shed(index, spec):
            return index
        if self.in_flight >= self.current_max_in_flight:
            self._backlog.append((index, spec))
            self.metrics.incr("dist.backlogged")
            return index
        self._start(index, spec)
        return index

    def _try_shed(self, index: int, spec: TransactionSpec) -> bool:
        """Shed the admission if it touches a degraded shard (not a probe).

        Consulted both at submit time and when the backlog drains, so a
        transaction queued while healthy is still shed if its shard
        degrades before it reaches the front.
        """
        touched = sorted(
            {self.shard_of(key) for key in set(spec.keys_read()) | set(spec.keys_written())}
        )
        degraded = [name for name in touched if self.is_degraded(name)]
        if not degraded:
            return False
        self._probe_counter += 1
        if self._probe_counter % self.config.probe_every == 0:
            self.metrics.incr("dist.probes")
            return False
        self.metrics.incr("dist.shed")
        self._notify(
            None,
            index,
            ABORT,
            ABORT_TPC_SHED,
            f"shard(s) {', '.join(degraded)} degraded "
            f"(timeout rate over threshold)",
        )
        return True

    @property
    def in_flight(self) -> int:
        return len(self._txns)

    @property
    def current_max_in_flight(self) -> int:
        """The admission limit, reduced while any shard is degraded."""
        if any(self.is_degraded(name) for name in self.shard_names):
            return min(self.config.max_in_flight, self.config.degraded_max_in_flight)
        return self.config.max_in_flight

    def is_degraded(self, shard: str) -> bool:
        health = self._health[shard]
        if len(health.outcomes) < self.config.min_health_samples:
            return False
        return health.failure_rate() > self.config.shed_threshold

    def _drain_backlog(self) -> None:
        while self._backlog and self.in_flight < self.current_max_in_flight:
            index, spec = self._backlog.popleft()
            if self._try_shed(index, spec):
                continue
            self._start(index, spec)

    # ------------------------------------------------------------------
    # the read phase
    # ------------------------------------------------------------------
    def _start(self, index: int, spec: TransactionSpec) -> None:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        txn = _TxnState(txn_id, index, spec)
        read_keys = sorted(set(spec.keys_read()))
        all_keys = sorted(set(spec.keys_read()) | set(spec.keys_written()))
        txn.shards = tuple(sorted({self.shard_of(key) for key in all_keys}))
        by_shard: Dict[str, List[str]] = {}
        for key in read_keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        txn.read_shards = tuple(sorted(by_shard))
        txn.pending = set(txn.read_shards)
        self._txns[txn_id] = txn
        self.log.log_begin(txn_id, txn.shards, index=index)
        if not txn.pending:
            # a write-only program has no read phase
            self._enter_prepare(txn)
            return
        for shard in txn.read_shards:
            self.network.send(
                self.name,
                self._addr(shard),
                "read-req",
                {"txn": txn_id, "keys": by_shard[shard]},
            )
        self._arm_retry(txn, self.config.read_timeout)

    def _on_read_reply(self, now: float, payload: Dict[str, Any]) -> None:
        self._pin_route(payload["shard"], payload.get("replica"))
        txn = self._txns.get(payload["txn"])
        if txn is None or txn.state != _READING:
            return
        shard = payload["shard"]
        if shard not in txn.pending:
            return
        txn.pending.discard(shard)
        txn.values.update(payload["values"])
        txn.versions.update(payload["versions"])
        if not txn.pending:
            self._cancel_retry(txn)
            self._enter_prepare(txn)

    # ------------------------------------------------------------------
    # executing the program and entering the prepare phase
    # ------------------------------------------------------------------
    def _execute(self, txn: _TxnState) -> None:
        """Run the transaction program against the gathered reads.

        Mirrors the engine kernel's operation semantics exactly: the
        read buffer fills in operation order, UPDATE transforms see all
        values read so far, and reads observe the transaction's own
        earlier writes (read-your-writes).
        """
        buffer: Dict[str, Any] = {}
        own_writes: Dict[str, Any] = {}
        writes: Dict[str, Any] = {}
        for operation in txn.spec.operations:
            key = operation.key
            if operation.reads:
                buffer[key] = own_writes.get(key, txn.values[key])
            if operation.writes:
                value = operation.transform(buffer)
                writes[key] = value
                own_writes[key] = value
        txn.writes_by_shard = {}
        for key in sorted(writes):
            txn.writes_by_shard.setdefault(self.shard_of(key), {})[key] = writes[key]

    def _enter_prepare(self, txn: _TxnState) -> None:
        self._execute(txn)
        if self._maybe_crash(BEFORE_PREPARE, txn):
            return
        txn.state = _PREPARING
        txn.pending = set(txn.shards)
        txn.retries = 0
        txn.delay = 0.0
        self._send_prepares(txn, txn.shards)
        self._arm_retry(txn, self.config.vote_timeout)

    def _send_prepares(self, txn: _TxnState, shards: Sequence[str]) -> None:
        reads_by_shard: Dict[str, Dict[str, int]] = {}
        for key, version in txn.versions.items():
            reads_by_shard.setdefault(self.shard_of(key), {})[key] = version
        for shard in sorted(shards):
            self.network.send(
                self.name,
                self._addr(shard),
                "prepare",
                {
                    "txn": txn.txn_id,
                    "reads": reads_by_shard.get(shard, {}),
                    "writes": txn.writes_by_shard.get(shard, {}),
                },
            )

    def _on_vote(self, now: float, payload: Dict[str, Any]) -> None:
        self._pin_route(payload["shard"], payload.get("replica"))
        txn = self._txns.get(payload["txn"])
        if txn is None or txn.state != _PREPARING:
            return
        shard = payload["shard"]
        if shard in txn.votes:
            return
        txn.votes[shard] = payload["vote"]
        # any vote — YES or NO — is a healthy, timely response; only
        # exchanges that *time out* count against a shard's health
        self._health[shard].record(True)
        if not payload["vote"]:
            self._cancel_retry(txn)
            # the vote phase is concluded (a NO is decisive), so the
            # after-votes crash point applies here too: the never-logged
            # abort is simply presumed on recovery
            if self._maybe_crash(AFTER_VOTES, txn):
                return
            self._decide(
                txn,
                ABORT,
                code=ABORT_TPC_PARTICIPANT_NO,
                reason=f"{shard} voted NO: {payload['reason']}",
            )
            return
        if set(txn.votes) >= set(txn.shards):
            self._cancel_retry(txn)
            if self._maybe_crash(AFTER_VOTES, txn):
                return
            self._decide(txn, COMMIT)

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------
    def _decide(
        self,
        txn: _TxnState,
        outcome: str,
        code: Optional[str] = None,
        reason: str = "",
    ) -> None:
        txn.outcome = outcome
        txn.code = code
        txn.reason = reason
        if outcome == COMMIT:
            # the write-ahead rule: the decision hits stable storage
            # before any participant can learn it
            self.log.log_commit(txn.txn_id)
            self.metrics.incr("dist.commits")
        else:
            # presumed abort: no log write — recovery infers the abort
            self.metrics.incr("dist.aborts")
        if self._tracing:
            self.tracer.now = self.network.now
            self.tracer.emit(
                obs_trace.DECIDE,
                txn.txn_id,
                txn.txn_id,
                1,
                code=code,
                detail=outcome + (f": {reason}" if reason else ""),
            )
        self._notify(txn.txn_id, txn.index, outcome, code, reason)
        if self._maybe_crash(AFTER_DECISION, txn):
            return
        txn.state = _DECIDED
        txn.pending = set(txn.shards)
        txn.retries = 0
        txn.delay = 0.0
        self._broadcast_decision(txn, txn.shards, allow_crash=True)
        if txn.txn_id in self._txns:
            self._arm_retry(txn, self.config.ack_timeout)

    def _broadcast_decision(
        self, txn: _TxnState, shards: Sequence[str], allow_crash: bool = False
    ) -> None:
        ordered = sorted(shards)
        for position, shard in enumerate(ordered):
            self.network.send(
                self.name,
                self._addr(shard),
                "decision",
                {"txn": txn.txn_id, "outcome": txn.outcome},
            )
            if (
                allow_crash
                and len(ordered) > 1
                and position == 0
                and self._maybe_crash(MID_BROADCAST, txn)
            ):
                return

    def _on_ack(self, now: float, payload: Dict[str, Any]) -> None:
        self._pin_route(payload["shard"], payload.get("replica"))
        txn = self._txns.get(payload["txn"])
        if txn is None or txn.state != _DECIDED:
            return
        shard = payload["shard"]
        txn.acked.add(shard)
        if set(txn.acked) >= set(txn.shards):
            self._cancel_retry(txn)
            self.log.log_end(txn.txn_id)
            del self._txns[txn.txn_id]
            self._drain_backlog()

    # ------------------------------------------------------------------
    # timeouts, retries, backoff
    # ------------------------------------------------------------------
    def _arm_retry(self, txn: _TxnState, base_timeout: float) -> None:
        txn.delay = (
            min(txn.delay * self.config.backoff, self.config.max_backoff)
            if txn.delay
            else base_timeout
        )
        txn.timer_id = self.network.set_timer(
            self.name, txn.delay, "retry", {"txn": txn.txn_id, "state": txn.state}
        )

    def _cancel_retry(self, txn: _TxnState) -> None:
        if txn.timer_id is not None:
            self.network.cancel_timer(txn.timer_id)
            txn.timer_id = None

    def on_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        if kind == "recover":
            self.recover()
            return
        if kind != "retry":
            raise ValueError(f"coordinator: unknown timer kind {kind!r}")
        txn = self._txns.get(payload["txn"])
        if txn is None or txn.state != payload["state"]:
            return
        if self._tracing:
            self.tracer.now = self.network.now
            self.tracer.emit(
                obs_trace.TIMEOUT,
                txn.txn_id,
                txn.txn_id,
                1,
                detail=txn.state,
                meta={"retries": txn.retries, "pending": sorted(txn.pending - txn.acked if txn.state == _DECIDED else txn.pending)},
            )
        self.metrics.incr("dist.timeouts")
        if txn.state == _DECIDED:
            # the decision is durable; keep nudging the unacked shards,
            # then hand the tail to the participants' status inquiries
            missing = sorted(set(txn.shards) - txn.acked)
            if txn.retries >= self.config.max_retries:
                self.metrics.incr("dist.broadcast_gaps")
                del self._txns[txn.txn_id]
                self._drain_backlog()
                return
            txn.retries += 1
            self.metrics.incr("dist.retries")
            for shard in missing:
                self._rotate_route(shard)
            self._broadcast_decision(txn, missing)
            self._arm_retry(txn, self.config.ack_timeout)
            return
        # reading or preparing: the transaction itself is at stake
        missing = sorted(
            set(txn.read_shards if txn.state == _READING else txn.shards)
            - (set(txn.votes) if txn.state == _PREPARING else (set(txn.read_shards) - txn.pending))
        )
        if txn.retries >= self.config.max_retries:
            for shard in missing:
                self._health[shard].record(False)
            self._cancel_retry(txn)
            self._decide(
                txn,
                ABORT,
                code=ABORT_TPC_TIMEOUT,
                reason=(
                    f"no {'read reply' if txn.state == _READING else 'vote'} from "
                    f"{', '.join(missing)} after {txn.retries} retries"
                ),
            )
            return
        txn.retries += 1
        self.metrics.incr("dist.retries")
        for shard in missing:
            # the pinned replica went silent — try the next group member
            self._rotate_route(shard)
        if txn.state == _READING:
            by_shard: Dict[str, List[str]] = {}
            for key in sorted(set(txn.spec.keys_read())):
                shard = self.shard_of(key)
                if shard in txn.pending:
                    by_shard.setdefault(shard, []).append(key)
            for shard in sorted(by_shard):
                self.network.send(
                    self.name,
                    self._addr(shard),
                    "read-req",
                    {"txn": txn.txn_id, "keys": by_shard[shard]},
                )
            self._arm_retry(txn, self.config.read_timeout)
        else:
            self._send_prepares(txn, missing)
            self._arm_retry(txn, self.config.vote_timeout)

    # ------------------------------------------------------------------
    # status inquiries (participants in doubt)
    # ------------------------------------------------------------------
    def _on_status_req(self, now: float, payload: Dict[str, Any]) -> None:
        txn_id = payload["txn"]
        shard = payload["shard"]
        txn = self._txns.get(txn_id)
        if txn is not None and txn.outcome is None:
            # still undecided: the participant keeps waiting (its next
            # inquiry is already scheduled with backoff)
            return
        if txn is not None:
            outcome = txn.outcome
        else:
            # not in volatile state: consult the log — presumed abort
            # answers anything without a logged commit decision
            replayed = self.log.replay().get(txn_id)
            outcome = COMMIT if replayed and replayed[1] == COMMIT else ABORT
        self.network.send(
            self.name,
            # answer the inquiring replica directly — the logical-shard
            # route may point at a different group member
            payload.get("replica", self._addr(shard)),
            "decision",
            {"txn": txn_id, "outcome": outcome},
        )

    # ------------------------------------------------------------------
    # replica-group degradation: a shard with no quorum sheds loudly
    # ------------------------------------------------------------------
    def _on_unavail(self, now: float, payload: Dict[str, Any]) -> None:
        """A replica reported its group cannot currently reach quorum.

        The in-flight transaction (if still undecided) aborts with
        ``repl-no-quorum`` instead of burning its whole retry budget;
        the shard's health window records a failure so repeated
        no-quorum reports degrade it into the ``2pc-shed`` admission
        path; and the route rotates so the next attempt tries another
        group member (one of which may reach the majority-side leader).
        """
        shard = payload["shard"]
        self.metrics.incr("dist.repl.no_quorum_reports")
        if shard in self._health:
            self._health[shard].record(False)
        self._rotate_route(shard)
        txn = self._txns.get(payload["txn"])
        if txn is None or txn.state == _DECIDED:
            # a decided transaction's outcome is durable: keep nudging
            # via the ack-retry path until the group heals
            return
        self._cancel_retry(txn)
        self._decide(
            txn,
            ABORT,
            code=ABORT_REPL_NO_QUORUM,
            reason=(
                f"{shard} has no quorum "
                f"(replica {payload.get('replica', '?')} shed the request)"
            ),
        )

    # ------------------------------------------------------------------
    # crash and recovery
    # ------------------------------------------------------------------
    def _maybe_crash(self, transition: str, txn: _TxnState) -> bool:
        if self.crash_plan is None:
            return False
        spec = self.crash_plan.should_crash(transition, txn.index)
        if spec is None:
            return False
        self.crash(restart_delay=spec.restart_delay, transition=transition)
        return True

    def crash(self, restart_delay: float = 5.0, transition: str = "manual") -> None:
        """Kill the coordinator: volatile state gone, log intact."""
        self.crashes += 1
        self.metrics.incr("dist.coordinator_crashes")
        if self._tracing:
            self.tracer.now = self.network.now
            self.tracer.emit(
                obs_trace.CRASH, 0, None, 0, detail=transition,
                meta={"in_flight": len(self._txns)},
            )
        self.accepting_messages = False
        self.accepting_timers = False
        # stale-timer hygiene: retry/status timers armed by this
        # incarnation must not fire into the recovered coordinator
        self.network.bump_incarnation(self.name)
        self._txns = {}
        # backlogged submissions never reached the log, so recovery
        # cannot resurrect them — the client sees a connection reset
        # (an abort with the crash code) and its retry policy engages
        for index, _spec in self._backlog:
            self.metrics.incr("dist.backlog_dropped")
            self._notify(
                None,
                index,
                ABORT,
                ABORT_TPC_COORDINATOR_CRASH,
                "submission lost: coordinator crashed with the request still queued",
            )
        self._backlog = deque()
        # health windows are volatile too: a recovered coordinator
        # rebuilds its picture of the world from fresh outcomes
        self._health = {
            name: _ShardHealth(self.config.health_window) for name in self.shard_names
        }
        self.network.set_timer(self.name, restart_delay, "recover", {}, supervisor=True)

    def recover(self) -> None:
        """Replay the decision log; presume abort for the undecided.

        Logged commits are re-broadcast (participants re-ack from their
        outcome maps if they already applied); begun-but-undecided
        transactions are aborted with ``2pc-coordinator-crash`` and the
        abort is pushed to their shards so any prepare locks release
        without waiting for a status inquiry.
        """
        self.accepting_messages = True
        self.accepting_timers = True
        self.metrics.incr("dist.recoveries")
        if self._tracing:
            self.tracer.now = self.network.now
            self.tracer.emit(obs_trace.RECOVER, 0, None, 0)
        worklist = self.log.unfinished()
        for txn_id in sorted(worklist):
            if txn_id in self._txns:
                # idempotence under duplication: an earlier recovery pass
                # already rebuilt this transaction's broadcast state
                continue
            shards, decision, index = worklist[txn_id]
            txn = _TxnState(txn_id, index if index is not None else -1, None)  # type: ignore[arg-type]
            txn.shards = shards
            if decision == COMMIT:
                txn.outcome = COMMIT
                self._notify(txn_id, index, COMMIT, None, "recovered commit")
            else:
                txn.outcome = ABORT
                txn.code = ABORT_TPC_COORDINATOR_CRASH
                self.metrics.incr("dist.aborts")
                self._notify(
                    txn_id,
                    index,
                    ABORT,
                    ABORT_TPC_COORDINATOR_CRASH,
                    "presumed abort: coordinator crashed before a decision",
                )
            txn.state = _DECIDED
            txn.pending = set(shards)
            self._txns[txn_id] = txn
            self._broadcast_decision(txn, shards)
            self._arm_retry(txn, self.config.ack_timeout)

    # ------------------------------------------------------------------
    # completion plumbing
    # ------------------------------------------------------------------
    def _notify(
        self,
        txn_id: Optional[int],
        index: Optional[int],
        outcome: str,
        code: Optional[str],
        reason: str,
    ) -> None:
        if txn_id is not None:
            if txn_id in self._notified:
                return
            self._notified.add(txn_id)
        if self.on_complete is not None:
            self.on_complete(txn_id, index, outcome, code, reason)

    def on_message(self, now: float, message: Message) -> None:
        handler = getattr(self, "_on_" + message.kind.replace("-", "_"), None)
        if handler is None:
            raise ValueError(f"coordinator: unknown message kind {message.kind!r}")
        handler(now, message.payload)
