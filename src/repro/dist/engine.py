"""The distributed front end: build the topology, run a batch, report.

:func:`run_distributed_batch` is the distributed sibling of
:func:`repro.engine.runtime.run_batch`: hand it initial data, a list of
(possibly cross-shard) :class:`~repro.engine.operations.TransactionSpec`
programs and a fault configuration, and it assembles the simulated
network, one :class:`~repro.dist.tpc.ShardParticipant` per shard and the
:class:`~repro.dist.tpc.TwoPhaseCommitCoordinator`, drives the run to
quiescence in virtual time, and returns a
:class:`DistributedRunReport`.

The **client** lives in this module too: it is co-located with the
coordinator (completion callbacks are a local function call, not a
network message — the faulty network sits only between coordinator and
shards), resubmits aborted or shed transactions after a retry delay, up
to ``client_max_attempts`` per program, and records every attempt's
outcome and taxonomy code for the oracles.

Everything in the report is derived from virtual-time state, so
:meth:`DistributedRunReport.digest` is byte-stable across reruns of the
same seed — the property the chaos-soak CI job pins.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dist.network import LatencyModel, SimulatedNetwork
from repro.dist.paxos import ReplicationConfig
from repro.dist.recovery import ABORT, COMMIT, CrashSpec, RECORD_DECISION, crash_plan_from
from repro.dist.replication import (
    ChaosController,
    ReplicaCrashPlan,
    ReplicaCrashSpec,
    ReplicaGroup,
    ReplicatedParticipant,
    replica_seed,
)
from repro.dist.tpc import (
    COORDINATOR,
    ShardParticipant,
    TpcConfig,
    TwoPhaseCommitCoordinator,
)
from repro.engine.faults import NetworkFaultSpec, network_plan_from
from repro.engine.metrics import Metrics
from repro.engine.operations import TransactionSpec
from repro.engine.storage import ShardedDataStore
from repro.obs.trace import Tracer


class AttemptRecord:
    """One client-visible attempt of one submitted program."""

    __slots__ = ("spec_index", "attempt", "txn_id", "outcome", "code", "reason")

    def __init__(
        self,
        spec_index: int,
        attempt: int,
        txn_id: Optional[int],
        outcome: str,
        code: Optional[str],
        reason: str,
    ) -> None:
        self.spec_index = spec_index
        self.attempt = attempt
        self.txn_id = txn_id
        self.outcome = outcome
        self.code = code
        self.reason = reason

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_index,
            "attempt": self.attempt,
            "txn": self.txn_id,
            "outcome": self.outcome,
            "code": self.code,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return (
            f"AttemptRecord(spec={self.spec_index}, attempt={self.attempt}, "
            f"txn={self.txn_id}, {self.outcome!r}, code={self.code!r})"
        )


class DistributedRunReport:
    """Everything the oracles and tests need to judge one run.

    Attributes
    ----------
    attempts:
        Per original spec, the ordered list of :class:`AttemptRecord`
        (client retries append).
    committed:
        ``(txn_id, {key: value})`` in **decision-log order** — the
        commit serialization order, with each transaction's full
        cross-shard write set stitched back together from the
        participants' applied-write journals.
    final_snapshot:
        The merged committed state of every shard at quiescence.
    participants:
        Name → the live :class:`ShardParticipant` (for lock/outcome
        introspection).  In a replicated run each value is a
        :class:`~repro.dist.replication.ReplicaGroup`, which presents
        the same surface by delegating to its authoritative replica.
    groups:
        Logical shard name → :class:`~repro.dist.replication.
        ReplicaGroup` when the run was replicated (empty otherwise);
        the replication oracles' raw material.
    """

    def __init__(
        self,
        attempts: List[List[AttemptRecord]],
        committed: List[Tuple[int, Dict[str, Any]]],
        final_snapshot: Dict[str, Any],
        participants: Dict[str, ShardParticipant],
        coordinator: TwoPhaseCommitCoordinator,
        metrics: Metrics,
        virtual_end: float,
        events_dispatched: int,
        groups: Optional[Dict[str, ReplicaGroup]] = None,
    ) -> None:
        self.attempts = attempts
        self.committed = committed
        self.final_snapshot = final_snapshot
        self.participants = participants
        self.coordinator = coordinator
        self.metrics = metrics
        self.virtual_end = virtual_end
        self.events_dispatched = events_dispatched
        self.groups = groups if groups is not None else {}

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def outcome_of(self, spec_index: int) -> str:
        """The program's final outcome: its last attempt's."""
        history = self.attempts[spec_index]
        return history[-1].outcome if history else ABORT

    @property
    def commit_count(self) -> int:
        return sum(1 for i in range(len(self.attempts)) if self.outcome_of(i) == COMMIT)

    @property
    def abort_records(self) -> List[AttemptRecord]:
        """Every aborted attempt across all programs (taxonomy oracle)."""
        return [
            record
            for history in self.attempts
            for record in history
            if record.outcome == ABORT
        ]

    def digest(self) -> str:
        """A replay-stable fingerprint of the run's observable behaviour."""
        payload = {
            "attempts": [
                [record.to_dict() for record in history] for history in self.attempts
            ],
            "committed": [
                [txn_id, {k: writes[k] for k in sorted(writes)}]
                for txn_id, writes in self.committed
            ],
            "snapshot": {k: self.final_snapshot[k] for k in sorted(self.final_snapshot)},
            "virtual_end": round(self.virtual_end, 9),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _Client:
    """The co-located client node: submits, observes, retries."""

    name = "client"
    accepting_messages = True
    accepting_timers = True

    def __init__(
        self,
        network: SimulatedNetwork,
        coordinator: TwoPhaseCommitCoordinator,
        specs: Sequence[TransactionSpec],
        config: TpcConfig,
        metrics: Metrics,
    ) -> None:
        self.network = network
        self.coordinator = coordinator
        self.specs = list(specs)
        self.config = config
        self.metrics = metrics
        #: submission index → (spec position, attempt number)
        self._submissions: Dict[int, Tuple[int, int]] = {}
        self.attempts: List[List[AttemptRecord]] = [[] for _ in specs]
        #: spec positions whose final outcome is not yet known (a program
        #: with a scheduled retry is unsettled even while the coordinator
        #: holds nothing for it — the replicated run loop polls this)
        self.unsettled: Set[int] = set(range(len(self.specs)))

    def submit_all(self) -> None:
        for position, spec in enumerate(self.specs):
            self._submit(position, 1)

    def _submit(self, position: int, attempt: int) -> None:
        # Register the submission BEFORE handing it to the coordinator:
        # submit() may complete synchronously (load shedding under a
        # degraded shard calls on_complete re-entrantly), and an
        # unregistered index would silently drop that attempt, leaving
        # the program unsettled forever.
        index = self.coordinator._next_index
        self._submissions[index] = (position, attempt)
        submitted = self.coordinator.submit(self.specs[position])
        if submitted != index:  # pragma: no cover - defensive
            raise RuntimeError("coordinator submission index drifted")

    def on_complete(
        self,
        txn_id: Optional[int],
        index: Optional[int],
        outcome: str,
        code: Optional[str],
        reason: str,
    ) -> None:
        if index is None or index not in self._submissions:
            # a recovered transaction whose begin record predates index
            # logging, or a duplicate — nothing to route
            return
        position, attempt = self._submissions[index]
        self.attempts[position].append(
            AttemptRecord(position, attempt, txn_id, outcome, code, reason)
        )
        if outcome != ABORT or attempt >= self.config.client_max_attempts:
            self.unsettled.discard(position)
        if outcome == ABORT and attempt < self.config.client_max_attempts:
            self.metrics.incr("dist.client_retries")
            # stagger retries deterministically by client slot: rivals
            # aborted by the same conflict would otherwise resubmit at
            # the same virtual instant and recreate the collision every
            # round (the synchronized-retry livelock)
            delay = self.config.client_retry_delay * (
                1.0 + 0.25 * (position % 7) + 0.5 * (attempt - 1)
            )
            self.network.set_timer(
                self.name,
                delay,
                "client-retry",
                {"position": position, "attempt": attempt + 1},
            )

    def on_message(self, now: float, message: Any) -> None:
        raise ValueError("the client exchanges no network messages")

    def on_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        if kind != "client-retry":
            raise ValueError(f"client: unknown timer kind {kind!r}")
        self._submit(payload["position"], payload["attempt"])


class DistributedEngine:
    """Topology assembly: network + shards + coordinator + client.

    With ``replicas >= 2`` each logical shard becomes a
    :class:`~repro.dist.replication.ReplicaGroup` of
    :class:`~repro.dist.replication.ReplicatedParticipant` nodes named
    ``shard{i}.r{j}``; the coordinator routes by logical shard name
    through its replica map, and ``replica_crashes`` feed the group's
    crash plan (transition-triggered leader crashes) and the timed
    :class:`~repro.dist.replication.ChaosController`.
    """

    def __init__(
        self,
        initial_data: Dict[str, Any],
        num_shards: int = 2,
        shard_of: Optional[Callable[[str], int]] = None,
        config: Optional[TpcConfig] = None,
        latency: Optional[LatencyModel] = None,
        network_faults: Optional[NetworkFaultSpec] = None,
        crash_specs: Sequence[CrashSpec] = (),
        seed: int = 0,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
        replicas: int = 1,
        replication: Optional[ReplicationConfig] = None,
        replica_crashes: Sequence[ReplicaCrashSpec] = (),
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")
        self.config = config if config is not None else TpcConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        self.sharded = ShardedDataStore(
            initial_data, num_shards=num_shards, shard_of=shard_of
        )
        fault_plan = (
            network_plan_from(network_faults) if network_faults is not None else None
        )
        self.network = SimulatedNetwork(
            latency=latency,
            seed=seed,
            fault_plan=fault_plan,
            metrics=self.metrics,
            tracer=tracer,
        )
        # the chaos horizon: quiescence cannot be declared while a
        # partition window is still open (traffic would look quiet only
        # because it is being severed)
        self._fault_horizon = 0.0
        if network_faults is not None:
            for window in network_faults.partitions:
                self._fault_horizon = max(self._fault_horizon, window.end)
        shard_names = tuple(f"shard{i}" for i in range(num_shards))
        self.groups: Dict[str, ReplicaGroup] = {}
        self.chaos: Optional[ChaosController] = None
        replica_map: Optional[Dict[str, Sequence[str]]] = None
        if replicas == 1:
            if replica_crashes:
                raise ValueError("replica_crashes requires replicas >= 2")
            self.participants: Dict[str, Any] = {}
            for i, name in enumerate(shard_names):
                participant = ShardParticipant(
                    name, self.sharded.shard(i), self.network, self.config, self.metrics
                )
                self.network.register(participant)
                self.participants[name] = participant
        else:
            repl_config = replication if replication is not None else ReplicationConfig()
            crash_plan = ReplicaCrashPlan(replica_crashes)
            replica_map = {}
            for i, name in enumerate(shard_names):
                members = [f"{name}.r{j}" for j in range(replicas)]
                shard_initial = self.sharded.shard(i).snapshot()
                group_replicas = []
                for j, member in enumerate(members):
                    rep = ReplicatedParticipant(
                        member,
                        shard=name,
                        peers=members,
                        initial_data=shard_initial,
                        network=self.network,
                        tpc_config=self.config,
                        config=repl_config,
                        seed=replica_seed(seed, i, j),
                        crash_plan=crash_plan,
                        metrics=self.metrics,
                        tracer=tracer,
                    )
                    self.network.register(rep)
                    group_replicas.append(rep)
                self.groups[name] = ReplicaGroup(name, group_replicas)
                replica_map[name] = members
            # the oracle view: logical shard name → the group adapter,
            # which answers the ShardParticipant introspection surface
            self.participants = dict(self.groups)
            self.chaos = ChaosController(self.network, self.groups, crash_plan.timed)
            self.network.register(self.chaos)
        sharded = self.sharded

        def shard_name_of(key: str) -> str:
            return shard_names[sharded.shard_of(key)]

        self.coordinator = TwoPhaseCommitCoordinator(
            self.network,
            shard_name_of,
            shard_names,
            config=self.config,
            crash_plan=crash_plan_from(crash_specs),
            metrics=self.metrics,
            tracer=tracer,
            replica_map=replica_map,
        )
        self.network.register(self.coordinator)

    def run(
        self, specs: Sequence[TransactionSpec], max_events: int = 1_000_000
    ) -> DistributedRunReport:
        """Submit every program and run the network to quiescence."""
        client = _Client(
            self.network, self.coordinator, specs, self.config, self.metrics
        )
        self.network.register(client)
        self.coordinator.on_complete = client.on_complete
        client.submit_all()
        if not self.groups:
            dispatched = self.network.run(max_events=max_events)
        else:
            dispatched = self._run_replicated(client, max_events)
        committed = self._committed_in_decision_order()
        return DistributedRunReport(
            attempts=client.attempts,
            committed=committed,
            final_snapshot=self._final_snapshot(),
            participants=self.participants,
            coordinator=self.coordinator,
            metrics=self.metrics,
            virtual_end=self.network.now,
            events_dispatched=dispatched,
            groups=self.groups,
        )

    #: virtual-time slice per replicated run step — coarse enough that a
    #: step makes protocol progress, fine enough that quiescence is
    #: detected promptly after the last decision lands
    _CHUNK = 40.0
    _MAX_CHUNKS = 2_000

    def _run_replicated(self, client: _Client, max_events: int) -> int:
        """Drive a replicated topology to quiescence.

        A replica group is never heap-idle — heartbeats and election
        timers re-arm forever — so the unreplicated ``run()``-to-empty
        loop would spin. Instead the network runs in fixed virtual-time
        chunks and stops once the *protocol* is quiescent: every client
        program settled, the coordinator empty, all chaos spent, and
        every group converged with nothing in doubt.  Chunk boundaries
        are a pure function of event times, so the chunked loop is as
        deterministic as the heap itself.
        """
        dispatched = 0
        for _ in range(self._MAX_CHUNKS):
            dispatched += self.network.run(
                until=self.network.now + self._CHUNK, max_events=max_events
            )
            if self._replication_quiescent(client):
                return dispatched
        raise RuntimeError(
            f"replicated run did not reach quiescence within "
            f"{self._MAX_CHUNKS} chunks (t={self.network.now:g}); "
            f"unsettled={sorted(client.unsettled)} "
            f"in_flight={self.coordinator.in_flight}"
        )

    def _replication_quiescent(self, client: _Client) -> bool:
        if self.network.now < self._fault_horizon:
            return False
        if self.chaos is not None and self.chaos.pending > 0:
            return False
        if client.unsettled:
            return False
        if not self.coordinator.accepting_messages:
            return False
        if self.coordinator.in_flight or self.coordinator._backlog:
            return False
        return all(group.quiescent() for group in self.groups.values())

    def _final_snapshot(self) -> Dict[str, Any]:
        if not self.groups:
            return self.sharded.snapshot()
        snapshot: Dict[str, Any] = {}
        for name in sorted(self.groups):
            snapshot.update(self.groups[name].authoritative.store.snapshot())
        return snapshot

    def _committed_in_decision_order(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Stitch each committed write set back from the participants.

        The decision log's COMMIT records give the serialization order
        (the order validations passed); the participants' applied-write
        journals supply each transaction's per-shard slice.
        """
        order = [
            record.txn_id
            for record in self.coordinator.log.records
            if record.kind == RECORD_DECISION and record.outcome == COMMIT
        ]
        committed: List[Tuple[int, Dict[str, Any]]] = []
        for txn_id in order:
            writes: Dict[str, Any] = {}
            for name in sorted(self.participants):
                writes.update(self.participants[name].applied_writes.get(txn_id, {}))
            committed.append((txn_id, writes))
        return committed


def run_distributed_batch(
    initial_data: Dict[str, Any],
    specs: Sequence[TransactionSpec],
    num_shards: int = 2,
    shard_of: Optional[Callable[[str], int]] = None,
    config: Optional[TpcConfig] = None,
    latency: Optional[LatencyModel] = None,
    network_faults: Optional[NetworkFaultSpec] = None,
    crash_specs: Sequence[CrashSpec] = (),
    seed: int = 0,
    metrics: Optional[Metrics] = None,
    tracer: Optional[Tracer] = None,
    max_events: int = 1_000_000,
    replicas: int = 1,
    replication: Optional[ReplicationConfig] = None,
    replica_crashes: Sequence[ReplicaCrashSpec] = (),
) -> DistributedRunReport:
    """One-call distributed run: assemble, submit, drain, report."""
    engine = DistributedEngine(
        initial_data,
        num_shards=num_shards,
        shard_of=shard_of,
        config=config,
        latency=latency,
        network_faults=network_faults,
        crash_specs=crash_specs,
        seed=seed,
        metrics=metrics,
        tracer=tracer,
        replicas=replicas,
        replication=replication,
        replica_crashes=replica_crashes,
    )
    return engine.run(specs, max_events=max_events)
