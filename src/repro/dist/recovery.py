"""Coordinator crash recovery: the decision log and the crash plan.

Two-phase commit is only atomic if the coordinator's *decision* survives
the coordinator.  This module provides the two halves of that story:

* :class:`DecisionLog` — a logical write-ahead log.  It lives in plain
  memory but is deliberately **not** cleared when the coordinator
  crashes: it models the stable storage a real coordinator would fsync,
  while everything else on the coordinator (in-flight transaction state,
  timers, vote tallies) is volatile and lost.  The protocol is
  **presumed abort**: only ``begin`` (with the participant set),
  ``commit`` decisions and ``end`` (fully acknowledged) records are
  logged — an abort needs no log write, because recovery treats any
  begun-but-undecided transaction as aborted.

* :class:`CrashSpec` / :class:`CrashPlan` — deterministic crash
  injection.  The coordinator consults the plan at every logged state
  transition (:data:`CRASH_POINTS`); a matching spec fires exactly once,
  killing the coordinator *at* that transition and scheduling its
  restart ``restart_delay`` later.  Because the whole distributed run is
  virtual-time deterministic, "crash the coordinator after it collected
  votes for the third transaction" is a replayable scenario, not a race.

The recovery pass itself lives on the coordinator
(:meth:`repro.dist.tpc.TwoPhaseCommitCoordinator.recover`): it replays
the log, re-broadcasts logged commit decisions, and presumes abort for
everything else — so no shard can ever disagree with another about a
transaction's outcome, no matter where the crash landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: coordinator state transitions at which a crash can be injected
BEFORE_PREPARE = "before-prepare"    # reads gathered, prepares not yet sent
AFTER_VOTES = "after-votes"          # vote phase concluded, decision not yet logged
AFTER_DECISION = "after-decision"    # decision logged, broadcast not yet started
MID_BROADCAST = "mid-broadcast"      # decision sent to a strict subset of shards

CRASH_POINTS = (BEFORE_PREPARE, AFTER_VOTES, AFTER_DECISION, MID_BROADCAST)

#: decision-log record kinds
RECORD_BEGIN = "begin"
RECORD_DECISION = "decision"
RECORD_END = "end"

#: decision outcomes
COMMIT = "commit"
ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One append-only decision-log entry."""

    kind: str
    txn_id: int
    #: RECORD_BEGIN: the participant shard names; empty otherwise
    shards: Tuple[str, ...] = ()
    #: RECORD_DECISION: COMMIT (aborts are presumed, never logged)
    outcome: Optional[str] = None
    #: RECORD_BEGIN: the client submission index, so recovery can route
    #: its completion notification back to the right client slot
    index: Optional[int] = None

    def __str__(self) -> str:
        if self.kind == RECORD_BEGIN:
            return f"begin T{self.txn_id} shards={list(self.shards)}"
        if self.kind == RECORD_DECISION:
            return f"decision T{self.txn_id} {self.outcome}"
        return f"end T{self.txn_id}"


class DecisionLog:
    """The coordinator's logical write-ahead log (crash-survivable)."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        self.records.append(record)

    def log_begin(
        self, txn_id: int, shards: Tuple[str, ...], index: Optional[int] = None
    ) -> None:
        self.append(LogRecord(RECORD_BEGIN, txn_id, shards=shards, index=index))

    def log_commit(self, txn_id: int) -> None:
        self.append(LogRecord(RECORD_DECISION, txn_id, outcome=COMMIT))

    def log_end(self, txn_id: int) -> None:
        self.append(LogRecord(RECORD_END, txn_id))

    def replay(
        self,
    ) -> Dict[int, Tuple[Tuple[str, ...], Optional[str], bool, Optional[int]]]:
        """Fold the log into ``{txn: (shards, decision, ended, index)}``.

        ``decision`` is ``COMMIT`` or ``None`` (= presumed abort);
        recovery only needs to act on entries with ``ended`` False.
        """
        state: Dict[
            int, Tuple[Tuple[str, ...], Optional[str], bool, Optional[int]]
        ] = {}
        for record in self.records:
            shards, decision, ended, index = state.get(
                record.txn_id, ((), None, False, None)
            )
            if record.kind == RECORD_BEGIN:
                shards = record.shards
                index = record.index
            elif record.kind == RECORD_DECISION:
                decision = record.outcome
            elif record.kind == RECORD_END:
                ended = True
            state[record.txn_id] = (shards, decision, ended, index)
        return state

    def unfinished(
        self,
    ) -> Dict[int, Tuple[Tuple[str, ...], Optional[str], Optional[int]]]:
        """Begun transactions with no ``end`` record — recovery's worklist."""
        return {
            txn_id: (shards, decision, index)
            for txn_id, (shards, decision, ended, index) in self.replay().items()
            if not ended
        }

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class CrashSpec:
    """One injected coordinator crash: where, on which transaction.

    Parameters
    ----------
    transition:
        One of :data:`CRASH_POINTS`.
    txn_index:
        Submission index (0-based) of the transaction whose transition
        triggers the crash; retries of shed/aborted client requests get
        fresh indexes, so an index always names one concrete attempt.
    restart_delay:
        Virtual time between the crash and the recovery pass.
    """

    transition: str
    txn_index: int = 0
    restart_delay: float = 5.0

    def __post_init__(self) -> None:
        if self.transition not in CRASH_POINTS:
            raise ValueError(
                f"transition must be one of {CRASH_POINTS}, got {self.transition!r}"
            )
        if self.txn_index < 0:
            raise ValueError(f"txn_index must be >= 0, got {self.txn_index!r}")
        if self.restart_delay < 0:
            raise ValueError(
                f"restart_delay must be non-negative, got {self.restart_delay!r}"
            )


class CrashPlan:
    """Deterministic crash injection: each spec fires at most once."""

    def __init__(self, specs: Tuple[CrashSpec, ...] = ()) -> None:
        self.specs: List[CrashSpec] = list(specs)
        self.fired: List[CrashSpec] = []

    def should_crash(self, transition: str, txn_index: int) -> Optional[CrashSpec]:
        """Consume and return the matching spec, or ``None``."""
        for index, spec in enumerate(self.specs):
            if spec.transition == transition and spec.txn_index == txn_index:
                self.fired.append(self.specs.pop(index))
                return self.fired[-1]
        return None


def crash_plan_from(specs) -> Optional[CrashPlan]:
    """A fresh plan for a spec sequence, or ``None`` for crash-free runs."""
    if not specs:
        return None
    return CrashPlan(tuple(specs))
