"""Distributed transactions: cross-shard 2PC over a simulated network.

The package splits along the same seams as the single-node engine:

* :mod:`repro.dist.network` — the deterministic virtual-time network
  (latency, seeded loss/duplication, partition windows, timers);
* :mod:`repro.dist.tpc` — the presumed-abort two-phase-commit
  coordinator and per-shard participants (distributed OCC validation);
* :mod:`repro.dist.recovery` — the write-ahead decision log and
  deterministic coordinator crash injection;
* :mod:`repro.dist.paxos` — multi-decree consensus with leader leases
  (elections, log replication with quorum acks, catch-up);
* :mod:`repro.dist.replication` — the 2PC participant as a replicated
  state machine (one replica group per shard), plus replica-level crash
  injection;
* :mod:`repro.dist.engine` — the front end assembling a topology,
  running a batch of cross-shard programs and reporting.
"""

from repro.dist.engine import (
    AttemptRecord,
    DistributedEngine,
    DistributedRunReport,
    run_distributed_batch,
)
from repro.dist.network import LatencyModel, Message, SimulatedNetwork
from repro.dist.paxos import (
    CANDIDATE,
    FOLLOWER,
    LEADER,
    PaxosReplica,
    ReplicationConfig,
)
from repro.dist.replication import (
    REPL_CRASH_POINTS,
    ChaosController,
    ReplicaCrashPlan,
    ReplicaCrashSpec,
    ReplicaGroup,
    ReplicatedParticipant,
    replica_seed,
)
from repro.dist.recovery import (
    ABORT,
    AFTER_DECISION,
    AFTER_VOTES,
    BEFORE_PREPARE,
    COMMIT,
    CRASH_POINTS,
    CrashPlan,
    CrashSpec,
    DecisionLog,
    LogRecord,
    MID_BROADCAST,
    crash_plan_from,
)
from repro.dist.tpc import (
    COORDINATOR,
    ShardParticipant,
    TpcConfig,
    TwoPhaseCommitCoordinator,
)

__all__ = [
    "ABORT",
    "AFTER_DECISION",
    "AFTER_VOTES",
    "AttemptRecord",
    "BEFORE_PREPARE",
    "CANDIDATE",
    "COMMIT",
    "COORDINATOR",
    "CRASH_POINTS",
    "ChaosController",
    "CrashPlan",
    "CrashSpec",
    "FOLLOWER",
    "LEADER",
    "PaxosReplica",
    "REPL_CRASH_POINTS",
    "ReplicaCrashPlan",
    "ReplicaCrashSpec",
    "ReplicaGroup",
    "ReplicatedParticipant",
    "ReplicationConfig",
    "DecisionLog",
    "DistributedEngine",
    "DistributedRunReport",
    "LatencyModel",
    "LogRecord",
    "MID_BROADCAST",
    "Message",
    "ShardParticipant",
    "SimulatedNetwork",
    "TpcConfig",
    "TwoPhaseCommitCoordinator",
    "crash_plan_from",
    "replica_seed",
    "run_distributed_batch",
]
