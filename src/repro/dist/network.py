"""A deterministic simulated message-passing network.

The distributed layer's substrate: nodes (the 2PC coordinator, one
participant per shard) exchange :class:`Message` objects through a
single virtual-time event loop.  Three properties make chaos runs
replayable byte-for-byte:

* **one clock** — every delivery and timer lives in one min-heap keyed
  by ``(virtual time, sequence number)``, so dispatch order is a total
  order independent of dict/set iteration;
* **one latency RNG** — per-message latency is drawn from the network's
  private ``random.Random`` in send order, which is itself
  deterministic;
* **one fault plan** — message loss and duplication come from a
  :class:`~repro.engine.faults.NetworkFaultPlan` (the network-side
  sibling of the engine's ``FaultPlan``), consulted exactly once per
  send; partition windows are a pure function of ``(src, dst, now)``.

Reordering needs no dedicated fault: any nonzero latency jitter already
reorders messages, and a duplicated message's two copies draw
independent latencies.  Protocol layers must therefore be duplicate-
and reorder-tolerant by construction — which is exactly what the 2PC
conformance cells exercise.

Nodes implement ``name``, ``on_message(now, message)`` and
``on_timer(now, kind, payload)``.  A node may mark itself crashed via
``accepting_messages`` / ``accepting_timers``; the network then counts
the delivery as dropped-at-node instead of dispatching it (a crashed
coordinator loses in-flight votes — that is the point).

Timers are **incarnation-stamped**: every timer belongs to the
incarnation of its node that armed it.  A crash calls
:meth:`SimulatedNetwork.bump_incarnation`, so a timer armed before the
crash can never fire into the restarted process — it is counted under
``dist.net.stale_timers`` and dropped.  Restart timers are armed with
``supervisor=True``, which exempts them from the stamp (they model the
external supervisor, not the crashed process).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.engine.faults import (
    DROP_ACTION,
    DUPLICATE_ACTION,
    NetworkFaultPlan,
)
from repro.engine.metrics import Metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class LatencyModel:
    """A one-way message latency distribution: ``base + U[0, jitter)``.

    The default (base 1.0, jitter 0.5) keeps round trips comfortably
    under the 2PC layer's default timeouts; jitter > 0 is what makes
    message *reordering* happen without a dedicated fault knob.
    """

    base: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"latency base must be non-negative, got {self.base!r}")
        if self.jitter < 0:
            raise ValueError(
                f"latency jitter must be non-negative, got {self.jitter!r}"
            )

    def sample(self, rng: random.Random) -> float:
        if self.jitter == 0:
            return self.base
        return self.base + rng.random() * self.jitter


class Message:
    """One message in flight: source, destination, kind, payload."""

    __slots__ = ("src", "dst", "kind", "payload", "uid")

    def __init__(
        self, src: str, dst: str, kind: str, payload: Dict[str, Any], uid: int
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.uid = uid

    def __repr__(self) -> str:
        return (
            f"Message(#{self.uid} {self.src}->{self.dst} {self.kind!r} "
            f"{self.payload!r})"
        )


#: heap entry tags, compared only after (time, seq) so dispatch order is
#: fully determined by the scheduling order
_DELIVERY = 0
_TIMER = 1


class SimulatedNetwork:
    """The virtual-time event loop connecting distributed nodes.

    Parameters
    ----------
    latency:
        The per-message one-way latency distribution.
    seed:
        Seed of the private latency RNG.
    fault_plan:
        Optional :class:`~repro.engine.faults.NetworkFaultPlan` injecting
        seeded loss/duplication and deterministic partition drops.
    metrics:
        Registry for the ``dist.net.*`` counters (sent, delivered,
        dropped, duplicated, dropped_at_node).
    tracer:
        Optional structured tracer; SEND/RECV events are stamped with
        virtual time, so a traced run's event stream is deterministic.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        fault_plan: Optional[NetworkFaultPlan] = None,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.latency = latency if latency is not None else LatencyModel()
        self.fault_plan = fault_plan
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._tracing = self.tracer.enabled
        self.now: float = 0.0
        self._rng = random.Random(seed)
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._next_uid = 1
        self._next_timer_id = 1
        self._cancelled_timers: Set[int] = set()
        self._nodes: Dict[str, Any] = {}
        self._incarnations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register(self, node: Any) -> Any:
        """Attach a node; its ``name`` becomes its address."""
        name = node.name
        if name in self._nodes:
            raise ValueError(f"a node named {name!r} is already registered")
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Any:
        return self._nodes[name]

    # ------------------------------------------------------------------
    # incarnations
    # ------------------------------------------------------------------
    def incarnation_of(self, name: str) -> int:
        """The node's current incarnation number (0 until its first crash)."""
        return self._incarnations.get(name, 0)

    def bump_incarnation(self, name: str) -> int:
        """Start a new incarnation of ``name`` (call at crash time).

        Every timer armed by the previous incarnation becomes stale: it
        will be dropped at fire time instead of being dispatched into the
        restarted process.
        """
        incarnation = self._incarnations.get(name, 0) + 1
        self._incarnations[name] = incarnation
        return incarnation

    # ------------------------------------------------------------------
    # sending and timers
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, kind: str, payload: Dict[str, Any]) -> None:
        """Submit one message; faults and latency decide what arrives."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst!r}")
        self.metrics.incr("dist.net.sent")
        message = Message(src, dst, kind, payload, self._next_uid)
        self._next_uid += 1
        if self._tracing:
            self.tracer.now = self.now
            self.tracer.emit(
                obs_trace.SEND,
                int(payload.get("txn", 0)),
                payload.get("txn"),
                0,
                detail=kind,
                meta={"src": src, "dst": dst},
            )
        action = None
        if self.fault_plan is not None:
            action = self.fault_plan.intercept(src, dst, kind, self.now)
        if action == DROP_ACTION:
            self.metrics.incr("dist.net.dropped")
            return
        copies = 2 if action == DUPLICATE_ACTION else 1
        if copies == 2:
            self.metrics.incr("dist.net.duplicated")
        for _ in range(copies):
            delay = self.latency.sample(self._rng)
            self._push(self.now + delay, _DELIVERY, message)

    def set_timer(
        self,
        node_name: str,
        delay: float,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        supervisor: bool = False,
    ) -> int:
        """Schedule ``node.on_timer(now, kind, payload)``; returns a timer id.

        ``supervisor=True`` exempts the timer from incarnation staleness
        (and from the crashed-node timer drop): it belongs to the external
        supervisor that restarts the node, not to the node process itself.
        """
        if delay < 0:
            raise ValueError(f"timer delay must be non-negative, got {delay!r}")
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        incarnation = None if supervisor else self.incarnation_of(node_name)
        self._push(
            self.now + delay,
            _TIMER,
            (timer_id, node_name, kind, payload or {}, incarnation),
        )
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        """Cancel a pending timer (firing a cancelled timer is a no-op)."""
        self._cancelled_timers.add(timer_id)

    def _push(self, time: float, tag: int, item: Any) -> None:
        heapq.heappush(self._heap, (time, self._seq, tag, item))
        self._seq += 1

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(
        self, until: Optional[float] = None, max_events: int = 1_000_000
    ) -> int:
        """Dispatch events in (time, seq) order; returns events dispatched.

        Stops when the heap drains (the distributed protocol reached
        quiescence) or the next event lies past ``until``.  The
        ``max_events`` guard turns a retry livelock into a loud failure
        instead of an infinite loop.
        """
        dispatched = 0
        while self._heap:
            time, _, tag, item = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = max(self.now, time)
            dispatched += 1
            if dispatched > max_events:
                raise RuntimeError(
                    f"simulated network exceeded {max_events} events at "
                    f"t={self.now:g} — a retry loop is not converging"
                )
            if tag == _DELIVERY:
                self._deliver(item)
            else:
                self._fire_timer(item)
        return dispatched

    @property
    def idle(self) -> bool:
        """Whether no delivery or timer remains queued."""
        return not self._heap

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not getattr(node, "accepting_messages", True):
            # destination crashed (or was never registered in a partial
            # topology): the message is lost exactly as a real crashed
            # host loses its inbound packets
            self.metrics.incr("dist.net.dropped_at_node")
            return
        self.metrics.incr("dist.net.delivered")
        if self._tracing:
            self.tracer.now = self.now
            self.tracer.emit(
                obs_trace.RECV,
                int(message.payload.get("txn", 0)),
                message.payload.get("txn"),
                0,
                detail=message.kind,
                meta={"src": message.src, "dst": message.dst},
            )
        node.on_message(self.now, message)

    def _fire_timer(
        self, item: Tuple[int, str, str, Dict[str, Any], Optional[int]]
    ) -> None:
        timer_id, node_name, kind, payload, incarnation = item
        if timer_id in self._cancelled_timers:
            self._cancelled_timers.discard(timer_id)
            return
        node = self._nodes.get(node_name)
        if node is None:
            return
        supervisor = incarnation is None or kind == "recover"
        if incarnation is not None and incarnation != self.incarnation_of(node_name):
            # armed by a pre-crash incarnation: even if the node has since
            # restarted and accepts timers again, this timer belongs to a
            # dead process and must not fire into the new one
            if not supervisor:
                self.metrics.incr("dist.net.stale_timers")
                return
        if not getattr(node, "accepting_timers", True) and not supervisor:
            # a crashed node's pending timers die with its volatile state;
            # only the supervisor's restart timer survives (it models the
            # supervisor, not the crashed process)
            return
        node.on_timer(self.now, kind, payload)
