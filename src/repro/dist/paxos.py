"""Multi-decree consensus with leader leases over the simulated network.

Each shard of the distributed engine becomes a **replica group** whose
members run the consensus protocol in this module: a multi-decree
Paxos in its leader-based (Raft-shaped) formulation — one elected
proposer per term batches decrees through a replicated log instead of
running a fresh ballot per slot.  The module is deliberately
paper-shaped rather than library-shaped: everything a replica does is
driven by ``on_message``/``on_timer`` callbacks from the
:class:`~repro.dist.network.SimulatedNetwork`, all randomness (election
timeouts) comes from a per-replica seeded RNG, and every piece of
oracle-relevant history (leader stints, vote grants, the log itself) is
kept on the replica object for the harness to audit after the run.

Protocol summary
----------------
* **Terms and elections.**  A replica that hears nothing from a leader
  for one randomized-but-seeded election timeout increments its term and
  solicits votes (``repl-vote-req``).  Votes obey the election
  restriction: a replica only grants its single vote per term to a
  candidate whose log is at least as up to date as its own, so a leader
  always holds every chosen entry.
* **Log replication.**  The leader appends commands to its log and
  replicates them with ``repl-append`` (which doubles as the heartbeat).
  An entry is **chosen** once replicas on a quorum hold it *and* the
  leader has established its term by committing an entry of that term —
  leaders commit a no-op on election for exactly this purpose, and never
  count quorums for prior-term entries directly (the classic
  figure-eight anomaly).
* **Catch-up.**  Followers reject appends whose predecessor they do not
  hold; the leader backtracks ``next_index`` (with the follower's length
  hint) and re-sends, so a restarted replica converges from its durable
  log without any snapshot machinery.
* **Leases.**  The leader tracks, per follower, the send timestamp of
  the newest heartbeat that follower acknowledged; the quorum-th newest
  such timestamp plus ``lease_duration`` is the leader's lease.  The
  lease is a *liveness* device — a leader whose lease lapsed (e.g. it is
  on the minority side of a partition) sheds client work with
  ``repl-no-quorum`` instead of hanging it; safety never depends on it,
  because 2PC prepares are validated against replicated state.

Crash/restart model: ``crash()`` wipes volatile state (role, commit
index, leader bookkeeping), bumps the node's network incarnation so
pre-crash timers cannot fire into the restart, and arms a supervisor
restart timer.  The log, ``current_term`` and ``voted_for`` survive, as
they would on a real replica's stable storage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_TRACER, Tracer

from .network import Message, SimulatedNetwork

#: replica roles
FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: message kinds the consensus core exchanges (all prefixed ``repl-``
#: so fault plans can target consensus traffic separately from 2PC)
VOTE_REQ = "repl-vote-req"
VOTE = "repl-vote"
APPEND = "repl-append"
APPEND_REPLY = "repl-append-reply"


@dataclass(frozen=True)
class ReplicationConfig:
    """Tunables for one replica group (virtual time units).

    The defaults are sized against the network's default latency
    (base 1.0, jitter 0.5) and the 2PC layer's timeouts: an election
    completes in roughly two round trips plus the timeout draw, well
    under the coordinator's retry budget, and heartbeats are frequent
    enough that a healthy leader's lease never lapses.
    """

    #: leader heartbeat (empty ``repl-append``) period
    heartbeat_interval: float = 2.0
    #: minimum silence before a follower starts an election
    election_timeout: float = 8.0
    #: uniform extra randomness on top of ``election_timeout`` — this is
    #: what breaks split-vote symmetry, seeded per replica
    election_jitter: float = 6.0
    #: lease length granted by each quorum of heartbeat acks
    lease_duration: float = 6.0
    #: consecutive failed elections after which a replica tells clients
    #: ``repl-no-quorum`` instead of staying silent (graceful shedding
    #: on the minority side of a partition)
    suspect_after: int = 2
    #: delay before a crashed replica restarts (supervisor timer)
    restart_delay: float = 10.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.election_timeout <= self.heartbeat_interval:
            raise ValueError(
                "election_timeout must exceed heartbeat_interval "
                f"({self.election_timeout!r} <= {self.heartbeat_interval!r})"
            )
        if self.election_jitter < 0:
            raise ValueError("election_jitter must be non-negative")
        if self.lease_duration <= 0:
            raise ValueError("lease_duration must be positive")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be at least 1")
        if self.restart_delay <= 0:
            raise ValueError("restart_delay must be positive")


class PaxosReplica:
    """One member of a replica group: consensus core only.

    Subclasses supply the replicated state machine by overriding
    :meth:`apply_command` (invoked exactly once per chosen log entry, in
    log order, on every live replica) and :meth:`reset_state` (invoked
    on restart before the log is re-applied).

    Log indexing convention: the log is a list of ``(term, command)``
    pairs; ``commit_index`` and ``last_applied`` are *counts* (the log
    prefix ``log[:commit_index]`` is chosen).
    """

    def __init__(
        self,
        name: str,
        group: str,
        peers: List[str],
        network: SimulatedNetwork,
        config: Optional[ReplicationConfig] = None,
        seed: int = 0,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if name not in peers:
            raise ValueError(f"replica {name!r} must be listed in its peers")
        self.name = name
        self.group = group
        self.peers = sorted(peers)
        self.others = [p for p in self.peers if p != name]
        self.quorum = len(self.peers) // 2 + 1
        self.network = network
        self.config = config if config is not None else ReplicationConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._tracing = self.tracer.enabled
        self._rng = random.Random(seed)

        # durable state (survives crash, as if on stable storage)
        self.log: List[Tuple[int, Tuple[Any, ...]]] = []
        self.current_term = 0
        self.voted_for: Optional[str] = None
        #: audit trail for the lease-uniqueness oracle: every (term,
        #: candidate) pair this replica granted its vote to
        self.vote_grants: List[Tuple[int, str]] = []
        #: audit trail: every stint *this* replica served as leader
        self.leader_stints: List[Dict[str, Any]] = []

        # volatile state
        self.role = FOLLOWER
        self.leader_hint: Optional[str] = None
        self.commit_index = 0
        self.last_applied = 0
        self.failed_elections = 0
        self.accepting_messages = True
        self.accepting_timers = True
        self.crash_count = 0
        self._heard_since_arm = False
        self._votes: Set[str] = set()
        #: peers heard from since the last election started — a lost
        #: election with a quorum of contacts is a split vote, not a
        #: partition, and must not feed quorum suspicion
        self._round_contacts: Set[str] = set()
        self._next_index: Dict[str, int] = {}
        self._match_index: Dict[str, int] = {}
        #: per-follower send-time of the newest heartbeat it acked
        self._acked_heartbeat: Dict[str, float] = {}
        self._lease_until = 0.0
        self._term_start_index = 0
        self._election_timer: Optional[int] = None
        self._heartbeat_timer: Optional[int] = None

        self._arm_election_timer()

    # ------------------------------------------------------------------
    # state-machine hooks (subclass responsibility)
    # ------------------------------------------------------------------
    def apply_command(self, now: float, index: int, command: Tuple[Any, ...]) -> None:
        """Apply one chosen command; ``index`` is its log position."""

    def reset_state(self, now: float) -> None:
        """Reset the state machine to its initial state (restart path)."""

    def on_step_down(self, now: float) -> None:
        """Hook: leader-only volatile protocol state must be dropped."""

    def on_elected(self, now: float) -> None:
        """Hook: runs after this replica becomes leader (post no-op append)."""

    # ------------------------------------------------------------------
    # liveness introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.accepting_messages

    def is_established_leader(self) -> bool:
        """Leader whose term no-op is already chosen (safe to serve)."""
        return self.role == LEADER and self.commit_index > self._term_start_index

    def has_lease(self, now: float) -> bool:
        """Whether the leader's quorum lease covers ``now``."""
        if self.role != LEADER:
            return False
        if len(self.peers) == 1:
            return True
        return now <= self._lease_until

    def quorum_suspect(self) -> bool:
        """Repeated failed elections: likely on the minority side."""
        return self.failed_elections >= self.config.suspect_after

    # ------------------------------------------------------------------
    # network callbacks
    # ------------------------------------------------------------------
    def on_message(self, now: float, message: Message) -> None:
        if message.src in self.others:
            self._round_contacts.add(message.src)
        kind = message.kind
        if kind == VOTE_REQ:
            self._on_vote_req(now, message.payload)
        elif kind == VOTE:
            self._on_vote(now, message.payload)
        elif kind == APPEND:
            self._on_append(now, message.payload)
        elif kind == APPEND_REPLY:
            self._on_append_reply(now, message.payload)
        else:
            self.on_client_message(now, message)

    def on_client_message(self, now: float, message: Message) -> None:
        """Non-consensus traffic (the 2PC layer); subclass overrides."""
        raise ValueError(f"replica {self.name} got unknown message {message!r}")

    def on_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        if kind == "repl-election":
            self._on_election_timer(now)
        elif kind == "repl-heartbeat":
            self._on_heartbeat_timer(now)
        elif kind == "repl-restart":
            self.restart(now)
        else:
            self.on_client_timer(now, kind, payload)

    def on_client_timer(self, now: float, kind: str, payload: Dict[str, Any]) -> None:
        raise ValueError(f"replica {self.name} got unknown timer kind {kind!r}")

    # ------------------------------------------------------------------
    # elections
    # ------------------------------------------------------------------
    def _arm_election_timer(self) -> None:
        if self._election_timer is not None:
            self.network.cancel_timer(self._election_timer)
        delay = (
            self.config.election_timeout
            + self._rng.random() * self.config.election_jitter
        )
        self._heard_since_arm = False
        self._election_timer = self.network.set_timer(
            self.name, delay, "repl-election", {}
        )

    def _on_election_timer(self, now: float) -> None:
        self._election_timer = None
        if self.role == LEADER:
            return
        if self._heard_since_arm:
            self._arm_election_timer()
            return
        self._start_election(now)

    def _start_election(self, now: float) -> None:
        self.current_term += 1
        self.role = CANDIDATE
        self.voted_for = self.name
        self.vote_grants.append((self.current_term, self.name))
        self._votes = {self.name}
        # only a *quiet* round feeds quorum suspicion: an election lost
        # to a rival whose voters still answered is a split vote the
        # randomized timeouts will resolve, while a full timeout with
        # sub-quorum contact means this side cannot assemble a majority
        if len(self._round_contacts) + 1 < self.quorum:
            self.failed_elections += 1
        else:
            self.failed_elections = 0
        self._round_contacts = set()
        self.metrics.incr("dist.repl.elections")
        last_term = self.log[-1][0] if self.log else 0
        for peer in self.others:
            self.network.send(
                self.name,
                peer,
                VOTE_REQ,
                {
                    "term": self.current_term,
                    "cand": self.name,
                    "last_idx": len(self.log),
                    "last_term": last_term,
                },
            )
        self._arm_election_timer()
        if len(self._votes) >= self.quorum:  # single-replica group
            self._become_leader(now)

    def _log_up_to_date(self, payload: Dict[str, Any]) -> bool:
        my_last_term = self.log[-1][0] if self.log else 0
        if payload["last_term"] != my_last_term:
            return payload["last_term"] > my_last_term
        return payload["last_idx"] >= len(self.log)

    def _on_vote_req(self, now: float, payload: Dict[str, Any]) -> None:
        term = payload["term"]
        if term > self.current_term:
            self._step_down(now, term)
        granted = False
        if (
            term == self.current_term
            and self.role != LEADER
            and self.voted_for in (None, payload["cand"])
            and self._log_up_to_date(payload)
        ):
            granted = True
            if self.voted_for is None:
                self.voted_for = payload["cand"]
                self.vote_grants.append((term, payload["cand"]))
            # granting a vote defers this replica's own candidacy
            self._heard_since_arm = True
        self.network.send(
            self.name,
            payload["cand"],
            VOTE,
            {"term": self.current_term, "voter": self.name, "granted": granted},
        )

    def _on_vote(self, now: float, payload: Dict[str, Any]) -> None:
        if payload["term"] > self.current_term:
            self._step_down(now, payload["term"])
            return
        if (
            self.role != CANDIDATE
            or payload["term"] != self.current_term
            or not payload["granted"]
        ):
            return
        self._votes.add(payload["voter"])
        if len(self._votes) >= self.quorum:
            self._become_leader(now)

    def _become_leader(self, now: float) -> None:
        self.role = LEADER
        self.leader_hint = self.name
        self.failed_elections = 0
        self.leader_stints.append(
            {"term": self.current_term, "replica": self.name, "start": now}
        )
        self.metrics.incr("dist.repl.leaders_elected")
        if self._tracing:
            self.tracer.now = now
            self.tracer.emit(
                obs_trace.ELECT,
                0,
                None,
                0,
                detail=self.group,
                meta={"replica": self.name, "term": self.current_term},
            )
        self._next_index = {p: len(self.log) for p in self.others}
        self._match_index = {p: 0 for p in self.others}
        self._acked_heartbeat = {}
        # the winning votes came from a live quorum within the last
        # election timeout; seed the lease from them
        self._lease_until = now + self.config.lease_duration
        # establish the term: chosen entries are only ever counted for
        # the current term, so commit a no-op of this term first
        self._term_start_index = len(self.log)
        self.log.append((self.current_term, ("noop",)))
        self._advance_commit(now)  # single-replica groups choose instantly
        self._broadcast_appends(now)
        self._arm_heartbeat_timer()
        self.on_elected(now)

    def _step_down(self, now: float, term: int) -> None:
        was_leader = self.role == LEADER
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        self.role = FOLLOWER
        self._votes = set()
        self._next_index = {}
        self._match_index = {}
        self._acked_heartbeat = {}
        self._lease_until = 0.0
        if self._heartbeat_timer is not None:
            self.network.cancel_timer(self._heartbeat_timer)
            self._heartbeat_timer = None
        if was_leader:
            self.on_step_down(now)
        if self._election_timer is None:
            self._arm_election_timer()

    # ------------------------------------------------------------------
    # log replication
    # ------------------------------------------------------------------
    def propose(self, now: float, command: Tuple[Any, ...]) -> int:
        """Leader-only: append ``command`` and start replicating it."""
        if self.role != LEADER:
            raise RuntimeError(
                f"replica {self.name} proposed {command!r} while {self.role}"
            )
        index = len(self.log)
        self.log.append((self.current_term, command))
        self.metrics.incr("dist.repl.proposals")
        self._advance_commit(now)  # single-replica groups choose instantly
        self._broadcast_appends(now)
        return index

    def _arm_heartbeat_timer(self) -> None:
        if self._heartbeat_timer is not None:
            self.network.cancel_timer(self._heartbeat_timer)
        self._heartbeat_timer = self.network.set_timer(
            self.name, self.config.heartbeat_interval, "repl-heartbeat", {}
        )

    def _on_heartbeat_timer(self, now: float) -> None:
        self._heartbeat_timer = None
        if self.role != LEADER:
            return
        self._broadcast_appends(now)
        self._arm_heartbeat_timer()

    def _broadcast_appends(self, now: float) -> None:
        for peer in self.others:
            self._send_append(now, peer)

    def _send_append(self, now: float, peer: str) -> None:
        prev = self._next_index.get(peer, len(self.log))
        entries = [[term, list(cmd)] for term, cmd in self.log[prev:]]
        prev_term = self.log[prev - 1][0] if prev > 0 else 0
        self.network.send(
            self.name,
            peer,
            APPEND,
            {
                "term": self.current_term,
                "leader": self.name,
                "prev_idx": prev,
                "prev_term": prev_term,
                "entries": entries,
                "commit": self.commit_index,
                "hb": now,
            },
        )

    def _on_append(self, now: float, payload: Dict[str, Any]) -> None:
        term = payload["term"]
        if term < self.current_term:
            self.network.send(
                self.name,
                payload["leader"],
                APPEND_REPLY,
                {
                    "term": self.current_term,
                    "follower": self.name,
                    "ok": False,
                    "hint": len(self.log),
                    "hb": payload["hb"],
                },
            )
            return
        if term > self.current_term or self.role != FOLLOWER:
            self._step_down(now, term)
        self.leader_hint = payload["leader"]
        self.failed_elections = 0
        self._heard_since_arm = True
        prev = payload["prev_idx"]
        ok = prev <= len(self.log) and (
            prev == 0 or self.log[prev - 1][0] == payload["prev_term"]
        )
        if not ok:
            # missing or mismatched predecessor: hint our length so the
            # leader backtracks next_index in one step instead of one-by-one
            self.network.send(
                self.name,
                payload["leader"],
                APPEND_REPLY,
                {
                    "term": self.current_term,
                    "follower": self.name,
                    "ok": False,
                    "hint": min(len(self.log), max(prev - 1, 0)),
                    "hb": payload["hb"],
                },
            )
            return
        index = prev
        for term_entry, cmd in payload["entries"]:
            command = tuple(cmd)
            if index < len(self.log):
                if self.log[index][0] != term_entry:
                    # conflicting uncommitted suffix from a deposed leader
                    del self.log[index:]
                    self.log.append((term_entry, command))
                # else: already hold this entry — keep it (a stale
                # retransmission must not truncate newer entries)
            else:
                self.log.append((term_entry, command))
            index += 1
        match = prev + len(payload["entries"])
        # only advance commit up to entries this append vouched for — a
        # reordered stale append's commit index may exceed what we hold
        new_commit = min(payload["commit"], match)
        if new_commit > self.commit_index:
            self.commit_index = new_commit
            self._apply(now)
        self.network.send(
            self.name,
            payload["leader"],
            APPEND_REPLY,
            {
                "term": self.current_term,
                "follower": self.name,
                "ok": True,
                "match": match,
                "hb": payload["hb"],
            },
        )

    def _on_append_reply(self, now: float, payload: Dict[str, Any]) -> None:
        if payload["term"] > self.current_term:
            self._step_down(now, payload["term"])
            return
        if self.role != LEADER or payload["term"] != self.current_term:
            return
        follower = payload["follower"]
        if follower not in self._next_index:
            return
        if payload["ok"]:
            match = payload["match"]
            if match > self._match_index[follower]:
                self._match_index[follower] = match
            if match > self._next_index[follower]:
                self._next_index[follower] = match
            acked = payload["hb"]
            if acked > self._acked_heartbeat.get(follower, -1.0):
                self._acked_heartbeat[follower] = acked
            self._refresh_lease(now)
            self._advance_commit(now)
            # applying a newly chosen entry may have crashed this replica
            # (a chaos hook) or deposed it — re-check before continuing
            if (
                self.role == LEADER
                and follower in self._next_index
                and self._next_index[follower] < len(self.log)
            ):
                self._send_append(now, follower)  # keep catch-up moving
        else:
            hint = payload["hint"]
            if hint < self._next_index[follower]:
                self._next_index[follower] = hint
            self._send_append(now, follower)

    def _refresh_lease(self, now: float) -> None:
        # the lease extends from the send time of the newest heartbeat a
        # quorum acknowledged (the leader acks its own sends implicitly)
        needed = self.quorum - 1
        if needed <= 0:
            self._lease_until = now + self.config.lease_duration
            return
        acked = sorted(self._acked_heartbeat.values(), reverse=True)
        if len(acked) < needed:
            return
        basis = acked[needed - 1]
        lease = basis + self.config.lease_duration
        if lease > self._lease_until:
            self._lease_until = lease

    def _advance_commit(self, now: float) -> None:
        if self.role != LEADER:
            return
        matches = sorted(
            [len(self.log)] + list(self._match_index.values()), reverse=True
        )
        candidate = matches[self.quorum - 1]
        if candidate <= self.commit_index:
            return
        # the quorum rule only proves choice for current-term entries;
        # earlier entries are chosen transitively once one of ours is
        if self.log[candidate - 1][0] != self.current_term:
            return
        self.commit_index = candidate
        self._apply(now)

    def _apply(self, now: float) -> None:
        # stop applying the moment a chaos hook crashes this replica
        # mid-loop; the restart path re-applies from a reset state machine
        while self.last_applied < self.commit_index and self.accepting_messages:
            index = self.last_applied
            _, command = self.log[index]
            self.last_applied += 1
            self.apply_command(now, index, command)

    # ------------------------------------------------------------------
    # crash and restart
    # ------------------------------------------------------------------
    def crash(self, now: float, restart_delay: Optional[float] = None) -> None:
        """Crash this replica; durable state (log, term, vote) survives."""
        if not self.accepting_messages:
            return
        self.accepting_messages = False
        self.accepting_timers = False
        self.crash_count += 1
        self.metrics.incr("dist.repl.crashes")
        if self._tracing:
            self.tracer.now = now
            self.tracer.emit(
                obs_trace.CRASH,
                0,
                None,
                0,
                detail=self.name,
                meta={"group": self.group, "term": self.current_term},
            )
        self.network.bump_incarnation(self.name)
        self.role = FOLLOWER
        self.leader_hint = None
        self._votes = set()
        self._next_index = {}
        self._match_index = {}
        self._acked_heartbeat = {}
        self._lease_until = 0.0
        self._election_timer = None
        self._heartbeat_timer = None
        delay = self.config.restart_delay if restart_delay is None else restart_delay
        self.network.set_timer(self.name, delay, "repl-restart", {}, supervisor=True)

    def restart(self, now: float) -> None:
        """Come back up: rebuild volatile state by replaying the log."""
        if self.accepting_messages:
            return
        self.accepting_messages = True
        self.accepting_timers = True
        self.metrics.incr("dist.repl.restarts")
        if self._tracing:
            self.tracer.now = now
            self.tracer.emit(
                obs_trace.RECOVER,
                0,
                None,
                0,
                detail=self.name,
                meta={"group": self.group, "term": self.current_term},
            )
        self.commit_index = 0
        self.last_applied = 0
        self.failed_elections = 0
        self._round_contacts = set()
        self.reset_state(now)
        # a restarted replica holds its durable log but does not know how
        # much of it is chosen; it relearns the commit index from the
        # current leader's appends (safe: applying is idempotent from a
        # freshly reset state machine)
        self._arm_election_timer()
