"""The cross-protocol abort taxonomy: machine-readable reason codes.

Every abort an online protocol (or the kernel's fault injector) issues
carries one of these codes on its :class:`~repro.engine.protocols.base.
Decision` (``decision.code``), alongside the free-text ``reason``.  The
free text is for humans reading one counterexample; the code is for
machines folding thousands of aborts into an attribution report — the
observability layer (:mod:`repro.obs`) groups abort events by code, and
the metrics registry counts them under ``abort.<code>``.

The taxonomy is deliberately small and *protocol-shaped*: each code
names the mechanism that killed the attempt, not the workload pattern
that triggered it, so the same code means the same thing whether it came
from the executor, the simulator, or a harness cell.  Where the
mechanism has an identifiable culprit (the conflicting writer, the
deadlock peers), the decision also names it in ``conflict_txns`` /
``conflict_key`` so hot-key reports can attribute aborts to blockers.
"""

from __future__ import annotations

from typing import Dict

#: fallback for aborts predating the taxonomy (must never appear in a
#: registered protocol's decisions — pinned by tests/test_obs_trace.py)
ABORT_UNSPECIFIED = "unspecified"

# --- locking ----------------------------------------------------------
#: strict 2PL: the requester's wait would close a wait-for cycle, or the
#: protocol chose this transaction as the cycle's victim
ABORT_LOCK_DEADLOCK = "lock-deadlock"

# --- serialization graph testing --------------------------------------
#: SGT: waiting for a pending (uncommitted buffered) write would deadlock
ABORT_WAIT_DEADLOCK = "wait-deadlock"
#: SGT: granting the operation would close a serialization-graph cycle
ABORT_SG_CYCLE = "sg-cycle"

# --- timestamp ordering ------------------------------------------------
#: T/O: the key already carries a write timestamp above the reader's
ABORT_TO_READ_TOO_LATE = "to-read-too-late"
#: T/O: the key was already read or written at a timestamp above the writer's
ABORT_TO_WRITE_TOO_LATE = "to-write-too-late"

# --- optimistic validation (Kung & Robinson) ---------------------------
#: OCC: a key in the read set was overwritten by a transaction that
#: committed after this one started (``conflict_txns`` names the writer)
ABORT_OCC_READ_INVALIDATED = "occ-read-invalidated"
#: OCC: the transaction outlived the retained write-index history and
#: must abort conservatively (a pass could not be trusted)
ABORT_OCC_HISTORY_OVERFLOW = "occ-history-overflow"
#: parallel OCC: read/write footprint overlaps the write set of a
#: transaction that was mid-validation when this one entered the pipeline
ABORT_OCC_PIPELINE_OVERLAP = "occ-pipeline-overlap"

# --- snapshot isolation -------------------------------------------------
#: SI: first-committer-wins — a concurrent writer committed a newer
#: version of a write-set key (``conflict_txns`` names the winner)
ABORT_SI_FIRST_COMMITTER = "si-first-committer"
#: serializable SI: committing would complete a dangerous structure
#: (rw-antidependency pivot among concurrent commits)
ABORT_SSI_PIVOT = "ssi-pivot"
#: serializable SI: a kernel fast-path reader's next read would observe
#: a committed pivot's overwrite (Fekete's read-only anomaly)
ABORT_SSI_FASTPATH_PIVOT = "ssi-fastpath-pivot"

# --- multi-version timestamp ordering -----------------------------------
#: MVTO: the version this write would supersede was already read at a
#: timestamp above the writer's
ABORT_MVTO_READ_INVALIDATION = "mvto-read-invalidation"

# --- deterministic epoch scheduling (Calvin-style) -----------------------
#: deterministic: a data operation touched a key outside the declared
#: read/write footprint — the attempt aborts and restarts as a
#: low-priority "reconnaissance" re-submission whose fresh ticket (and
#: now-known footprint) lands at the tail of the sequence order
ABORT_DET_RECON = "det-epoch-recon"
#: deterministic: a data operation arrived before the transaction
#: declared any footprint at all (the sequencer never admitted it, so
#: it holds no place in the epoch order to be granted in)
ABORT_DET_UNDECLARED = "det-epoch-undeclared"

# --- engine-level -------------------------------------------------------
#: the deterministic fault injector forced this attempt to abort
ABORT_FAULT_INJECTED = "fault-injected"

# --- distributed two-phase commit (repro.dist) ---------------------------
#: 2PC: the coordinator exhausted its retry budget waiting for a shard
#: (read replies, votes) and aborted the transaction
ABORT_TPC_TIMEOUT = "2pc-timeout"
#: 2PC: the coordinator crashed before logging a decision; recovery
#: presumed abort (the write-ahead decision log had no outcome)
ABORT_TPC_COORDINATOR_CRASH = "2pc-coordinator-crash"
#: 2PC: a participant voted NO at prepare — validation found a stale
#: read version or a prepare-lock conflict on its shard
ABORT_TPC_PARTICIPANT_NO = "2pc-participant-no"
#: 2PC: admission control shed the transaction — a shard it touches
#: crossed the degradation threshold, or the backpressure queue is full
ABORT_TPC_SHED = "2pc-shed"
#: replication: the shard's replica group could not reach a quorum (the
#: contacted replica is leaderless/minority-partitioned, or the leader's
#: quorum lease lapsed) — the transaction sheds instead of hanging
ABORT_REPL_NO_QUORUM = "repl-no-quorum"

#: every taxonomy code with a one-line description — the README table and
#: the ``python -m repro.obs`` abort summary render from this registry
ABORT_REASONS: Dict[str, str] = {
    ABORT_LOCK_DEADLOCK: "2PL wait-for cycle (requester or chosen victim)",
    ABORT_WAIT_DEADLOCK: "SGT deadlock waiting on a pending buffered write",
    ABORT_SG_CYCLE: "SGT serialization-graph cycle prevented",
    ABORT_TO_READ_TOO_LATE: "T/O read below the key's write timestamp",
    ABORT_TO_WRITE_TOO_LATE: "T/O write below the key's read/write timestamp",
    ABORT_OCC_READ_INVALIDATED: "OCC read-set key overwritten since start",
    ABORT_OCC_HISTORY_OVERFLOW: "OCC conservative abort past the index floor",
    ABORT_OCC_PIPELINE_OVERLAP: "parallel OCC overlap with a concurrent validator",
    ABORT_SI_FIRST_COMMITTER: "SI first-committer-wins lost to a concurrent writer",
    ABORT_SSI_PIVOT: "SSI dangerous structure at commit",
    ABORT_SSI_FASTPATH_PIVOT: "SSI read-only fast path raced a committed pivot",
    ABORT_MVTO_READ_INVALIDATION: "MVTO superseded version already read later",
    ABORT_DET_RECON: "deterministic footprint under-declared (reconnaissance restart)",
    ABORT_DET_UNDECLARED: "deterministic data access before footprint declaration",
    ABORT_FAULT_INJECTED: "deterministic fault injection",
    ABORT_TPC_TIMEOUT: "2PC retry budget exhausted waiting on a shard",
    ABORT_TPC_COORDINATOR_CRASH: "2PC coordinator crashed pre-decision (presumed abort)",
    ABORT_TPC_PARTICIPANT_NO: "2PC participant voted NO at prepare",
    ABORT_TPC_SHED: "2PC admission shed (degraded shard or full backlog)",
    ABORT_REPL_NO_QUORUM: "replica group quorum lost (leaderless or minority side)",
    ABORT_UNSPECIFIED: "legacy/unclassified abort (should not occur)",
}

#: the distributed-commit subset: every abort the 2PC layer issues must
#: carry one of these (pinned by the distributed conformance oracles)
TPC_ABORT_CODES = frozenset(
    {
        ABORT_TPC_TIMEOUT,
        ABORT_TPC_COORDINATOR_CRASH,
        ABORT_TPC_PARTICIPANT_NO,
        ABORT_TPC_SHED,
        ABORT_REPL_NO_QUORUM,
    }
)
