"""Process-parallel execution of independent shards.

:func:`repro.engine.runtime.run_sharded_batch` already treats each shard
of a :class:`~repro.engine.storage.ShardedDataStore` as an independent
conflict domain with its own protocol instance — but it runs the shards
one after another on one core.  :class:`ParallelShardRunner` executes
the same shard batches in a :class:`concurrent.futures.
ProcessPoolExecutor`, which is the first time the engine uses more than
one core: with ``W`` workers and ``S >= W`` balanced shards, wall-clock
approaches ``1/W`` of the serial sharded run (given ``W`` actual CPUs).

Determinism is preserved exactly as in the serial path:

* every shard derives its engine seed as ``seed + shard_index``;
* a fault spec is replayed from scratch per shard (each worker builds a
  fresh :class:`~repro.engine.faults.FaultPlan` from the same spec);
* each worker rebuilds its shard store from the shard's committed
  snapshot via the sharded store's ``shard_factory``.

So ``ParallelShardRunner(workers=w).run(...)`` produces **identical
per-shard results** to ``run_sharded_batch(...)`` for any ``w`` — the
parity is pinned by ``tests/test_engine_parallel.py`` — and worker count
only changes wall-clock, never outcomes.

Everything submitted to a worker crosses a process boundary, so the
protocol factory and the transaction specs must be picklable.  The
registered protocols and the shipped workload builders are (the
operation transforms are module-level callable classes, see
:class:`repro.engine.operations.AddConstantTransform`); hand-written
specs using local lambdas are not, and the runner raises a
``ValueError`` naming the offender instead of the bare pickle error.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.metrics import Metrics
from repro.engine.operations import TransactionSpec
from repro.engine.runtime import (
    ExecutionResult,
    ShardedExecutionResult,
    run_batch,
)
from repro.engine.storage import ShardedDataStore
from repro.obs.trace import Tracer


class ShardWorkerError(RuntimeError):
    """A shard worker died mid-batch, with the context to reproduce it.

    The bare exception a worker raises surfaces from the pool stripped
    of everything needed to replay the failure; this wrapper pins the
    shard index and the shard's derived engine seed to the error so
    ``run_batch(..., seed=error.seed)`` on that shard's snapshot
    reproduces the crash deterministically.  It crosses the process
    boundary intact (see ``__reduce__``), so the in-process and pooled
    paths raise identically.
    """

    def __init__(self, shard_index: int, seed: Optional[int], message: str) -> None:
        super().__init__(
            f"shard {shard_index} worker failed (seed={seed!r}): {message}"
        )
        self.shard_index = shard_index
        self.seed = seed
        self.message = message

    def __reduce__(self):
        # default exception pickling would re-call __init__ with
        # self.args (the formatted string) and crash on arity
        return (ShardWorkerError, (self.shard_index, self.seed, self.message))


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to execute one shard, picklable."""

    shard_index: int
    store_factory: Callable[[Dict[str, Any]], Any]
    initial: Dict[str, Any]
    specs: Tuple[TransactionSpec, ...]
    protocol_factory: Callable[[Any], Any]
    interleaving: str
    seed: Optional[int]
    max_attempts: int
    max_concurrent: Optional[int]
    wait_policy: str
    scheduler: str
    fault_spec: Optional[FaultSpec]


def _run_shard_task(task: _ShardTask) -> Tuple[int, ExecutionResult]:
    """Worker entry point: rebuild the shard store and run its batch.

    Any failure is re-raised as :class:`ShardWorkerError` *inside* the
    worker, so the typed error (not a context-free traceback) is what
    crosses the process boundary back to the caller.
    """
    try:
        store = task.store_factory(task.initial)
        result = run_batch(
            task.protocol_factory,
            store,
            list(task.specs),
            interleaving=task.interleaving,
            seed=task.seed,
            max_attempts=task.max_attempts,
            max_concurrent=task.max_concurrent,
            wait_policy=task.wait_policy,
            scheduler=task.scheduler,
            fault_plan=None if task.fault_spec is None else FaultPlan(task.fault_spec),
            metrics=Metrics(),
        )
    except ShardWorkerError:
        raise
    except Exception as error:
        raise ShardWorkerError(
            task.shard_index, task.seed, f"{type(error).__name__}: {error}"
        ) from error
    return task.shard_index, result


class ParallelShardRunner:
    """Run a sharded batch with one worker process per shard group.

    Parameters
    ----------
    workers:
        Worker process count.  ``None`` (the default) uses the shard
        count of each submitted batch capped at ``os.cpu_count()`` —
        forking more processes than cores only adds pickling and
        scheduling overhead.  An explicit count is honoured as given
        (still never more processes than shards); more workers than
        shards is harmless, fewer queues shards.
    mp_context:
        Optional :mod:`multiprocessing` context, e.g. to force the
        ``fork`` or ``spawn`` start method; ``None`` uses the platform
        default.

    Unlike :func:`run_sharded_batch`, which executes protocols directly
    on the caller's shard stores, workers rebuild their shard store from
    the shard's committed snapshot — so the caller's
    :class:`ShardedDataStore` is **left untouched** by a parallel run.
    The authoritative post-run state is ``result.store_snapshot`` (the
    same field callers must already use for factory-wrapped stores in
    the serial path).
    """

    def __init__(self, workers: Optional[int] = None, mp_context: Any = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.mp_context = mp_context

    def run(
        self,
        protocol_factory,
        store: ShardedDataStore,
        specs: Sequence[TransactionSpec],
        interleaving: str = "round-robin",
        seed: Optional[int] = None,
        max_attempts: int = 50,
        max_concurrent: Optional[int] = None,
        wait_policy: str = "event",
        scheduler: str = "run-queue",
        fault_spec: Optional[FaultSpec] = None,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> ShardedExecutionResult:
        """Execute the batch, one protocol instance per shard, in parallel.

        Mirrors :func:`repro.engine.runtime.run_sharded_batch` —
        identical grouping, seeding and per-shard results — except that
        faults are described by a :class:`FaultSpec` (a stateful plan
        cannot cross process boundaries), a supplied ``metrics``
        registry receives the *merged* per-shard metrics after the run
        rather than being written to live, and commits land in the
        workers' rebuilt stores, not in ``store`` — read the post-run
        state from the returned ``store_snapshot``.

        A ``tracer`` records **wall-clock spans** around the
        shard-dispatch path — task build, the per-shard pickle (the IPC
        serialization tax, with payload bytes in the span meta), and
        the pool submit/collect — so "workers=2 is slower than
        workers=1" becomes a measured number instead of a guess.
        Workers cannot emit engine events across the process boundary,
        so shard execution itself is untraced here; spans live outside
        the deterministic event stream (see :mod:`repro.obs.trace`).
        """
        tracing = tracer is not None and tracer.enabled
        groups = store.group_specs(specs)
        build_started = time.perf_counter() if tracing else 0.0
        tasks = [
            _ShardTask(
                shard_index=shard_index,
                store_factory=store.shard_factory,
                initial=store.shard_snapshot(shard_index),
                specs=tuple(groups[shard_index]),
                protocol_factory=protocol_factory,
                interleaving=interleaving,
                seed=None if seed is None else seed + shard_index,
                max_attempts=max_attempts,
                max_concurrent=max_concurrent,
                wait_policy=wait_policy,
                scheduler=scheduler,
                fault_spec=fault_spec,
            )
            for shard_index in sorted(groups)
        ]
        if tracing:
            tracer.span(
                "shard.build_tasks",
                build_started,
                time.perf_counter() - build_started,
                meta={"shards": len(tasks)},
            )

        if self.workers is not None:
            workers = self.workers
        else:
            workers = os.cpu_count() or 1
        workers = min(workers, len(tasks))

        per_shard: Dict[int, ExecutionResult] = {}
        if workers <= 1:
            # nothing to overlap: skip the pool (and its fork cost)
            for task in tasks:
                shard_index, result = _run_shard_task(task)
                per_shard[shard_index] = result
        else:
            # only pay the pre-flight pickle check when payloads will
            # actually cross a process boundary; the in-process fallback
            # above runs closure-built specs just fine
            if tracing:
                for task in tasks:
                    pickle_started = time.perf_counter()
                    payload = self._require_picklable([task])
                    tracer.span(
                        "shard.pickle",
                        pickle_started,
                        time.perf_counter() - pickle_started,
                        meta={"shard": task.shard_index, "bytes": payload},
                    )
            else:
                self._require_picklable(tasks)
            pool_started = time.perf_counter() if tracing else 0.0
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=self.mp_context,
            ) as pool:
                submitted = time.perf_counter() if tracing else 0.0
                if tracing:
                    tracer.span(
                        "shard.pool_start", pool_started, submitted - pool_started
                    )
                for shard_index, result in pool.map(_run_shard_task, tasks):
                    per_shard[shard_index] = result
                    if tracing:
                        tracer.span(
                            "shard.collect",
                            submitted,
                            time.perf_counter() - submitted,
                            meta={"shard": shard_index},
                        )

        if metrics is not None:
            for result in per_shard.values():
                if result.metrics is not None:
                    metrics.merge(result.metrics)

        return ShardedExecutionResult.merge(store, per_shard)

    @staticmethod
    def _require_picklable(tasks: List[_ShardTask]) -> int:
        """Fail fast, with a useful message, on unpicklable payloads.

        A lambda protocol factory or a closure-transform spec would
        otherwise surface as a bare ``PicklingError`` from deep inside
        the pool machinery, after workers have already been forked.
        Returns the total pickled payload size so the traced path can
        report the serialization tax in bytes.
        """
        total = 0
        for task in tasks:
            try:
                total += len(pickle.dumps(task))
            except Exception as error:
                raise ValueError(
                    f"shard {task.shard_index} cannot be shipped to a worker "
                    f"process: {error}. Protocol factories and operation "
                    "transforms must be module-level callables (use the "
                    "registry factories and the shipped op builders, e.g. "
                    "increment_op), not lambdas or closures."
                ) from error
        return total
