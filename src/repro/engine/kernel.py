"""The shared engine kernel: session state, protocol driving, wakeups.

Both engine front-ends — the untimed :class:`~repro.engine.runtime.
TransactionExecutor` and the timed :class:`~repro.engine.simulator.
Simulator` — used to duplicate the same logic: allocate transaction ids,
drive one protocol interaction per step (begin / data operation /
commit), buffer reads for UPDATE transforms, and restart after aborts.
This module hoists that logic into one kernel so the front-ends only
decide *policy*: interleaving order for the executor, simulated time for
the simulator.

The kernel's second job is **event-driven blocking**.  A ``BLOCK``
decision names the transactions it waits for (``Decision.blocked_on``);
the kernel records the blocked session in a *wait index* keyed by
blocker, subscribes to the protocol's finished/wake notifications, and
wakes exactly the sessions whose blockers resolved.  Callers that use the
wait index never poll a blocked request on a timer — the scaling win that
lets simulations run hundreds of clients.  Callers may also ignore the
parked flag and re-drive blocked sessions on a timer (the compatibility
"polling" mode); the kernel transparently un-parks a session that is
stepped while waiting.

Wakeups use broadcast semantics: a session wakes as soon as *any* of its
recorded blockers finishes.  A retry may then block again on a remaining
holder — one cheap extra interaction — but the kernel never has to prove
that every blocker will resolve, which keeps it robust against lock
queues whose holder set changes while a session waits.

The kernel's third job is the **declared-read-only fast path**: when a
session's program is read-only (:attr:`TransactionSpec.is_read_only`)
and the protocol hands out a stable snapshot timestamp
(:meth:`ConcurrencyControl.readonly_snapshot` — the multi-version
protocols do), every operation is served straight from that snapshot and
the write-buffer/validation machinery is skipped entirely.  Such
sessions can neither block nor abort, which is what drives reader
abort/block rates to zero on read-mostly workloads.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.faults import (
    ABORT_ACTION,
    COMMIT_STAGE,
    OPERATION_STAGE,
    FaultPlan,
)
from repro.engine.metrics import Metrics
from repro.engine.operations import Operation, OperationKind, TransactionSpec
from repro.engine.protocols.base import ConcurrencyControl, Decision, SnapshotAborted
from repro.engine.reasons import ABORT_FAULT_INJECTED
from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_TRACER, Tracer


class Session:
    """One submitted transaction as the engine sees it (across restarts).

    The executor keeps one session per submitted spec; the simulator
    reuses one session per client terminal, installing a fresh spec via
    :meth:`begin_new` for every generated transaction.

    Hand-rolled with ``__slots__`` rather than a dataclass: sessions are
    touched on every kernel step, and slot access keeps the per-step
    attribute traffic off a per-instance ``__dict__``.
    """

    __slots__ = (
        "spec",
        "session_id",
        "txn_id",
        "op_index",
        "reads",
        "attempts",
        "committed",
        "given_up",
        "blocks",
        "operations_issued",
        "cooldown",
        "waiting",
        "waiting_on",
        "fast_snapshot",
        "validating",
    )

    def __init__(
        self,
        spec: Optional[TransactionSpec],
        session_id: int,
        txn_id: Optional[int] = None,
        op_index: int = 0,
        reads: Optional[Dict[str, Any]] = None,
        attempts: int = 0,
        committed: bool = False,
        given_up: bool = False,
        blocks: int = 0,
        operations_issued: int = 0,
        cooldown: int = 0,
        waiting: bool = False,
        waiting_on: Optional[Set[int]] = None,
        fast_snapshot: Optional[Any] = None,
        validating: bool = False,
    ) -> None:
        self.spec = spec
        self.session_id = session_id
        self.txn_id = txn_id
        self.op_index = op_index
        self.reads: Dict[str, Any] = {} if reads is None else reads
        self.attempts = attempts
        self.committed = committed
        self.given_up = given_up
        self.blocks = blocks
        self.operations_issued = operations_issued
        #: rounds to sit out after an abort (linear backoff breaks livelock
        #: patterns where restarting transactions keep recreating the same
        #: deadlock against each other) — used by the untimed executor only.
        self.cooldown = cooldown
        #: event-driven state: True while parked in the kernel's wait index.
        self.waiting = waiting
        #: the blockers this session is currently parked on.
        self.waiting_on: Set[int] = set() if waiting_on is None else waiting_on
        #: read-only fast path: the snapshot timestamp this session reads at,
        #: or None when the session runs through the protocol normally.
        self.fast_snapshot = fast_snapshot
        #: two-stage commit: True between a granted prepare_commit and the
        #: finishing commit interaction (the validation pipeline).
        self.validating = validating

    def reset_for_restart(self) -> None:
        self.txn_id = None
        self.op_index = 0
        self.reads = {}
        self.cooldown = self.attempts
        self.validating = False
        # a restarted fast-path reader must take a *fresh* snapshot:
        # its old one is exactly what it aborted to escape
        self.fast_snapshot = None

    def begin_new(self, spec: TransactionSpec) -> None:
        """Install a fresh transaction program (simulator client reuse)."""
        self.spec = spec
        self.txn_id = None
        self.op_index = 0
        self.reads = {}
        self.attempts = 0
        self.committed = False
        self.given_up = False
        self.fast_snapshot = None
        self.validating = False

    @property
    def finished(self) -> bool:
        return self.committed or self.given_up


class StepKind(enum.Enum):
    """What one kernel step did to a session."""

    STARTED = "started"        # transaction began (no data request issued)
    GRANTED = "granted"        # a data operation was granted
    BLOCKED = "blocked"        # the request must wait
    VALIDATING = "validating"  # two-stage commit: validation stage passed;
                               # the next step finishes the commit
    COMMITTED = "committed"    # the commit request was granted
    ABORTED = "aborted"        # the attempt aborted (caller decides restart)


@dataclass(frozen=True)
class StepResult:
    """The outcome of driving a session by one protocol interaction."""

    kind: StepKind
    decision: Optional[Decision] = None
    #: whether the interaction was a commit request (vs. a data operation)
    was_commit: bool = False
    #: BLOCKED only: True if the session is parked in the wait index and
    #: will be woken by a notification; False means the caller must retry
    #: on its own schedule (no live blockers were named).
    parked: bool = False
    #: simulated cost of the validation work this interaction performed
    #: (one probe per read-set key + concurrent-validator checks); 0 for
    #: protocols that do not validate.
    validation_probes: int = 0
    #: True when the probes ran inside a validation pipeline (outside the
    #: protocol's critical section) and may overlap other clients' work;
    #: False means they occupied the critical section (serial validation).
    validation_offloaded: bool = False
    #: the injected fault behind this result ("abort" or "stall"), or
    #: None for a genuine protocol decision.  Callers use it to tell an
    #: injected stall (which is itself an event and counts as progress)
    #: from a real BLOCK.
    fault: Optional[str] = None

    @property
    def progressed(self) -> bool:
        return self.kind in (
            StepKind.STARTED,
            StepKind.GRANTED,
            StepKind.VALIDATING,
            StepKind.COMMITTED,
        )


class RunQueue:
    """A round-ordered run queue plus a cooldown wheel.

    The untimed executor's scheduling structure: session ids that are
    runnable *this* round live in a min-heap (so round-robin drains them
    in creation order, exactly like the legacy per-round scan), sessions
    that become runnable next round accumulate in a second heap, and
    sessions sitting out an abort backoff are parked in a wheel keyed by
    the absolute round at which their cooldown expires.  Blocked
    sessions appear in none of the three — they re-enter through
    :meth:`push_wake` when the kernel's wake notification fires — so one
    scheduling round costs O(runnable), not O(live).

    The timed :class:`~repro.engine.simulator.Simulator` needs no
    separate structure: its event heap is this queue with real-valued
    rounds (the cooldown wheel is ``abort_backoff``, the wake path is
    :attr:`EngineKernel.wake_sink` scheduling an event at the wake
    time), which is why only the executor instantiates this class.

    Round bookkeeping mirrors the legacy scan exactly: a session that
    aborts in round ``R`` with cooldown ``c`` would have burnt one
    cooldown unit in each of rounds ``R+1 .. R+c`` and stepped again in
    ``R+c+1``, so :meth:`schedule_cooldown` files it at ``R + c + 1``
    directly and :meth:`advance` skips the empty rounds in between.  A
    wake that lands mid-round targets the current round when the woken
    session's id is still ahead of the drain cursor (the legacy scan
    would have reached it later this same round) and the next round
    otherwise.
    """

    __slots__ = ("round", "_current", "_next", "_wheel", "_cursor")

    def __init__(self) -> None:
        #: the absolute round number currently being drained
        self.round = 0
        self._current: List[int] = []
        self._next: List[int] = []
        self._wheel: List[Tuple[int, int]] = []
        self._cursor = -1

    # ------------------------------------------------------------------
    # enqueuing
    # ------------------------------------------------------------------
    def push_current(self, session_id: int) -> None:
        """Make a session runnable in the round being drained."""
        heapq.heappush(self._current, session_id)

    def push_next(self, session_id: int) -> None:
        """Make a session runnable from the following round on."""
        heapq.heappush(self._next, session_id)

    def push_wake(self, session_id: int) -> None:
        """Route a woken session: current round if the drain cursor has
        not passed it yet (ids drain in ascending order, so anything
        above the cursor is still due this round), next round otherwise."""
        if session_id > self._cursor:
            heapq.heappush(self._current, session_id)
        else:
            heapq.heappush(self._next, session_id)

    def schedule_cooldown(self, session_id: int, cooldown: int) -> None:
        """Park a session in the wheel until its backoff expires."""
        heapq.heappush(self._wheel, (self.round + cooldown + 1, session_id))

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def advance(self) -> bool:
        """Begin the next non-empty round; False when nothing is queued.

        Skips straight to the earliest cooldown expiry when no session
        is runnable sooner — empty rounds are unobservable (no protocol
        interaction can happen in them), so burning them one by one
        would be pure overhead.
        """
        if self._current:
            raise RuntimeError("advance() called with the current round undrained")
        if self._next:
            self.round += 1
        elif self._wheel:
            self.round = max(self.round + 1, self._wheel[0][0])
        else:
            return False
        self._current, self._next = self._next, self._current
        self._cursor = -1
        return True

    def expired_cooldowns(self) -> List[int]:
        """Pop the sessions whose cooldown ends in the current round."""
        expired: List[int] = []
        while self._wheel and self._wheel[0][0] <= self.round:
            expired.append(heapq.heappop(self._wheel)[1])
        return expired

    def pop(self) -> Optional[int]:
        """The next session id of the current round, in ascending order."""
        if not self._current:
            return None
        self._cursor = heapq.heappop(self._current)
        return self._cursor

    def drain_current(self) -> List[int]:
        """Take the whole current round at once (ascending), for callers
        that impose their own order — the executor's random interleaving
        draws from this bucket instead of popping in id order."""
        bucket = sorted(self._current)
        self._current.clear()
        self._cursor = -1
        return bucket

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def cooling(self) -> bool:
        """Whether any session is parked in the cooldown wheel."""
        return bool(self._wheel)

    @property
    def pending(self) -> bool:
        """Whether any session is queued for this round or a later one."""
        return bool(self._current or self._next or self._wheel)

    def __len__(self) -> int:
        return len(self._current) + len(self._next) + len(self._wheel)


class EngineKernel:
    """Drive sessions through a protocol; wake blocked sessions on events.

    Parameters
    ----------
    protocol:
        The online concurrency-control protocol to drive.
    metrics:
        Shared instrumentation registry; defaults to the protocol's own
        registry so kernel and protocol metrics land in one report.
    fault_plan:
        Optional deterministic fault injector (see
        :mod:`repro.engine.faults`): consulted once per non-fast-path
        interaction, it may force the attempt to abort or stall the
        request.  ``None`` (the default) costs one attribute check per
        step.
    tracer:
        Optional structured-trace sink (see :mod:`repro.obs.trace`).
        Defaults to the shared :data:`~repro.obs.trace.NULL_TRACER`;
        its ``enabled`` flag is cached once so a disabled tracer costs
        one boolean check per emission point.  The front-end owns the
        tracer's logical clock (``tracer.now``).
    """

    def __init__(
        self,
        protocol: ConcurrencyControl,
        metrics: Optional[Metrics] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.protocol = protocol
        if metrics is None:
            self.metrics = protocol.metrics
        else:
            # one registry for the whole stack: the protocol adopts the
            # caller's registry so kernel and protocol metrics land together
            self.metrics = metrics
            protocol.metrics = metrics
        self._next_txn_id = 1
        self._session_by_txn: Dict[int, Session] = {}
        #: wait index: blocker transaction id -> sessions parked on it
        self._waiters: Dict[int, Set[int]] = {}
        self._sessions: Dict[int, Session] = {}
        #: called when a parked session becomes runnable again; set by the
        #: front-end (the simulator schedules an event, the executor
        #: relies on the cleared ``waiting`` flag).
        self.wake_sink: Optional[Callable[[Session], None]] = None
        #: called with the session right after each successful commit
        #: (normal and read-only fast path alike), while the committed
        #: attempt's spec and read buffer are still attached — the
        #: conformance harness's history-recorder hook.
        self.commit_sink: Optional[Callable[[Session], None]] = None
        self.fault_plan = fault_plan
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._tracing = self.tracer.enabled
        #: cached once, like ``_tracing``: deterministic protocols get
        #: their footprint declared at begin and epoch-tagged traces
        self._deterministic = protocol.deterministic
        self._attached = False
        self.attach()

    # ------------------------------------------------------------------
    # protocol subscription lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Subscribe to the protocol's finish/wake notifications (idempotent).

        Kernels attach on construction; a front-end re-attaches at the
        start of a run in case the kernel was detached after a previous
        one.
        """
        if not self._attached:
            self.protocol.add_finish_listener(self._on_txn_finished)
            self.protocol.add_wake_listener(self._on_wake_request)
            self._attached = True

    def detach(self) -> None:
        """Unsubscribe from the protocol's notifications (idempotent).

        Called by the front-ends when a run completes so a finished
        kernel never reacts to a *later* kernel's commits and aborts on
        the same protocol instance — with the run queue, a stale
        subscription would re-enqueue dead sessions.
        """
        if self._attached:
            self.protocol.remove_finish_listener(self._on_txn_finished)
            self.protocol.remove_wake_listener(self._on_wake_request)
            self._attached = False

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def register(self, session: Session) -> Session:
        self._sessions[session.session_id] = session
        return session

    def new_session(self, spec: Optional[TransactionSpec], session_id: int) -> Session:
        return self.register(Session(spec=spec, session_id=session_id))

    def restart(self, session: Session) -> None:
        """Reset a session for a fresh attempt after an abort."""
        if session.txn_id is not None:
            self._session_by_txn.pop(session.txn_id, None)
        self._unpark(session)
        session.reset_for_restart()
        self.metrics.incr("kernel.restarts")
        if self._tracing:
            self.tracer.emit(
                obs_trace.RESTART,
                session.session_id,
                None,
                session.attempts,
                meta={"cooldown": session.cooldown},
            )

    # ------------------------------------------------------------------
    # the one-step state machine shared by executor and simulator
    # ------------------------------------------------------------------
    def step(self, session: Session) -> StepResult:
        """Advance a session by exactly one protocol interaction."""
        if session.spec is None:
            raise ValueError("cannot step a session with no transaction program")
        if session.waiting:
            # being driven by a timer retry (polling mode) or after a wake:
            # either way it is no longer parked.
            self._unpark(session)

        if session.txn_id is None:
            session.txn_id = self._next_txn_id
            self._next_txn_id += 1
            session.attempts += 1
            if session.spec.is_read_only:
                snapshot = self.protocol.readonly_snapshot()
                if snapshot is not None:
                    # declared-read-only fast path: the whole transaction
                    # runs against this snapshot, bypassing the protocol's
                    # write buffers and validation entirely.
                    session.fast_snapshot = snapshot
                    self.metrics.incr("kernel.readonly_fastpath")
                    if self._tracing:
                        self.tracer.emit(
                            obs_trace.BEGIN,
                            session.session_id,
                            session.txn_id,
                            session.attempts,
                            meta={"fastpath": True},
                        )
                    return StepResult(StepKind.STARTED)
            self._session_by_txn[session.txn_id] = session
            self.protocol.begin(session.txn_id)
            meta = None
            if self._deterministic:
                # the epoch boundary: the sequencer admits the declared
                # footprint *here*, before any data request, fixing the
                # transaction's place in the deterministic total order
                ticket = self.protocol.declare_footprint(
                    session.txn_id,
                    session.spec.read_set(),
                    session.spec.write_set(),
                )
                if self._tracing:
                    meta = {"epoch": ticket.epoch, "slot": ticket.slot}
            if self._tracing:
                self.tracer.emit(
                    obs_trace.BEGIN,
                    session.session_id,
                    session.txn_id,
                    session.attempts,
                    meta=meta,
                )
            return StepResult(StepKind.STARTED)

        if session.fast_snapshot is not None:
            return self._step_readonly(session)

        if self.fault_plan is not None and not session.validating:
            injected = self._maybe_inject_fault(session)
            if injected is not None:
                return injected

        txn_id = session.txn_id
        if session.op_index >= len(session.spec):
            if self.protocol.two_stage_commit and not session.validating:
                prepared = self.protocol.prepare_commit(txn_id)
                if prepared is not None:
                    probes = self.protocol.take_validation_probes()
                    if prepared.granted:
                        session.validating = True
                        if self._tracing:
                            self.tracer.emit(
                                obs_trace.VALIDATE,
                                session.session_id,
                                txn_id,
                                session.attempts,
                                meta={"stage": "parallel", "probes": probes},
                            )
                        return StepResult(
                            StepKind.VALIDATING,
                            prepared,
                            was_commit=True,
                            validation_probes=probes,
                            validation_offloaded=True,
                        )
                    # validation-stage failure: the attempt aborts here
                    self._abort(session)
                    if self._tracing:
                        self._trace_abort(session, txn_id, prepared, commit=True)
                    return StepResult(
                        StepKind.ABORTED,
                        prepared,
                        was_commit=True,
                        validation_probes=probes,
                        validation_offloaded=True,
                    )
            offloaded = session.validating
            decision = self.protocol.commit(txn_id)
            probes = self.protocol.take_validation_probes()
            if decision.blocked:
                # keep session.validating: the retry must finish the
                # commit stage, not re-enter prepare and validate twice
                session.blocks += 1
                parked = self._park(session, decision)
                if self._tracing:
                    self._trace_block(session, txn_id, decision, parked, commit=True)
                return StepResult(
                    StepKind.BLOCKED,
                    decision,
                    was_commit=True,
                    parked=parked,
                    validation_probes=probes,
                    validation_offloaded=offloaded,
                )
            session.validating = False
            if decision.granted:
                session.committed = True
                self._session_by_txn.pop(txn_id, None)
                if self.commit_sink is not None:
                    self.commit_sink(session)
                if self._tracing:
                    meta = {"probes": probes} if probes else None
                    if self._deterministic:
                        ticket = self.protocol.ticket_of(txn_id)
                        if ticket is not None:
                            meta = dict(meta or {})
                            meta["epoch"] = ticket.epoch
                            meta["slot"] = ticket.slot
                    self.tracer.emit(
                        obs_trace.COMMIT,
                        session.session_id,
                        txn_id,
                        session.attempts,
                        meta=meta,
                    )
                return StepResult(
                    StepKind.COMMITTED,
                    decision,
                    was_commit=True,
                    validation_probes=probes,
                    validation_offloaded=offloaded,
                )
            self._abort(session)
            if self._tracing:
                self._trace_abort(session, txn_id, decision, commit=True)
            return StepResult(
                StepKind.ABORTED,
                decision,
                was_commit=True,
                validation_probes=probes,
                validation_offloaded=offloaded,
            )

        operation = session.spec.operations[session.op_index]
        decision = self._issue(txn_id, operation, session)
        session.operations_issued += 1
        if decision.granted:
            session.op_index += 1
            if self._tracing:
                self.tracer.emit(
                    obs_trace.READ
                    if operation.kind is OperationKind.READ
                    else obs_trace.WRITE,
                    session.session_id,
                    txn_id,
                    session.attempts,
                    key=operation.key,
                    meta={"update": True}
                    if operation.kind is OperationKind.UPDATE
                    else None,
                )
            return StepResult(StepKind.GRANTED, decision)
        if decision.blocked:
            session.blocks += 1
            parked = self._park(session, decision)
            if self._tracing:
                self._trace_block(
                    session, txn_id, decision, parked, key=operation.key
                )
            return StepResult(StepKind.BLOCKED, decision, parked=parked)
        self._abort(session)
        if self._tracing:
            self._trace_abort(session, txn_id, decision, key=operation.key)
        return StepResult(StepKind.ABORTED, decision)

    def _step_readonly(self, session: Session) -> StepResult:
        """Advance a declared-read-only session on the snapshot fast path.

        Every operation is a read served directly from the snapshot
        (read-only specs cannot contain writes), so the session can
        never block; the trivial commit only releases the snapshot lease
        so the protocol's garbage collector may advance.  The one way a
        fast-path attempt can die is :class:`SnapshotAborted` — the
        protocol refusing a read that would observe a non-serializable
        state (serializable SI's committed-pivot anomaly) — in which
        case the lease is released, the attempt's reads are scrubbed
        from the protocol's history bookkeeping, and the caller restarts
        the session on a fresh snapshot.
        """
        spec = session.spec
        if session.op_index >= len(spec):
            self.protocol.release_snapshot(session.fast_snapshot)
            session.committed = True
            self.metrics.incr("kernel.readonly_commits")
            if self.commit_sink is not None:
                self.commit_sink(session)
            if self._tracing:
                self.tracer.emit(
                    obs_trace.COMMIT,
                    session.session_id,
                    session.txn_id,
                    session.attempts,
                    meta={"fastpath": True},
                )
            return StepResult(StepKind.COMMITTED, Decision.grant(), was_commit=True)
        operation = spec.operations[session.op_index]
        try:
            value = self.protocol.snapshot_read(
                operation.key, session.fast_snapshot, txn_id=session.txn_id
            )
        except SnapshotAborted as reason:
            self.protocol.abort_fast_reader(session.txn_id, session.fast_snapshot)
            session.fast_snapshot = None
            self.metrics.incr("kernel.readonly_aborts")
            decision = Decision.abort(
                str(reason), code=reason.code, conflict=reason.conflict_txns
            )
            if self._tracing:
                self._trace_abort(
                    session, session.txn_id, decision, key=operation.key
                )
            return StepResult(StepKind.ABORTED, decision)
        session.reads[operation.key] = value
        session.op_index += 1
        session.operations_issued += 1
        if self._tracing:
            self.tracer.emit(
                obs_trace.READ,
                session.session_id,
                session.txn_id,
                session.attempts,
                key=operation.key,
                meta={"fastpath": True},
            )
        return StepResult(StepKind.GRANTED, Decision.grant(value))

    def _issue(self, txn_id: int, operation: Operation, session: Session) -> Decision:
        # transforms receive the live read buffer (not a defensive copy:
        # copying it per UPDATE dominated the hot path) and must treat it
        # as read-only — every shipped workload does.
        if operation.kind is OperationKind.READ:
            decision = self.protocol.read(txn_id, operation.key)
            if decision.granted:
                session.reads[operation.key] = decision.value
            return decision
        if operation.kind is OperationKind.UPDATE:
            decision = self.protocol.read(txn_id, operation.key)
            if not decision.granted:
                return decision
            session.reads[operation.key] = decision.value
            new_value = operation.transform(session.reads)
            return self.protocol.write(txn_id, operation.key, new_value)
        # blind write
        new_value = operation.transform(session.reads)
        return self.protocol.write(txn_id, operation.key, new_value)

    def _maybe_inject_fault(self, session: Session) -> Optional[StepResult]:
        """Consult the fault plan before a normal-path interaction.

        Returns the injected outcome, or ``None`` to proceed with the
        genuine protocol request.  Injection is skipped for fast-path
        and mid-validation sessions (callers guarantee that); both
        injected outcomes — a forced abort and an unparked stall — are
        states the protocol must tolerate from any client at any time,
        so correctness oracles hold under every plan.
        """
        spec = session.spec
        if session.op_index >= len(spec):
            stage, key = COMMIT_STAGE, None
        else:
            stage, key = OPERATION_STAGE, spec.operations[session.op_index].key
        action = self.fault_plan.intercept(session.txn_id, stage, key)
        if action is None:
            return None
        was_commit = stage == COMMIT_STAGE
        if action == ABORT_ACTION:
            self.metrics.incr("kernel.fault_aborts")
            self._abort(session)
            decision = Decision.abort(
                "fault: injected client abort", code=ABORT_FAULT_INJECTED, key=key
            )
            if self._tracing:
                self._trace_abort(
                    session, session.txn_id, decision, key=key, commit=was_commit
                )
            return StepResult(
                StepKind.ABORTED,
                decision,
                was_commit=was_commit,
                fault=action,
            )
        self.metrics.incr("kernel.fault_stalls")
        session.blocks += 1
        decision = Decision.block(reason="fault: injected stall")
        if self._tracing:
            self.tracer.emit(
                obs_trace.BLOCK,
                session.session_id,
                session.txn_id,
                session.attempts,
                key=key,
                detail=decision.reason,
                meta={"fault": True, "commit": was_commit},
            )
        return StepResult(
            StepKind.BLOCKED,
            decision,
            was_commit=was_commit,
            parked=False,
            fault=action,
        )

    def _abort(self, session: Session) -> None:
        txn_id = session.txn_id
        self.protocol.abort(txn_id)
        self._session_by_txn.pop(txn_id, None)

    # ------------------------------------------------------------------
    # trace emission helpers (called only when tracing is enabled)
    # ------------------------------------------------------------------
    def _trace_block(
        self,
        session: Session,
        txn_id: int,
        decision: Decision,
        parked: bool,
        key: Optional[str] = None,
        commit: bool = False,
    ) -> None:
        meta: Dict[str, Any] = {"parked": parked}
        if commit:
            meta["commit"] = True
        self.tracer.emit(
            obs_trace.BLOCK,
            session.session_id,
            txn_id,
            session.attempts,
            key=key,
            blockers=tuple(sorted(decision.blocked_on)),
            detail=decision.reason,
            meta=meta,
        )

    def _trace_abort(
        self,
        session: Session,
        txn_id: Optional[int],
        decision: Decision,
        key: Optional[str] = None,
        commit: bool = False,
    ) -> None:
        self.tracer.emit(
            obs_trace.ABORT,
            session.session_id,
            txn_id,
            session.attempts,
            key=decision.conflict_key if decision.conflict_key is not None else key,
            blockers=decision.conflict_txns,
            code=decision.code,
            detail=decision.reason,
            meta={"commit": True} if commit else None,
        )

    # ------------------------------------------------------------------
    # the wait index
    # ------------------------------------------------------------------
    def _park(self, session: Session, decision: Decision) -> bool:
        """Record a blocked session under its live blockers.

        Returns True if parked (a notification will wake it); False if no
        blocker is still active, in which case the caller must retry on
        its own schedule.
        """
        blockers = {
            blocker
            for blocker in decision.blocked_on
            if blocker in self.protocol.active and blocker != session.txn_id
        }
        if not blockers:
            return False
        session.waiting = True
        session.waiting_on = blockers
        for blocker in blockers:
            queue = self._waiters.setdefault(blocker, set())
            queue.add(session.session_id)
            # block height à la the geods-analyze profiler: how many
            # sessions are stacked up behind this blocker right now.
            self.metrics.observe("kernel.block_height", len(queue))
        self.metrics.incr("kernel.parks")
        return True

    def _unpark(self, session: Session) -> None:
        if not session.waiting and not session.waiting_on:
            return
        for blocker in session.waiting_on:
            queue = self._waiters.get(blocker)
            if queue is not None:
                queue.discard(session.session_id)
                if not queue:
                    self._waiters.pop(blocker, None)
        session.waiting_on = set()
        session.waiting = False

    def _wake(self, session: Session) -> None:
        self._unpark(session)
        self.metrics.incr("kernel.wakeups")
        if self._tracing:
            self.tracer.emit(
                obs_trace.WAKE,
                session.session_id,
                session.txn_id,
                session.attempts,
            )
        if self.wake_sink is not None:
            self.wake_sink(session)

    def _on_txn_finished(self, txn_id: int, outcome: str) -> None:
        self._session_by_txn.pop(txn_id, None)
        waiter_ids = self._waiters.pop(txn_id, None)
        if not waiter_ids:
            return
        # deterministic wake order regardless of set iteration details
        for session_id in sorted(waiter_ids):
            session = self._sessions.get(session_id)
            if session is not None and session.waiting:
                self._wake(session)

    def _on_wake_request(self, txn_id: int) -> None:
        session = self._session_by_txn.get(txn_id)
        if session is not None and session.waiting:
            self._wake(session)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def waiting_sessions(self) -> List[Session]:
        """The sessions currently parked in the wait index."""
        return [s for s in self._sessions.values() if s.waiting]

    def blocked_behind(self, txn_id: int) -> Set[int]:
        """Session ids parked behind a given transaction."""
        return set(self._waiters.get(txn_id, set()))
