"""Pluggable instrumentation for the engine: counters, histograms, monitors.

The geods-analyze simulator (see SNIPPETS.md) threads a hierarchical
``Profiler`` through its lock/transaction runtime and derives blocking
probabilities, block heights and latency histograms from it.  This module
ports that idea into our architecture in a dependency-free form:

* :class:`Counter` — a monotonically increasing event count;
* :class:`Histogram` — streaming moments (mean/std) plus a bucketed
  distribution of observed values (latencies, block heights, queue
  depths);
* :class:`Metrics` — a named registry of both, shared by the kernel, the
  protocols and the simulator.  Components record under dotted names
  (``kernel.wakeups``, ``protocol.blocks``, ``sim.response_time``) so a
  report can be filtered by prefix, mirroring the geods-analyze
  ``Profiler.getMonitor('/')`` pattern.

Everything is optional: every engine component accepts ``metrics=None``
and creates a private registry, so existing call sites keep working and
pay one dict lookup per event when instrumentation is enabled.  To make
disabled instrumentation cost *nothing*, pass a :class:`NullMetrics` —
every recording call is a no-op that touches no dict at all — which is
what the benchmark harnesses use for their "protocol cost only" runs.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Histogram:
    """Streaming mean/std plus a bucketed distribution of observations.

    Buckets are fixed at construction: ``bounds`` are the inclusive upper
    edges of each bucket, with an implicit overflow bucket at the end.
    The default edges form a coarse geometric ladder that suits both
    latencies (simulated time units) and small integer observations such
    as block heights.
    """

    DEFAULT_BOUNDS: Tuple[float, ...] = (
        0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
    )

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        # kept sorted: observe() bisects the edges, and bucket semantics
        # ("smallest bound >= value") only make sense on ascending bounds
        self.bounds: Tuple[float, ...] = (
            tuple(sorted(bounds)) if bounds else self.DEFAULT_BOUNDS
        )
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._sum_squares = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sum_squares += value * value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        # the smallest index with value <= bounds[index]; len(bounds) when
        # the value exceeds every edge, which is exactly the overflow slot
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        variance = self._sum_squares / self.count - self.mean ** 2
        return math.sqrt(max(0.0, variance))

    def quantile(self, q: float) -> float:
        """An upper-bound estimate of the ``q``-quantile from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.buckets):
            running += bucket_count
            if running >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dump of the full histogram state (buckets included)."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "sum_squares": self._sum_squares,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output, losslessly."""
        histogram = cls(bounds=data["bounds"])
        histogram.buckets = list(data["buckets"])
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram._sum_squares = data["sum_squares"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.3f}, "
            f"std={self.std:.3f}, max={self.max})"
        )


class Metrics:
    """A named registry of counters and histograms shared across components.

    The kernel, the protocols and the simulator all record into one
    registry (when given the same instance), so a single ``report()``
    shows the whole picture — the role the root monitor plays in the
    geods-analyze profiler.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.incr(amount)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def count(self, name: str) -> int:
        counter = self.counters.get(name)
        return counter.value if counter else 0

    def histogram(self, name: str) -> Histogram:
        return self.histograms.get(name, Histogram())

    def names(self, prefix: str = "") -> List[str]:
        all_names = list(self.counters) + list(self.histograms)
        return sorted(name for name in all_names if name.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """A flat dict of counter values and histogram summaries."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            if name.startswith(prefix):
                out[name] = counter.value
        for name, histogram in self.histograms.items():
            if name.startswith(prefix):
                out[f"{name}.count"] = histogram.count
                out[f"{name}.mean"] = histogram.mean
                out[f"{name}.std"] = histogram.std
        return out

    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one (for sharded aggregation)."""
        for name, counter in other.counters.items():
            self.incr(name, counter.value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(histogram.bounds)
            if mine.bounds == histogram.bounds:
                for index, bucket_count in enumerate(histogram.buckets):
                    mine.buckets[index] += bucket_count
            else:
                # incompatible bucket layouts: fold everything into the
                # overflow bucket so sum(buckets) == count stays true
                # (quantiles degrade to upper bounds instead of lying)
                mine.buckets[-1] += histogram.count
            mine.count += histogram.count
            mine.total += histogram.total
            mine._sum_squares += histogram._sum_squares
            for bound in (histogram.min, histogram.max):
                if bound is None:
                    continue
                mine.min = bound if mine.min is None else min(mine.min, bound)
                mine.max = bound if mine.max is None else max(mine.max, bound)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dump of the whole registry.

        Unlike :meth:`snapshot` (flat summaries), this is a *lossless*
        serialization: histogram buckets, streaming moments and extrema
        all survive, so :meth:`from_dict` rebuilds a registry whose
        ``merge``/``quantile``/``report`` behaviour is identical — the
        contract pinned by ``tests/test_engine_metrics.py``.
        """
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Metrics":
        """Rebuild a registry from :meth:`to_dict` output."""
        metrics = cls()
        for name, value in data.get("counters", {}).items():
            metrics.incr(name, value)
        for name, dumped in data.get("histograms", {}).items():
            metrics.histograms[name] = Histogram.from_dict(dumped)
        return metrics

    def report(self, prefix: str = "") -> str:
        """A human-readable dump, one metric per line, filtered by prefix."""
        lines: List[str] = []
        for name in sorted(self.counters):
            if name.startswith(prefix):
                lines.append(f"{name} = {self.counters[name].value}")
        for name in sorted(self.histograms):
            if not name.startswith(prefix):
                continue
            h = self.histograms[name]
            lines.append(
                f"{name}: count={h.count} mean={h.mean:.3f} std={h.std:.3f} "
                f"p95<={h.quantile(0.95):g} max={h.max if h.max is not None else 0:g}"
            )
        return "\n".join(lines)


class NullMetrics(Metrics):
    """A registry that records nothing: disabled instrumentation at zero cost.

    ``incr``/``observe`` are pure no-ops — no dict lookup, no counter
    object, nothing allocated — so hot paths instrumented with a shared
    registry can be run "bare" by passing ``metrics=NullMetrics()``.
    All reading methods behave like an empty :class:`Metrics`, and
    merging into a real registry is a no-op, so a ``NullMetrics`` can
    flow anywhere a registry is expected.
    """

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: a shared no-op registry for callers that just want instrumentation off
NULL_METRICS = NullMetrics()
