"""Transaction programs for the engine: operations and transaction specs.

The engine's transactions mirror the paper's straight-line model: a
transaction is a fixed sequence of operations, each touching one key.
Three operation kinds are supported:

* ``READ`` — read a key into the transaction's local context;
* ``WRITE`` — blind-write a computed value to a key;
* ``UPDATE`` — read-modify-write: the new value is a function of the
  values read so far (exactly the paper's general step
  ``x_ij <- f_ij(t_i1, ..., t_ij)``).

An ``UPDATE``'s transform receives a mapping of *all values the
transaction has read so far* (keyed by the key name, latest read wins)
and returns the new value for the operation's key.  The mapping is the
engine's **live read buffer**, handed over without a defensive copy
(copying it per operation dominated the kernel hot path): transforms
must treat it as read-only and must not retain it after returning —
mutating it would corrupt the transaction's read set mid-flight.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class OperationKind(enum.Enum):
    """The kind of a transaction operation."""

    READ = "read"
    WRITE = "write"
    UPDATE = "update"


#: An UPDATE transform: maps {key: value read so far} to the new value.
#: The mapping is the live read buffer — treat it as read-only, do not
#: mutate or retain it (see the module docstring).
Transform = Callable[[Mapping[str, Any]], Any]


class ConstantTransform:
    """A transform returning a fixed value (the blind-write shape).

    A module-level callable class rather than a closure so that the
    operations built by :func:`write_op` survive :mod:`pickle` — the
    process-parallel shard runner (:mod:`repro.engine.parallel`) ships
    transaction specs to worker processes, and lambdas cannot make that
    trip.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __call__(self, reads: Mapping[str, Any]) -> Any:
        return self.value

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ConstantTransform) and self.value == other.value

    def __hash__(self) -> int:
        # keep Operation (a frozen dataclass hashing all fields) hashable,
        # as it was with identity-hashed lambda transforms
        return hash(("constant", self.value))

    def __repr__(self) -> str:
        return f"ConstantTransform({self.value!r})"


class AddConstantTransform:
    """A transform adding a fixed amount to the value read for ``key``.

    Picklable counterpart of the ``lambda reads: reads[key] + amount``
    closure :func:`increment_op` used to build (see
    :class:`ConstantTransform` for why picklability matters).
    """

    __slots__ = ("key", "amount")

    def __init__(self, key: str, amount: Any = 1) -> None:
        self.key = key
        self.amount = amount

    def __call__(self, reads: Mapping[str, Any]) -> Any:
        return reads[self.key] + self.amount

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, AddConstantTransform)
            and self.key == other.key
            and self.amount == other.amount
        )

    def __hash__(self) -> int:
        return hash(("add", self.key, self.amount))

    def __repr__(self) -> str:
        return f"AddConstantTransform({self.key!r}, {self.amount!r})"


@dataclass(frozen=True)
class Operation:
    """One operation of a transaction program.

    Parameters
    ----------
    kind:
        READ, WRITE or UPDATE.
    key:
        The key accessed.
    transform:
        For UPDATE: the function computing the new value from the reads
        so far.  Ignored for READ; for WRITE it receives the same mapping
        but conventionally ignores it (use :func:`write_op` to write a
        constant).
    """

    kind: OperationKind
    key: str
    transform: Optional[Transform] = None

    def __post_init__(self) -> None:
        if self.kind in (OperationKind.WRITE, OperationKind.UPDATE) and self.transform is None:
            raise ValueError(f"{self.kind.value} operation on {self.key!r} needs a transform")

    @property
    def reads(self) -> bool:
        """Whether the operation reads its key (READ and UPDATE do)."""
        return self.kind in (OperationKind.READ, OperationKind.UPDATE)

    @property
    def writes(self) -> bool:
        """Whether the operation writes its key (WRITE and UPDATE do)."""
        return self.kind in (OperationKind.WRITE, OperationKind.UPDATE)

    def __str__(self) -> str:
        return f"{self.kind.value}({self.key})"


def read_op(key: str) -> Operation:
    """A pure read of ``key``."""
    return Operation(OperationKind.READ, key)


def write_op(key: str, value: Any) -> Operation:
    """A blind write of a constant value to ``key``."""
    return Operation(OperationKind.WRITE, key, transform=ConstantTransform(value))


def update_op(key: str, transform: Transform) -> Operation:
    """A read-modify-write of ``key`` using ``transform``."""
    return Operation(OperationKind.UPDATE, key, transform=transform)


def increment_op(key: str, amount: Any = 1) -> Operation:
    """A read-modify-write adding ``amount`` to ``key``."""
    return update_op(key, AddConstantTransform(key, amount))


@dataclass(frozen=True)
class TransactionSpec:
    """A straight-line transaction program for the engine.

    Parameters
    ----------
    operations:
        The ordered operations.
    name:
        A descriptive label (appears in metrics and logs).
    txn_id:
        Optional externally assigned identifier; the executor assigns one
        if absent.
    read_only:
        Read-only declaration.  ``True`` asserts the program never writes
        (validated here) and makes the transaction eligible for the
        engine kernel's snapshot fast path under multi-version protocols;
        ``False`` opts out even if no operation writes; ``None`` (the
        default) auto-detects from the operations.
    """

    operations: Tuple[Operation, ...]
    name: str = "txn"
    txn_id: Optional[int] = None
    read_only: Optional[bool] = None

    def __init__(
        self,
        operations: Iterable[Operation],
        name: str = "txn",
        txn_id: Optional[int] = None,
        read_only: Optional[bool] = None,
    ) -> None:
        object.__setattr__(self, "operations", tuple(operations))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "txn_id", txn_id)
        object.__setattr__(self, "read_only", read_only)
        if not self.operations:
            raise ValueError("a transaction spec needs at least one operation")
        if read_only and any(op.writes for op in self.operations):
            raise ValueError(
                f"transaction {name!r} is declared read-only but writes "
                f"{sorted(set(op.key for op in self.operations if op.writes))}"
            )

    @property
    def is_read_only(self) -> bool:
        """Whether the transaction performs no writes (declared or detected)."""
        if self.read_only is not None:
            return self.read_only
        return all(not op.writes for op in self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def keys_read(self) -> Tuple[str, ...]:
        return tuple(op.key for op in self.operations if op.reads)

    def keys_written(self) -> Tuple[str, ...]:
        return tuple(op.key for op in self.operations if op.writes)

    def read_set(self) -> frozenset:
        return frozenset(self.keys_read())

    def write_set(self) -> frozenset:
        return frozenset(self.keys_written())

    def with_id(self, txn_id: int) -> "TransactionSpec":
        """A copy with an assigned transaction identifier."""
        return TransactionSpec(
            self.operations, name=self.name, txn_id=txn_id, read_only=self.read_only
        )


def transfer_transaction(
    source: str, target: str, amount: int, name: str = "transfer"
) -> TransactionSpec:
    """Move ``amount`` from ``source`` to ``target`` if funds suffice.

    Mirrors the paper's T1: the debit and credit are both conditioned on
    the balance read at the start, so the transfer is all-or-nothing.
    """

    def debit(reads: Mapping[str, Any]) -> Any:
        return reads[source] - amount if reads[source] >= amount else reads[source]

    def credit(reads: Mapping[str, Any]) -> Any:
        return reads[target] + amount if reads[source] >= amount else reads[target]

    return TransactionSpec(
        [read_op(source), update_op(target, credit), update_op(source, debit)],
        name=name,
    )


def audit_transaction(keys: Sequence[str], total_key: str, name: str = "audit") -> TransactionSpec:
    """Read every key in ``keys`` and store their sum into ``total_key`` (the paper's T3)."""
    operations: List[Operation] = [read_op(key) for key in keys]

    def total(reads: Mapping[str, Any]) -> Any:
        return sum(reads[key] for key in keys)

    operations.append(update_op(total_key, total))
    return TransactionSpec(operations, name=name)
