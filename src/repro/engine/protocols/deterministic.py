"""Deterministic epoch-based concurrency control (the Calvin family).

Kung & Papadimitriou frame concurrency control as a spectrum of how
much information the scheduler exploits.  The protocols so far sit at
the *reactive* end: they learn a transaction's footprint one request at
a time and pay for it with deadlock detection (2PL, SGT) or validation
aborts (T/O, OCC, SI).  This module implements the other pole — the
maximum-information scheduler that knows every transaction's read/write
footprint *before* it runs, pre-orders transactions into epochs via the
:class:`~repro.engine.protocols.sequencer.EpochSequencer`, and grants
the declared footprints strictly in that order:

* **no wait-for graph** — a transaction only ever waits for an earlier
  sequence position, so waits cannot cycle; the earliest live
  transaction is always runnable, which is the progress guarantee that
  deadlock detection exists to provide elsewhere;
* **no validation phase** — conflicts are resolved by the fixed order
  at grant time, so nothing is ever discovered stale at commit;
* **aborts only for injected faults or mis-declared footprints** — a
  data access outside the declared footprint aborts with
  :data:`~repro.engine.reasons.ABORT_DET_RECON` and restarts as a
  low-priority *reconnaissance* re-submission (Calvin's OLLP): the
  retry re-declares the now-known footprint and its fresh ticket lands
  at the tail of the order, so a mis-declared straggler never stalls
  the epoch it originally belonged to.

Correctness sketch.  Writes are buffered (engine-wide invariant) and
installed at commit; the **commit gate** grants a commit only when no
live earlier-sequence transaction remains, so installs happen in
sequence order.  A **read** of key ``k`` waits until every live earlier
writer of ``k`` has finished, so it observes exactly the latest
earlier-sequence committed value.  Every conflict edge (ww, wr, rw)
therefore points forward in sequence order, and the committed history
is conflict-equivalent to the serial execution in sequence order —
which is also why the harness can hold these protocols to a *stronger*
oracle than serializability: commit order must literally equal epoch
order (see ``repro.harness.oracles``).

Two registered variants span the family the ROADMAP names (the
``cdetmn``/``epdetmn``-style spread):

* ``det-epoch`` (:class:`DeterministicEpoch`) — single-batch: an epoch
  barrier holds back every data operation of epoch *E* until all
  transactions of earlier epochs have finished.  Epochs execute as
  closed batches, the closest analogue of classic Calvin's
  sequence-then-execute rounds.
* ``det-slot`` (:class:`DeterministicSlotted`) — slotted/pipelined: no
  barrier; only the per-key order and the commit gate constrain
  execution, so epoch *E+1* transactions run (and queue) while epoch
  *E* drains.  Same guarantees, shallower waits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Tuple

from repro.engine.metrics import Metrics
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.protocols.sequencer import EpochSequencer, FootprintTicket
from repro.engine.reasons import ABORT_DET_RECON, ABORT_DET_UNDECLARED
from repro.engine.storage import DataStore


class DeterministicLockScheduler(ConcurrencyControl):
    """Shared machinery of the deterministic variants.

    Per key, a queue of the footprint entries declared against it, in
    sequence order (declaration order *is* sequence order, so plain
    appends keep it sorted).  A read is granted once no live earlier
    writer of the key remains; a (buffered) write is always granted —
    write order is enforced at install time by the commit gate, not at
    buffering time.  Finished entries are pruned from the queue head,
    so the scan amortises to O(live entries ahead).
    """

    deterministic = True
    #: subclasses: whether data operations wait for earlier epochs to drain
    epoch_barrier = False

    def __init__(
        self,
        store: DataStore,
        metrics: Optional[Metrics] = None,
        epoch_size: int = 8,
    ) -> None:
        super().__init__(store, metrics)
        self.sequencer = EpochSequencer(epoch_size)
        #: per-key footprint queues: (ticket, is_write) in sequence order
        self._queues: Dict[str, Deque[Tuple[FootprintTicket, bool]]] = {}
        #: reconnaissance aborts issued (under-declared footprints)
        self.recon_aborts = 0
        self._drained_epochs = 0

    # ------------------------------------------------------------------
    # footprint declaration (the sequencer's admission hook)
    # ------------------------------------------------------------------
    def declare_footprint(
        self, txn_id: int, reads: Iterable[str], writes: Iterable[str]
    ) -> FootprintTicket:
        """Admit an active transaction with its declared read/write sets.

        Must be called once, between :meth:`begin` and the first data
        request (the engine kernel does this automatically from the
        transaction spec).  Returns the ticket carrying the assigned
        sequence number, epoch and slot.
        """
        self._require_active(txn_id)
        ticket = self.sequencer.admit(txn_id, reads, writes)
        for key in sorted(ticket.reads | ticket.writes):
            self._queues.setdefault(key, deque()).append(
                (ticket, key in ticket.writes)
            )
        self.metrics.incr("det.admitted")
        return ticket

    def ticket_of(self, txn_id: int) -> Optional[FootprintTicket]:
        """The ticket admitted for ``txn_id`` (retained after it finishes)."""
        return self.sequencer.tickets.get(txn_id)

    # ------------------------------------------------------------------
    # the deterministic grant rules
    # ------------------------------------------------------------------
    def _guard(self, txn_id: int, key: str, writing: bool) -> Optional[Decision]:
        """Footprint guard + epoch barrier; None means proceed to grant."""
        ticket = self.sequencer.tickets.get(txn_id)
        if ticket is None:
            return Decision.abort(
                reason=f"det: data access to {key!r} before footprint declaration",
                code=ABORT_DET_UNDECLARED,
                key=key,
            )
        declared = ticket.writes if writing else (ticket.reads | ticket.writes)
        if key not in declared:
            self.recon_aborts += 1
            self.metrics.incr("det.recon_aborts")
            return Decision.abort(
                reason=(
                    f"det: {'write' if writing else 'read'} of {key!r} outside "
                    f"the declared footprint of T{txn_id} (seq {ticket.seq}); "
                    "restarting as a low-priority reconnaissance re-submission"
                ),
                code=ABORT_DET_RECON,
                key=key,
            )
        if self.epoch_barrier:
            head = self.sequencer.earliest_live()
            if head is not None and head.seq < ticket.epoch * self.sequencer.epoch_size:
                # an earlier epoch is still draining: hold every data
                # operation of this epoch behind its earliest member
                return Decision.block(
                    blocked_on=(head.txn_id,),
                    reason=(
                        f"det: epoch {ticket.epoch} barrier — epoch "
                        f"{head.epoch} still draining (T{head.txn_id})"
                    ),
                )
        return None

    def _earlier_live_writer(
        self, ticket: FootprintTicket, key: str
    ) -> Optional[FootprintTicket]:
        """The first live writer of ``key`` ordered before ``ticket``, if any."""
        queue = self._queues.get(key)
        if not queue:
            return None
        while queue and not queue[0][0].live:
            queue.popleft()
        for entry, is_write in queue:
            if entry.seq >= ticket.seq:
                break
            if is_write and entry.live:
                return entry
        return None

    def on_read(self, txn_id: int, key: str) -> Decision:
        guard = self._guard(txn_id, key, writing=False)
        if guard is not None:
            return guard
        ticket = self.sequencer.tickets[txn_id]
        writer = self._earlier_live_writer(ticket, key)
        if writer is not None:
            return Decision.block(
                blocked_on=(writer.txn_id,),
                reason=(
                    f"det: read of {key!r} ordered after writer "
                    f"T{writer.txn_id} (seq {writer.seq} < {ticket.seq})"
                ),
            )
        return Decision.grant()

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        # writes are buffered until commit, and the commit gate installs
        # them in sequence order — so a declared write is granted
        # immediately; only the footprint guard and barrier apply
        return self._guard(txn_id, key, writing=True) or Decision.grant()

    def on_commit(self, txn_id: int) -> Decision:
        ticket = self.sequencer.tickets.get(txn_id)
        if ticket is None:
            # an empty transaction that never declared: nothing ordered
            # against it, nothing to gate
            return Decision.grant()
        predecessor = self.sequencer.live_predecessor(ticket)
        if predecessor is not None:
            return Decision.block(
                blocked_on=(predecessor.txn_id,),
                reason=(
                    f"det: commit gate — seq {ticket.seq} awaiting "
                    f"T{predecessor.txn_id} (seq {predecessor.seq})"
                ),
            )
        return Decision.grant()

    def on_finished(self, txn_id: int) -> None:
        self.sequencer.retire(txn_id)
        drained = self.sequencer.drained_epochs
        if drained > self._drained_epochs:
            self.metrics.incr("det.epochs_drained", drained - self._drained_epochs)
            self._drained_epochs = drained


class DeterministicEpoch(DeterministicLockScheduler):
    """``det-epoch``: closed epoch batches behind a drain barrier."""

    name = "det-epoch"
    epoch_barrier = True


class DeterministicSlotted(DeterministicLockScheduler):
    """``det-slot``: slotted/pipelined — epochs overlap, order still holds."""

    name = "det-slot"
    epoch_barrier = False
