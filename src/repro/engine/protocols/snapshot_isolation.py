"""Snapshot isolation (SI) and its serializable variant (SSI-style).

Classic begin-snapshot semantics on top of
:class:`~repro.engine.mvstore.MultiVersionDataStore`:

* at begin, a transaction takes the current commit timestamp as its
  **snapshot**; every read is served from the newest version committed
  at or before that snapshot (plus its own buffered writes), so readers
  never block and never abort;
* at commit, **first-committer-wins** validation: if any key in the
  write set already carries a version committed *after* the snapshot, a
  concurrent writer got there first and the transaction aborts.  An
  eager check at write time fails doomed transactions early; the
  commit-time check is the decisive one.

Plain SI famously admits **write skew**: two concurrent transactions
each read what the other writes, both pass first-committer-wins (their
write sets are disjoint), and the combined result is not one-copy
serializable.  ``serializable=True`` adds rw-antidependency tracking in
the style of serializable SI (Cahill et al.): every committed
transaction — including read-only ones, whose reads alone can complete a
dangerous structure (Fekete's read-only anomaly), and including kernel
fast-path readers via their snapshot leases — leaves behind its
read/write footprint carrying two conflict flags, and a committing
transaction aborts when any of the following holds:

* it is itself the **pivot**: it has both an inbound rw-antidependency
  (a concurrent committed transaction read something it writes) and an
  outbound one (it read something a concurrent committed transaction
  wrote);
* its outbound edge points at a committed footprint that already has an
  outbound edge of its own — a pivot that committed *before* the edge
  into it existed (the structure the pure pivot check misses);
* its inbound edge comes from a committed footprint that already has an
  inbound edge of its own — the mirror case.

Committing also back-annotates the flags of the footprints it touches,
so pivots are detectable no matter the commit order of the structure's
three participants.  Detection stays conservative (rw-edges are
approximated by footprint intersection over concurrent commits) and
keeps the never-blocking read path untouched.

Versions are installed at **commit** timestamps (monotone), so snapshots
are trivially stable; the shared multi-version machinery (snapshot
leases, GC cadence, MVSG bookkeeping) lives in
:class:`~repro.engine.protocols.multiversion.MultiVersionConcurrencyControl`.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.mvstore import VersionedRead
from repro.engine.protocols.base import Decision, SnapshotAborted
from repro.engine.reasons import (
    ABORT_SI_FIRST_COMMITTER,
    ABORT_SSI_FASTPATH_PIVOT,
    ABORT_SSI_PIVOT,
)
from repro.engine.protocols.multiversion import MultiVersionConcurrencyControl

#: txn_id recorded on footprints left by kernel fast-path readers, which
#: never receive a protocol-visible transaction identifier.
FAST_PATH_READER = -1


class SIFootprint:
    """The read/write footprint of a committed transaction (for SSI checks).

    ``in_conflict``/``out_conflict`` record whether the transaction has a
    known inbound/outbound rw-antidependency with a concurrent
    transaction; they start from the state observed at its own commit and
    are back-annotated as later concurrent transactions commit, which is
    what lets pivot detection work regardless of commit order.
    """

    __slots__ = (
        "txn_id",
        "read_set",
        "write_set",
        "snapshot_ts",
        "commit_ts",
        "in_conflict",
        "out_conflict",
    )

    def __init__(
        self,
        txn_id: int,
        read_set: FrozenSet[str],
        write_set: FrozenSet[str],
        snapshot_ts: int,
        commit_ts: int,
        in_conflict: bool = False,
        out_conflict: bool = False,
    ) -> None:
        self.txn_id = txn_id
        self.read_set = read_set
        self.write_set = write_set
        self.snapshot_ts = snapshot_ts
        self.commit_ts = commit_ts
        self.in_conflict = in_conflict
        self.out_conflict = out_conflict


class SnapshotIsolation(MultiVersionConcurrencyControl):
    """Begin-snapshot reads + first-committer-wins writes (+ optional SSI)."""

    name = "snapshot-isolation"

    def __init__(
        self,
        store: Any,
        serializable: bool = False,
        metrics: Optional[Metrics] = None,
        gc_interval: int = 128,
    ) -> None:
        super().__init__(store, metrics=metrics, gc_interval=gc_interval)
        self.serializable = serializable
        if serializable:
            self.name = "serializable-si"
        #: commit clock, seeded above any version the store already
        #: carries so a store reused across batches keeps working
        self._commit_ts = self.store.max_timestamp()
        self._snapshots: Dict[int, int] = {}
        self._read_sets: Dict[int, Set[str]] = {}
        #: committed footprints still concurrent with some active txn (SSI)
        self._footprints: List[SIFootprint] = []
        #: conflict flags computed at on_commit, consumed when the
        #: footprint is recorded in install_writes
        self._pending_conflicts: Dict[int, Tuple[bool, bool]] = {}
        #: keys read through each leased fast-path snapshot (SSI only)
        self._lease_reads: Dict[Any, Set[str]] = {}
        #: inverted pivot index: key -> (commit_ts, txn_id) of the latest
        #: out-conflicted committed writer of that key.  Serves the
        #: fast-path committed-pivot check in O(1) per read instead of
        #: scanning every retained footprint (the same inverted-index
        #: shape occ.py uses for validation); pruned with the footprints.
        self._pivot_overwrites: Dict[str, Tuple[int, int]] = {}
        self.first_committer_aborts = 0
        self.ssi_aborts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_begin(self, txn_id: int) -> None:
        self._snapshots[txn_id] = self._commit_ts
        self._read_sets[txn_id] = set()

    def snapshot_of(self, txn_id: int) -> int:
        """The snapshot timestamp an active transaction reads at."""
        return self._snapshots[txn_id]

    # ------------------------------------------------------------------
    # reads: always granted, served from the begin snapshot
    # ------------------------------------------------------------------
    def on_read(self, txn_id: int, key: str) -> Decision:
        return Decision.grant()

    def read_value(self, txn_id: int, key: str) -> Any:
        buffer = self.write_buffers.get(txn_id, {})
        if key in buffer:
            return buffer[key]
        version = self.store.read_as_of(key, self._snapshots[txn_id])
        self._read_sets[txn_id].add(key)
        self.mv_reads.append(VersionedRead(txn_id, key, version.writer))
        return version.value

    # ------------------------------------------------------------------
    # writes: first-committer-wins
    # ------------------------------------------------------------------
    def _first_committer_conflict(self, txn_id: int, key: str) -> Optional[int]:
        """The writer that already committed a newer version of ``key``."""
        if key not in self.store:
            return None
        latest = self.store.latest(key)
        if latest.begin_ts > self._snapshots[txn_id]:
            return latest.writer
        return None

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        winner = self._first_committer_conflict(txn_id, key)
        if winner is not None:
            self.first_committer_aborts += 1
            self.metrics.incr("si.first_committer_aborts")
            return Decision.abort(
                f"si: first-committer-wins on {key!r} (T{winner} committed "
                f"after snapshot {self._snapshots[txn_id]})",
                code=ABORT_SI_FIRST_COMMITTER,
                key=key,
                conflict=(winner,),
            )
        return Decision.grant()

    def on_commit(self, txn_id: int) -> Decision:
        snapshot = self._snapshots[txn_id]
        for key in self.write_buffers.get(txn_id, ()):
            winner = self._first_committer_conflict(txn_id, key)
            if winner is not None:
                self.first_committer_aborts += 1
                self.metrics.incr("si.first_committer_aborts")
                return Decision.abort(
                    f"si: first-committer-wins on {key!r} at commit "
                    f"(T{winner} committed after snapshot {snapshot})",
                    code=ABORT_SI_FIRST_COMMITTER,
                    key=key,
                    conflict=(winner,),
                )
        if self.serializable:
            reads = self._read_sets[txn_id]
            writes = set(self.write_buffers.get(txn_id, ()))
            # rw-antidependency edges against concurrent committed
            # footprints: out_edges are T ->rw F (T read the version F's
            # write superseded), in_edges are F ->rw T (F read the
            # version T is about to supersede)
            out_edges = []
            in_edges = []
            for footprint in self._footprints:
                if footprint.commit_ts <= snapshot:
                    continue
                if footprint.write_set & reads:
                    out_edges.append(footprint)
                if writes and footprint.read_set & writes:
                    in_edges.append(footprint)
            has_outbound = bool(out_edges)
            has_inbound = bool(in_edges)
            if not has_inbound and writes:
                # in-flight fast-path readers serialize at their leased
                # snapshot, before this commit: their reads-so-far are
                # inbound rw-antidependencies too
                has_inbound = any(
                    lease_reads & writes
                    for lease_reads in self._lease_reads.values()
                )
            # dangerous structure: this transaction is the pivot, or one
            # of its edges points at a committed footprint that is (its
            # flags carry edges discovered after that footprint committed)
            if (
                (has_outbound and has_inbound)
                or any(f.out_conflict for f in out_edges)
                or any(f.in_conflict for f in in_edges)
            ):
                self.ssi_aborts += 1
                self.metrics.incr("si.ssi_aborts")
                return Decision.abort(
                    "ssi: dangerous structure (rw-antidependency pivot "
                    "among concurrent commits)",
                    code=ABORT_SSI_PIVOT,
                    conflict=tuple(
                        sorted({f.txn_id for f in out_edges + in_edges})
                    ),
                )
            # committing: back-annotate the edges onto the footprints so
            # a pivot that committed first is still caught later
            for footprint in out_edges:
                footprint.in_conflict = True
            for footprint in in_edges:
                footprint.out_conflict = True
                self._note_pivot(footprint)
            self._pending_conflicts[txn_id] = (has_inbound, has_outbound)
        return Decision.grant()

    def install_writes(self, txn_id: int) -> None:
        buffer = self.write_buffers[txn_id]
        if not buffer:
            # read-only commit: no version, no commit-ts tick — but under
            # SSI the reads alone can complete a dangerous structure
            # (Fekete's read-only anomaly), so the footprint still counts
            self._record_footprint(
                txn_id, self._read_sets[txn_id], frozenset(), self._snapshots[txn_id]
            )
            return
        self._commit_ts += 1
        commit_ts = self._commit_ts
        for key, value in buffer.items():
            self.store.install(key, value, commit_ts, writer=txn_id)
            self._record_install(key, commit_ts, txn_id)
        self._record_footprint(
            txn_id, self._read_sets[txn_id], frozenset(buffer), self._snapshots[txn_id]
        )

    # ------------------------------------------------------------------
    # timestamp policies and the fast-path SSI bridge
    # ------------------------------------------------------------------
    def _readonly_timestamp(self) -> int:
        """The current commit timestamp — stable because commits are monotone."""
        return self._commit_ts

    def _active_floor(self) -> int:
        return min(self._snapshots.values(), default=self._commit_ts)

    def snapshot_read(
        self, key: str, snapshot_ts: Any, txn_id: Optional[int] = None
    ) -> Any:
        if self.serializable:
            # read-only anomaly with an already-committed pivot: if this
            # read would observe a version superseded by a committed
            # writer that itself has an outbound rw-antidependency, the
            # reader is the inbound edge of a dangerous structure whose
            # other two participants have both finished — nobody is left
            # to abort but the reader.  (Commit-time detection cannot
            # catch this: at the pivot's commit this key had not been
            # read yet, so the lease carried no inbound edge.)  Served
            # from the inverted pivot index: stale entries are harmless
            # because a trimmed pivot's commit_ts lies at or below every
            # live or future snapshot, so the comparison never fires.
            pivot = self._pivot_overwrites.get(key)
            if pivot is not None and pivot[0] > snapshot_ts:
                self.ssi_aborts += 1
                self.metrics.incr("si.fastpath_aborts")
                raise SnapshotAborted(
                    f"ssi: fast-path read of {key!r} at snapshot "
                    f"{snapshot_ts} races committed pivot T{pivot[1]}",
                    code=ABORT_SSI_FASTPATH_PIVOT,
                    conflict_txns=(pivot[1],),
                )
            # remember what rode this lease: a fast-path reader's reads
            # can be the inbound edge of a dangerous structure
            self._lease_reads.setdefault(snapshot_ts, set()).add(key)
        return super().snapshot_read(key, snapshot_ts, txn_id=txn_id)

    def release_snapshot(self, snapshot_ts: Any) -> None:
        if self.serializable:
            reads = self._lease_reads.get(snapshot_ts)
            if reads:
                # the reader's rw-antidependencies into concurrent
                # committed writers: back-annotate their inbound flags
                # (the reader itself can never abort, but its edges can
                # make a later committer the detected pivot)
                out_conflict = False
                for footprint in self._footprints:
                    if footprint.commit_ts > snapshot_ts and (
                        footprint.write_set & reads
                    ):
                        footprint.in_conflict = True
                        out_conflict = True
                self._record_footprint(
                    FAST_PATH_READER,
                    reads,
                    frozenset(),
                    snapshot_ts,
                    out_conflict=out_conflict,
                )
        super().release_snapshot(snapshot_ts)
        if snapshot_ts not in self._snapshot_leases:
            self._lease_reads.pop(snapshot_ts, None)

    def abort_fast_reader(self, txn_id: Optional[int], snapshot_ts: Any) -> None:
        """An aborted fast-path attempt leaves no reader footprint behind.

        The base class scrubs the MVSG bookkeeping and returns the lease
        without the commit-path release hook, so no ``FAST_PATH_READER``
        footprint is recorded for work that never happened.  The
        accumulated lease reads are dropped with the last lease on the
        timestamp; while *other* leases still share it, the set is kept
        as-is — it may mix in the aborted attempt's keys, which can only
        over-approximate the surviving readers' eventual footprint (safe,
        merely conservative).
        """
        super().abort_fast_reader(txn_id, snapshot_ts)
        if self.serializable and snapshot_ts not in self._snapshot_leases:
            self._lease_reads.pop(snapshot_ts, None)

    # ------------------------------------------------------------------
    # SSI footprint bookkeeping
    # ------------------------------------------------------------------
    def _note_pivot(self, footprint: SIFootprint) -> None:
        """Index an out-conflicted writer's overwrites for O(1) read checks."""
        for key in footprint.write_set:
            existing = self._pivot_overwrites.get(key)
            if existing is None or footprint.commit_ts > existing[0]:
                self._pivot_overwrites[key] = (footprint.commit_ts, footprint.txn_id)

    def _record_footprint(
        self, txn_id, reads, writes, snapshot_ts, out_conflict: bool = False
    ) -> None:
        if not self.serializable:
            return
        pending_in, pending_out = self._pending_conflicts.pop(
            txn_id, (False, out_conflict)
        )
        footprint = SIFootprint(
            txn_id=txn_id,
            read_set=frozenset(reads),
            write_set=frozenset(writes),
            snapshot_ts=snapshot_ts,
            # writers call this right after ticking the clock, so
            # this is their commit timestamp; read-only commits carry
            # the current clock, making them concurrent with exactly
            # the writers whose snapshots predate it
            commit_ts=self._commit_ts,
            in_conflict=pending_in,
            out_conflict=pending_out,
        )
        self._footprints.append(footprint)
        if pending_out and footprint.write_set:
            self._note_pivot(footprint)
        self._trim_footprints()

    def _trim_footprints(self) -> None:
        """Drop footprints nothing in flight is still concurrent with.

        There is deliberately no size cap: truncating still-concurrent
        footprints would silently disable pivot detection, admitting the
        very anomalies ``serializable=True`` exists to prevent.  Growth
        is bounded by the lifetime of the oldest in-flight snapshot —
        once it finishes, the horizon advances and the list collapses.

        The horizon is the lease-aware GC watermark, not just the active
        transactions' floor: a fast-path reader holds only a snapshot
        *lease*, and trimming a committed pivot's footprint while such a
        lease predates it would blind :meth:`snapshot_read`'s
        committed-pivot check mid-scan.
        """
        horizon = self._gc_watermark()
        self._footprints = [f for f in self._footprints if f.commit_ts > horizon]
        if len(self._pivot_overwrites) > 2 * len(self._footprints):
            self._pivot_overwrites = {
                key: entry
                for key, entry in self._pivot_overwrites.items()
                if entry[0] > horizon
            }

    def on_finished(self, txn_id: int) -> None:
        self._snapshots.pop(txn_id, None)
        self._read_sets.pop(txn_id, None)
        super().on_finished(txn_id)
