"""Shared machinery of the multi-version protocols.

MVTO and snapshot isolation differ in *which* timestamp a transaction
reads at and how writers validate, but share everything an MV protocol
needs around that choice:

* construction over any store (:func:`~repro.engine.mvstore.
  ensure_multiversion` wraps plain stores);
* the reads-from log (``mv_reads``) and the per-key version-install log
  that survive garbage collection, feeding the MVSG checker;
* read-only snapshot leases for the kernel's fast path, which pin the
  garbage-collection watermark while a fast-path reader is in flight;
* the GC cadence (every ``gc_interval`` finished transactions, collect
  below the oldest timestamp any active transaction or leased snapshot
  can still read at);
* the :meth:`committed_history_serializable` override answering with the
  MVSG one-copy-serializability verdict, because the base class's
  single-version conflict graph is wrong for snapshot reads.

Subclasses supply the two timestamp policies:
:meth:`_readonly_timestamp` (a *stable* snapshot for fast-path readers —
no later commit may install a version at or below it) and
:meth:`_active_floor` (the oldest timestamp an active transaction may
still read at, for the GC watermark).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.metrics import Metrics
from repro.engine.mvstore import VersionedRead, ensure_multiversion
from repro.engine.protocols.base import ConcurrencyControl


class MultiVersionConcurrencyControl(ConcurrencyControl):
    """Base class for protocols reading from per-key version chains."""

    def __init__(
        self,
        store: Any,
        metrics: Optional[Metrics] = None,
        gc_interval: int = 128,
    ) -> None:
        super().__init__(ensure_multiversion(store), metrics=metrics)
        if gc_interval < 1:
            raise ValueError("gc_interval must be at least 1")
        self.gc_interval = gc_interval
        #: reads-from log for the MVSG checker
        self.mv_reads: List[VersionedRead] = []
        #: (ts, writer) of every installed version, per key — kept
        #: independently of the store chains so GC cannot erase history
        #: the MVSG checker needs
        self._version_log: Dict[str, List[Tuple[Any, int]]] = {}
        #: leased read-only snapshots (ts -> lease count), pinned below GC
        self._snapshot_leases: Dict[Any, int] = {}
        #: kernel fast-path readers that performed snapshot reads; their
        #: reads are part of the history the MVSG checker certifies
        self._fast_readers: set = set()
        self._finished_since_gc = 0

    # ------------------------------------------------------------------
    # subclass timestamp policies
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _readonly_timestamp(self) -> Any:
        """A stable snapshot timestamp for a declared-read-only reader."""

    @abc.abstractmethod
    def _active_floor(self) -> Any:
        """The oldest timestamp an active transaction may still read at."""

    def _after_gc(self, watermark: Any) -> None:
        """Hook after a collection (e.g. prune per-version bookkeeping)."""

    # ------------------------------------------------------------------
    # version-install bookkeeping
    # ------------------------------------------------------------------
    def _record_install(self, key: str, ts: Any, txn_id: int) -> None:
        self._version_log.setdefault(key, []).append((ts, txn_id))

    def committed_version_orders(self) -> Dict[str, Tuple[int, ...]]:
        """Per key, the committed writers in version (timestamp) order."""
        return {
            key: tuple(txn for _, txn in sorted(entries))
            for key, entries in self._version_log.items()
        }

    # ------------------------------------------------------------------
    # read-only fast path
    # ------------------------------------------------------------------
    def readonly_snapshot(self) -> Any:
        snapshot = self._readonly_timestamp()
        self._snapshot_leases[snapshot] = self._snapshot_leases.get(snapshot, 0) + 1
        return snapshot

    def snapshot_read(
        self, key: str, snapshot_ts: Any, txn_id: Optional[int] = None
    ) -> Any:
        version = self.store.read_as_of(key, snapshot_ts)
        if txn_id is not None:
            # fast-path reads are real observations: log them so the MVSG
            # certificate covers declared-read-only transactions too
            self._fast_readers.add(txn_id)
            self.mv_reads.append(VersionedRead(txn_id, key, version.writer))
        return version.value

    def release_snapshot(self, snapshot_ts: Any) -> None:
        self._release_lease(snapshot_ts)

    def _release_lease(self, snapshot_ts: Any) -> None:
        """Drop one lease on ``snapshot_ts`` (the raw count decrement).

        Split from :meth:`release_snapshot` so the abort path can return
        a lease *without* the commit-path side effects subclasses hang on
        release (serializable SI records the lease's reads as a committed
        reader footprint there — exactly what an aborted attempt must not
        leave behind).
        """
        count = self._snapshot_leases.get(snapshot_ts, 0) - 1
        if count > 0:
            self._snapshot_leases[snapshot_ts] = count
        else:
            self._snapshot_leases.pop(snapshot_ts, None)

    def abort_fast_reader(self, txn_id: Optional[int], snapshot_ts: Any) -> None:
        """Scrub an aborted fast-path attempt from the MVSG bookkeeping.

        Its snapshot reads genuinely happened, but the attempt aborted —
        leaving them in ``mv_reads``/``_fast_readers`` would certify the
        very observation the abort exists to reject.  The lease is
        returned via :meth:`_release_lease`, bypassing the commit-path
        release hook.
        """
        if txn_id is not None and txn_id in self._fast_readers:
            self._fast_readers.discard(txn_id)
            self.mv_reads = [read for read in self.mv_reads if read.txn_id != txn_id]
        self._release_lease(snapshot_ts)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def mvsg_transactions(self) -> frozenset:
        """The transactions whose operations the MVSG certificate covers.

        Committed protocol transactions plus every fast-path reader —
        the readers' snapshot observations are part of the execution, and
        omitting them would let e.g. plain SI's read-only-transaction
        anomaly go uncertified.
        """
        return frozenset(self.committed) | frozenset(self._fast_readers)

    def committed_history_serializable(self) -> bool:
        """One-copy serializability of the committed multi-version history.

        The single-version conflict-graph check of the base class is
        wrong for multi-version schedules (a reader served from an old
        version *follows* the writer in the log but *precedes* it in the
        serialization), so MV protocols answer with the MVSG check.
        Note that under plain snapshot isolation this can legitimately
        return ``False`` — write skew is admitted by design.
        """
        from repro.analysis.mvsg import MVHistory, one_copy_serializable

        return one_copy_serializable(MVHistory.from_protocol(self))

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def on_finished(self, txn_id: int) -> None:
        """GC cadence; subclasses pop their state first, then call super."""
        self._finished_since_gc += 1
        if self._finished_since_gc >= self.gc_interval:
            self._finished_since_gc = 0
            watermark = self._gc_watermark()
            dropped = self.store.collect_garbage(watermark)
            if dropped:
                self.metrics.incr("mvstore.versions_collected", dropped)
                self._after_gc(watermark)

    def _gc_watermark(self) -> Any:
        floor = self._active_floor()
        if self._snapshot_leases:
            leased = min(self._snapshot_leases)
            if leased < floor:
                floor = leased
        return floor
