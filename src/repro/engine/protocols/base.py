"""The online concurrency-control protocol interface and the serial baseline.

An online protocol receives one request at a time — ``read``, ``write``
or ``commit`` — and answers with a :class:`Decision`:

* ``GRANT`` — the request executes now (reads carry the value);
* ``BLOCK`` — the request must wait; ``blocked_on`` names the
  transactions it waits for, so the caller knows when to retry;
* ``ABORT`` — the transaction must abort (and typically restart).

All protocols buffer writes in a per-transaction private write set and
apply them to the shared :class:`~repro.engine.storage.DataStore` only at
commit, so aborting never leaves partial updates behind.  Reads see the
transaction's own buffered writes first (read-your-writes), then the
committed store.

Every granted data operation is appended to :attr:`ConcurrencyControl.log`
and every commit to :attr:`ConcurrencyControl.committed`; the test suite
uses these to verify, protocol by protocol, that the committed projection
of the produced history is conflict-serializable — the bridge back to the
paper's theory.

Protocols also *notify*: the engine kernel subscribes via
:meth:`ConcurrencyControl.add_finish_listener` to learn the moment a
transaction leaves the system (commit or abort) so it can wake exactly
the requests blocked on it, and via
:meth:`ConcurrencyControl.add_wake_listener` to learn when the protocol
wants a specific transaction re-driven immediately (e.g. a deadlock
victim that must come back to receive its abort).  These hooks are what
make event-driven blocking possible — without them the callers must poll
blocked requests on a timer.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.storage import DataStore


class TransactionAborted(RuntimeError):
    """Raised by the executor when a transaction exceeds its restart budget."""

    def __init__(self, txn_id: int, reason: str = "") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class SnapshotAborted(RuntimeError):
    """Raised by :meth:`ConcurrencyControl.snapshot_read` to abort a fast-path reader.

    Declared-read-only transactions on the kernel's snapshot fast path
    normally never abort, but serializable SI must be able to kill a
    reader whose next read would observe a non-serializable state (the
    read-only anomaly with an already-committed pivot — see
    ``SnapshotIsolation.snapshot_read``).  The kernel catches this,
    releases the reader's lease, and reports the attempt as ABORTED so
    the caller restarts it on a fresh snapshot.

    ``code`` carries the abort-taxonomy reason code
    (:mod:`repro.engine.reasons`) and ``conflict_txns`` the committed
    pivot(s) the reader raced, so the kernel can rebuild a fully
    attributed abort :class:`Decision` from the exception.
    """

    def __init__(
        self,
        message: str = "",
        code: Optional[str] = None,
        conflict_txns: Tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.code = code
        self.conflict_txns = conflict_txns


class DecisionKind(enum.Enum):
    """The three possible answers to an online request."""

    GRANT = "grant"
    BLOCK = "block"
    ABORT = "abort"


class Decision:
    """The protocol's answer to one request.

    Decisions are immutable and sit on the hottest path in the engine —
    one per protocol interaction — so the class is hand-rolled rather
    than a dataclass: ``__slots__`` avoids a per-instance ``__dict__``,
    and the value-less ``GRANT`` (by far the most common answer) is a
    shared singleton, so granting costs no allocation at all.

    ``skip_effect`` is GRANT-only: the operation is accepted but has no
    effect (e.g. a write made obsolete by the Thomas write rule); the
    base class then skips buffering the write.

    ABORT decisions additionally carry machine-readable attribution for
    the observability layer: ``code`` is the cross-protocol taxonomy
    reason code (:mod:`repro.engine.reasons`), ``conflict_key`` names
    the contended key, and ``conflict_txns`` the transaction(s) whose
    conflicting work caused the abort (the committed writer that
    invalidated an OCC read set, the first committer that won under SI,
    the deadlock peers under 2PL).  The free-text ``reason`` stays the
    human-oriented channel; equality and hashing deliberately ignore
    the attribution fields so decisions from attributed and legacy
    emitters still compare by outcome.
    """

    __slots__ = (
        "kind",
        "value",
        "blocked_on",
        "reason",
        "skip_effect",
        "code",
        "conflict_key",
        "conflict_txns",
    )

    def __init__(
        self,
        kind: DecisionKind,
        value: Any = None,
        blocked_on: Tuple[int, ...] = (),
        reason: str = "",
        skip_effect: bool = False,
        code: Optional[str] = None,
        conflict_key: Optional[str] = None,
        conflict_txns: Tuple[int, ...] = (),
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "blocked_on", blocked_on)
        object.__setattr__(self, "reason", reason)
        object.__setattr__(self, "skip_effect", skip_effect)
        object.__setattr__(self, "code", code)
        object.__setattr__(self, "conflict_key", conflict_key)
        object.__setattr__(self, "conflict_txns", conflict_txns)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Decision is immutable")

    def __repr__(self) -> str:
        attribution = ""
        if self.code is not None:
            attribution = (
                f", code={self.code!r}, conflict_key={self.conflict_key!r}, "
                f"conflict_txns={self.conflict_txns!r}"
            )
        return (
            f"Decision(kind={self.kind!r}, value={self.value!r}, "
            f"blocked_on={self.blocked_on!r}, reason={self.reason!r}, "
            f"skip_effect={self.skip_effect!r}{attribution})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Decision):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.value == other.value
            and self.blocked_on == other.blocked_on
            and self.reason == other.reason
            and self.skip_effect == other.skip_effect
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.blocked_on, self.reason, self.skip_effect))

    @property
    def granted(self) -> bool:
        return self.kind is DecisionKind.GRANT

    @property
    def blocked(self) -> bool:
        return self.kind is DecisionKind.BLOCK

    @property
    def aborted(self) -> bool:
        return self.kind is DecisionKind.ABORT

    @staticmethod
    def grant(value: Any = None) -> "Decision":
        if value is None:
            return _GRANT  # the shared value-less grant: no allocation
        return Decision(DecisionKind.GRANT, value=value)

    @staticmethod
    def block(blocked_on: Sequence[int] = (), reason: str = "") -> "Decision":
        return Decision(DecisionKind.BLOCK, blocked_on=tuple(blocked_on), reason=reason)

    @staticmethod
    def abort(
        reason: str = "",
        code: Optional[str] = None,
        key: Optional[str] = None,
        conflict: Sequence[int] = (),
    ) -> "Decision":
        return Decision(
            DecisionKind.ABORT,
            reason=reason,
            code=code,
            conflict_key=key,
            conflict_txns=tuple(conflict),
        )

    @staticmethod
    def grant_without_effect(reason: str = "") -> "Decision":
        """Accept the request but apply no effect (Thomas write rule)."""
        return Decision(DecisionKind.GRANT, reason=reason, skip_effect=True)


#: the singleton returned by every value-less ``Decision.grant()``
_GRANT = Decision(DecisionKind.GRANT)


@dataclass(frozen=True)
class LogRecord:
    """One granted data operation, for post-hoc serializability checking."""

    sequence: int
    txn_id: int
    kind: str  # "read" or "write"
    key: str


class ConcurrencyControl(abc.ABC):
    """Base class for online concurrency-control protocols."""

    name = "abstract"
    #: True for protocols whose commit runs in two stages (validation
    #: pipeline): the kernel then calls :meth:`prepare_commit` first and
    #: :meth:`commit` on the following interaction.  Kept as a cheap class
    #: flag so single-stage protocols pay nothing on the commit hot path.
    two_stage_commit = False
    #: True for deterministic (epoch-sequenced) protocols: the kernel
    #: then calls :meth:`declare_footprint` with the spec's read/write
    #: sets right after :meth:`begin`, and tags begin/commit trace
    #: events with the assigned epoch and slot.  A class flag for the
    #: same hot-path reason as ``two_stage_commit``.
    deterministic = False

    def __init__(self, store: DataStore, metrics: Optional[Metrics] = None) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else Metrics()
        self.log: List[LogRecord] = []
        self.committed: Set[int] = set()
        self.aborted: Set[int] = set()
        self.active: Set[int] = set()
        self.write_buffers: Dict[int, Dict[str, Any]] = {}
        #: per-key index of active transactions holding a buffered write,
        #: maintained on write/commit/abort so :meth:`pending_writers` —
        #: on the hot path of SGT and T/O — never scans every buffer.
        self._pending_writer_index: Dict[str, Set[int]] = {}
        #: log-sequence position at which each committed transaction's buffered
        #: writes were installed (writes take effect at commit, not at grant)
        self.commit_positions: Dict[int, int] = {}
        self.stats: Dict[str, int] = {
            "reads_granted": 0,
            "writes_granted": 0,
            "blocks": 0,
            "aborts": 0,
            "commits": 0,
        }
        self._sequence = 0
        #: subscribers told when a transaction leaves the system; each is
        #: called as ``listener(txn_id, outcome)`` with outcome "commit" or
        #: "abort" — the kernel's wakeup source.
        self._finish_listeners: List[Callable[[int, str], None]] = []
        #: subscribers told when the protocol wants a transaction re-driven
        #: right away (deadlock victims chosen while blocked).
        self._wake_listeners: List[Callable[[int], None]] = []
        #: simulated cost (probe count) of the validation work performed by
        #: the most recent commit-path interaction; the kernel consumes it
        #: via :meth:`take_validation_probes` so timed front-ends can charge
        #: validation to the right resource (critical section vs overlap).
        self._validation_probes = 0

    # ------------------------------------------------------------------
    # notifications (the event-driven kernel's wakeup source)
    # ------------------------------------------------------------------
    def add_finish_listener(self, listener: Callable[[int, str], None]) -> None:
        """Subscribe to transaction-finished events (commit or abort)."""
        self._finish_listeners.append(listener)

    def add_wake_listener(self, listener: Callable[[int], None]) -> None:
        """Subscribe to explicit wake requests for specific transactions."""
        self._wake_listeners.append(listener)

    def remove_finish_listener(self, listener: Callable[[int, str], None]) -> None:
        """Unsubscribe a finish listener (idempotent).

        The run-queue scheduler made the wake hooks the *only* path by
        which blocked work re-enters the executor, which also made stale
        subscriptions dangerous: a kernel that has finished its run but
        stays subscribed would keep reacting to a later kernel's
        commits/aborts on the same protocol instance (popping its wait
        index, re-enqueuing dead sessions).  Front-ends therefore detach
        their kernel when a run completes (see
        :meth:`repro.engine.kernel.EngineKernel.detach`).
        """
        try:
            self._finish_listeners.remove(listener)
        except ValueError:
            pass

    def remove_wake_listener(self, listener: Callable[[int], None]) -> None:
        """Unsubscribe a wake listener (idempotent)."""
        try:
            self._wake_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_finished(self, txn_id: int, outcome: str) -> None:
        for listener in self._finish_listeners:
            listener(txn_id, outcome)

    def request_wake(self, txn_id: int) -> None:
        """Ask the caller to re-drive ``txn_id`` immediately.

        Used by protocols whose decisions can change while a transaction
        is *not* interacting — e.g. 2PL choosing a blocked transaction as
        a deadlock victim: the victim learns of its doom only at its next
        request, so an event-driven caller must be told to issue one.
        """
        for listener in self._wake_listeners:
            listener(txn_id)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, txn_id: int) -> None:
        """Register a new transaction."""
        if txn_id in self.active:
            raise ValueError(f"transaction {txn_id} is already active")
        self.active.add(txn_id)
        self.write_buffers[txn_id] = {}
        self.on_begin(txn_id)

    def declare_footprint(self, txn_id: int, reads, writes):
        """Declare an active transaction's read/write footprint up front.

        Only deterministic protocols (``deterministic = True``) accept a
        declaration: the epoch sequencer admits the transaction into
        the fixed total order and returns its ticket.  Reactive
        protocols learn footprints one request at a time and must not
        be handed one.
        """
        raise NotImplementedError(
            f"{self.name} is not a deterministic protocol: footprints are "
            "discovered per-request, not declared"
        )

    def read(self, txn_id: int, key: str) -> Decision:
        """Request to read ``key``."""
        self._require_active(txn_id)
        decision = self.on_read(txn_id, key)
        if decision.granted:
            value = self.read_value(txn_id, key)
            decision = Decision.grant(value)
            self._record(txn_id, "read", key)
            self.stats["reads_granted"] += 1
            self.metrics.incr("protocol.reads_granted")
        else:
            self._count(decision)
        return decision

    def write(self, txn_id: int, key: str, value: Any) -> Decision:
        """Request to write ``value`` to ``key`` (buffered until commit)."""
        self._require_active(txn_id)
        decision = self.on_write(txn_id, key, value)
        if decision.granted:
            if not decision.skip_effect:
                self.write_buffers[txn_id][key] = value
                self._pending_writer_index.setdefault(key, set()).add(txn_id)
                self._record(txn_id, "write", key)
            self.stats["writes_granted"] += 1
            self.metrics.incr("protocol.writes_granted")
        else:
            self._count(decision)
        return decision

    def prepare_commit(self, txn_id: int) -> Optional[Decision]:
        """Enter a two-stage commit's validation stage, if the protocol has one.

        Protocols with a *validation pipeline* (parallel-validation OCC)
        answer the first commit request in two stages: ``prepare_commit``
        performs the validation checks and publishes the transaction as
        *validating*, and a subsequent :meth:`commit` call finishes the
        write phase.  Returning ``None`` (the default) means the protocol
        commits in a single stage and the caller should call
        :meth:`commit` directly.  A GRANT here means "validation passed,
        call commit to finish"; an ABORT means validation failed and the
        caller must abort the transaction.
        """
        self._require_active(txn_id)
        decision = self.on_prepare_commit(txn_id)
        if decision is not None and not decision.granted:
            self._count(decision)
        return decision

    def commit(self, txn_id: int) -> Decision:
        """Request to commit; on GRANT the write buffer is applied atomically."""
        self._require_active(txn_id)
        decision = self.on_commit(txn_id)
        if decision.granted:
            self.install_writes(txn_id)
            self.commit_positions[txn_id] = self._sequence
            self._sequence += 1
            self.committed.add(txn_id)
            self.active.discard(txn_id)
            self._forget_pending_writes(txn_id)
            self.write_buffers.pop(txn_id, None)
            self.stats["commits"] += 1
            self.metrics.incr("protocol.commits")
            self.on_finished(txn_id)
            self._notify_finished(txn_id, "commit")
        else:
            self._count(decision)
        return decision

    def abort(self, txn_id: int) -> None:
        """Abort a transaction, discarding its buffered writes."""
        if txn_id not in self.active:
            return
        self.active.discard(txn_id)
        self.aborted.add(txn_id)
        self._forget_pending_writes(txn_id)
        self.write_buffers.pop(txn_id, None)
        self.on_abort(txn_id)
        self.on_finished(txn_id)
        self._notify_finished(txn_id, "abort")

    # ------------------------------------------------------------------
    # protocol-specific hooks
    # ------------------------------------------------------------------
    def on_begin(self, txn_id: int) -> None:  # pragma: no cover - default no-op
        """Hook called when a transaction begins."""

    @abc.abstractmethod
    def on_read(self, txn_id: int, key: str) -> Decision:
        """Decide a read request (value resolution is handled by the base class)."""

    @abc.abstractmethod
    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        """Decide a write request."""

    def on_prepare_commit(self, txn_id: int) -> Optional[Decision]:
        """Hook for two-stage commits (``None`` = single-stage, the default)."""
        return None

    def on_commit(self, txn_id: int) -> Decision:
        """Decide a commit request (granted by default)."""
        return Decision.grant()

    def take_validation_probes(self) -> int:
        """Consume the probe count of the most recent validation work.

        Timed callers (the simulator) read this after every commit-path
        interaction to convert validation work into simulated time —
        charged to the critical section for serial validation, or to
        overlappable client time for a validation pipeline.
        """
        probes = self._validation_probes
        self._validation_probes = 0
        return probes

    def on_abort(self, txn_id: int) -> None:  # pragma: no cover - default no-op
        """Hook called when a transaction aborts."""

    def on_finished(self, txn_id: int) -> None:  # pragma: no cover - default no-op
        """Hook called after a transaction leaves the system (commit or abort)."""

    def read_value(self, txn_id: int, key: str) -> Any:
        """Resolve the value a granted read observes.

        Single-version protocols see the transaction's own buffered write
        first, then the committed store.  Multi-version protocols
        override this to serve the version visible at the transaction's
        snapshot/start timestamp (and to record reads-from bookkeeping).
        """
        return self._buffered_or_committed(txn_id, key)

    def install_writes(self, txn_id: int) -> None:
        """Apply a granted commit's buffered writes to the store.

        Multi-version protocols override this to install version records
        at the appropriate timestamp instead of overwriting in place.
        """
        self.store.apply_writes(self.write_buffers[txn_id], writer=txn_id)

    # ------------------------------------------------------------------
    # read-only fast path (multi-version protocols opt in)
    # ------------------------------------------------------------------
    def readonly_snapshot(self) -> Optional[Any]:
        """A stable snapshot timestamp for a declared-read-only transaction.

        Returning a timestamp opts the protocol into the engine kernel's
        read-only fast path: the kernel serves the whole transaction via
        :meth:`snapshot_read` at that timestamp, bypassing write buffers
        and validation entirely, and calls :meth:`release_snapshot` at
        commit.  The timestamp must be *stable*: no later commit may ever
        install a version visible at or below it.  Protocols without
        multi-version storage return ``None`` (no fast path).
        """
        return None

    def snapshot_read(
        self, key: str, snapshot_ts: Any, txn_id: Optional[int] = None
    ) -> Any:
        """Read ``key`` as of a snapshot handed out by :meth:`readonly_snapshot`.

        ``txn_id`` identifies the fast-path reader (kernel-assigned) so
        the protocol can log the read for post-hoc MVSG checking.
        """
        raise NotImplementedError(f"{self.name} does not support snapshot reads")

    def release_snapshot(self, snapshot_ts: Any) -> None:  # pragma: no cover - no-op
        """The fast-path transaction holding ``snapshot_ts`` finished."""

    def abort_fast_reader(self, txn_id: Optional[int], snapshot_ts: Any) -> None:
        """A fast-path reader aborted mid-scan (see :class:`SnapshotAborted`).

        The default just releases the lease; multi-version protocols
        additionally scrub the aborted attempt's reads from their MVSG
        bookkeeping — aborted work never happened, so it must not enter
        the certified history.
        """
        self.release_snapshot(snapshot_ts)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _buffered_or_committed(self, txn_id: int, key: str) -> Any:
        buffer = self.write_buffers.get(txn_id, {})
        if key in buffer:
            return buffer[key]
        return self.store.read(key)

    def _record(self, txn_id: int, kind: str, key: str) -> None:
        self.log.append(LogRecord(self._sequence, txn_id, kind, key))
        self._sequence += 1

    def _count(self, decision: Decision) -> None:
        if decision.blocked:
            self.stats["blocks"] += 1
            self.metrics.incr("protocol.blocks")
        elif decision.aborted:
            self.stats["aborts"] += 1
            self.metrics.incr("protocol.aborts")

    def _require_active(self, txn_id: int) -> None:
        if txn_id not in self.active:
            raise ValueError(f"transaction {txn_id} is not active")

    def pending_writers(self, key: str, exclude: Optional[int] = None) -> List[int]:
        """Active transactions holding an uncommitted buffered write to ``key``.

        Because writes are deferred to commit, a concurrent reader would
        otherwise observe the *committed* value even though the protocol's
        conflict bookkeeping assumes it observed the pending one; protocols
        that do not lock (SGT, T/O) therefore treat a pending write as a
        barrier on the key.

        Served from the per-key index maintained on write/commit/abort,
        so the cost is proportional to the writers of *this* key rather
        than to every write buffer in the system.  The result is sorted
        for deterministic downstream decisions (wait-for edges, blocker
        sets).
        """
        owners = self._pending_writer_index.get(key)
        if not owners:
            return []
        return sorted(txn for txn in owners if txn != exclude)

    def _forget_pending_writes(self, txn_id: int) -> None:
        """Drop a finished transaction's entries from the pending-writer index."""
        for key in self.write_buffers.get(txn_id, ()):
            owners = self._pending_writer_index.get(key)
            if owners is not None:
                owners.discard(txn_id)
                if not owners:
                    self._pending_writer_index.pop(key, None)

    # ------------------------------------------------------------------
    # post-hoc analysis
    # ------------------------------------------------------------------
    def committed_log(self) -> List[LogRecord]:
        """The granted-operation log restricted to committed transactions."""
        return [record for record in self.log if record.txn_id in self.committed]

    def committed_conflict_graph(self):
        """The conflict graph of the *actual* committed execution.

        Writes are buffered and only reach the store at commit, so for
        conflict purposes a committed transaction's writes happen at its
        commit position, while its reads happen where they were granted.

        Events are grouped per key and each key's timeline is walked
        once: every access gets an edge from the *nearest* preceding
        conflicting accesses (the last writer, and — for a write — the
        readers seen since that writer).  Edges to farther predecessors
        are omitted because they are transitively implied through the
        chain of intervening writers, so the graph has exactly the same
        reachability (and therefore the same cycles, and the same
        serializability verdict) as the all-pairs conflict graph, while
        construction is linear in the number of events per key instead
        of quadratic in the whole log.
        """
        from repro.util.graphs import DiGraph

        per_key: Dict[str, List[Tuple[int, int, bool]]] = {}
        seen_writes = set()
        graph = DiGraph()
        for record in self.committed_log():
            graph.add_node(record.txn_id)
            if record.kind == "read":
                position = record.sequence
                is_write = False
            else:
                marker = (record.txn_id, record.key)
                if marker in seen_writes:
                    continue
                seen_writes.add(marker)
                position = self.commit_positions.get(record.txn_id, record.sequence)
                is_write = True
            per_key.setdefault(record.key, []).append(
                (position, record.txn_id, is_write)
            )

        for events in per_key.values():
            events.sort()
            last_writer: Optional[int] = None
            readers_since_write: Set[int] = set()
            for _, txn_id, is_write in events:
                if last_writer is not None and last_writer != txn_id:
                    graph.add_edge(last_writer, txn_id)  # ww or wr
                if is_write:
                    for reader in readers_since_write:
                        if reader != txn_id:
                            graph.add_edge(reader, txn_id)  # rw
                    readers_since_write.clear()
                    last_writer = txn_id
                else:
                    readers_since_write.add(txn_id)
        return graph

    def committed_history_serializable(self) -> bool:
        """Whether the committed projection of the history is conflict-serializable."""
        return not self.committed_conflict_graph().has_cycle()


class SerialProtocol(ConcurrencyControl):
    """One transaction at a time: the paper's trivially correct baseline.

    The first transaction to issue a data request becomes the *holder*;
    every other transaction blocks until the holder commits or aborts.
    Requires no information beyond a transaction identifier per request —
    exactly the minimum-information scheduler of Theorem 2, in online
    form.
    """

    name = "serial"

    def __init__(self, store: DataStore) -> None:
        super().__init__(store)
        self._holder: Optional[int] = None

    def _acquire(self, txn_id: int) -> Decision:
        if self._holder is None:
            self._holder = txn_id
        if self._holder == txn_id:
            return Decision.grant()
        return Decision.block(blocked_on=(self._holder,), reason="serial execution")

    def on_read(self, txn_id: int, key: str) -> Decision:
        return self._acquire(txn_id)

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        return self._acquire(txn_id)

    def on_commit(self, txn_id: int) -> Decision:
        if self._holder not in (None, txn_id):
            return Decision.block(blocked_on=(self._holder,), reason="serial execution")
        return Decision.grant()

    def on_finished(self, txn_id: int) -> None:
        if self._holder == txn_id:
            self._holder = None
