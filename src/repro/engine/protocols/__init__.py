"""Online concurrency-control protocols.

Each protocol implements the :class:`repro.engine.protocols.base.ConcurrencyControl`
interface: requests arrive one at a time and are granted, blocked, or
aborted.  Implemented protocols:

* :class:`~repro.engine.protocols.base.SerialProtocol` — one transaction
  at a time (the paper's "sure way to secure consistency", and its
  minimum-information optimum).
* :class:`~repro.engine.protocols.two_phase_locking.StrictTwoPhaseLocking`
  — shared/exclusive locks held to commit, wait-for-graph deadlock
  detection.
* :class:`~repro.engine.protocols.sgt.SerializationGraphTesting` — grant
  everything, maintain the conflict graph, abort on cycles.
* :class:`~repro.engine.protocols.timestamp_ordering.TimestampOrdering` —
  basic T/O with read/write timestamps.
* :class:`~repro.engine.protocols.occ.OptimisticConcurrencyControl` —
  read/validate/write phases with backward validation (Kung & Robinson).
* :class:`~repro.engine.protocols.mvto.MultiVersionTimestampOrdering` —
  multi-version T/O: snapshot reads at the start timestamp (readers
  never block or abort), writers validate against read timestamps.
* :class:`~repro.engine.protocols.snapshot_isolation.SnapshotIsolation`
  — begin-snapshot reads + first-committer-wins writes, with a
  ``serializable=True`` knob adding SSI-style rw-antidependency checks.
"""

from repro.engine.protocols.base import (
    ConcurrencyControl,
    Decision,
    DecisionKind,
    SerialProtocol,
    TransactionAborted,
)
from repro.engine.protocols.two_phase_locking import StrictTwoPhaseLocking
from repro.engine.protocols.timestamp_ordering import TimestampOrdering
from repro.engine.protocols.sgt import SerializationGraphTesting
from repro.engine.protocols.occ import OptimisticConcurrencyControl
from repro.engine.protocols.mvto import MultiVersionTimestampOrdering
from repro.engine.protocols.snapshot_isolation import SIFootprint, SnapshotIsolation

__all__ = [
    "ConcurrencyControl",
    "Decision",
    "DecisionKind",
    "SerialProtocol",
    "TransactionAborted",
    "StrictTwoPhaseLocking",
    "TimestampOrdering",
    "SerializationGraphTesting",
    "OptimisticConcurrencyControl",
    "MultiVersionTimestampOrdering",
    "SIFootprint",
    "SnapshotIsolation",
]
