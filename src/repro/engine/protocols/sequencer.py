"""The epoch sequencer: a fixed total order over admitted transactions.

Deterministic (Calvin-style) concurrency control splits the scheduler
in two.  A *sequencer* assigns every admitted transaction a position in
a fixed total order — here a dense sequence number, batched into
numbered **epochs** of ``epoch_size`` consecutive positions — before
any data access happens.  The *lock scheduler*
(:mod:`repro.engine.protocols.deterministic`) then grants each
transaction's declared read/write footprint strictly in that order, so
every replica (or re-run) that receives the same input batch produces
the same history.  Because the order is fixed up front, the scheduler
needs no wait-for graph and no validation phase: the only possible wait
is "a predecessor in the order has not finished yet", and such waits
can never form a cycle.

This module is the bookkeeping half: it hands out
:class:`FootprintTicket` positions at admission, tracks which tickets
are still live in a doubly-linked list ordered by sequence number (so
"my nearest live predecessor" and "the earliest live transaction" —
the two questions the deterministic commit gate and epoch barrier ask —
are O(1)), and retains every ticket permanently so post-hoc oracles can
check that commit order equals sequence order.

A transaction that aborts (an injected fault, or a reconnaissance
restart after an under-declared footprint) and comes back is admitted
*again* under a fresh transaction id: its new ticket lands at the tail
of the order, which is exactly Calvin's low-priority re-submission —
a restart never blocks the epoch it originally belonged to.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional


class FootprintTicket:
    """One admitted transaction's place in the deterministic order.

    Doubles as the node of the sequencer's live list (``prev``/``next``
    link live tickets in sequence order); ``live`` flips to False at
    retirement but the ticket itself is retained forever in
    :attr:`EpochSequencer.tickets` for the conformance oracles.
    """

    __slots__ = ("txn_id", "seq", "epoch", "slot", "reads", "writes",
                 "live", "prev", "next")

    def __init__(
        self,
        txn_id: int,
        seq: int,
        epoch: int,
        slot: int,
        reads: FrozenSet[str],
        writes: FrozenSet[str],
    ) -> None:
        self.txn_id = txn_id
        self.seq = seq
        self.epoch = epoch
        self.slot = slot
        self.reads = reads
        self.writes = writes
        self.live = True
        self.prev: Optional["FootprintTicket"] = None
        self.next: Optional["FootprintTicket"] = None

    def covers(self, key: str) -> bool:
        """Whether ``key`` is inside the declared footprint."""
        return key in self.reads or key in self.writes

    def __repr__(self) -> str:
        state = "live" if self.live else "done"
        return (
            f"FootprintTicket(txn={self.txn_id}, seq={self.seq}, "
            f"epoch={self.epoch}, slot={self.slot}, {state})"
        )


class EpochSequencer:
    """Assign sequence numbers and epochs; track the live prefix.

    Admission order *is* the total order: ``admit`` hands out dense
    sequence numbers, and ``epoch = seq // epoch_size`` batches them
    into fixed-size epochs (``slot`` is the position within the epoch).
    The live list supports the two ordering queries deterministic
    scheduling needs without any scanning:

    * :meth:`earliest_live` — the head of the list; the epoch barrier
      blocks a transaction while the head still belongs to an earlier
      epoch, and the head transaction itself can never be blocked
      (the progress guarantee that replaces deadlock detection);
    * ``ticket.prev`` — the nearest live predecessor; the commit gate
      blocks a commit on exactly this transaction, so commits drain in
      sequence order with one wake per finished predecessor instead of
      a broadcast.
    """

    def __init__(self, epoch_size: int = 8) -> None:
        if epoch_size < 1:
            raise ValueError("epoch_size must be at least 1")
        self.epoch_size = epoch_size
        #: every ticket ever admitted, by transaction id (kept after
        #: retirement: the epoch-order oracle replays commit order
        #: against these sequence numbers)
        self.tickets: Dict[int, FootprintTicket] = {}
        self._next_seq = 0
        self._head: Optional[FootprintTicket] = None
        self._tail: Optional[FootprintTicket] = None

    # ------------------------------------------------------------------
    # admission / retirement
    # ------------------------------------------------------------------
    def admit(
        self, txn_id: int, reads: Iterable[str], writes: Iterable[str]
    ) -> FootprintTicket:
        """Admit a transaction: next sequence number, appended to the live list."""
        if txn_id in self.tickets:
            raise ValueError(f"transaction {txn_id} already holds a ticket")
        seq = self._next_seq
        self._next_seq += 1
        ticket = FootprintTicket(
            txn_id,
            seq,
            seq // self.epoch_size,
            seq % self.epoch_size,
            frozenset(reads),
            frozenset(writes),
        )
        self.tickets[txn_id] = ticket
        if self._tail is None:
            self._head = self._tail = ticket
        else:
            ticket.prev = self._tail
            self._tail.next = ticket
            self._tail = ticket
        return ticket

    def retire(self, txn_id: int) -> Optional[FootprintTicket]:
        """A transaction finished (commit or abort): unlink it from the live list."""
        ticket = self.tickets.get(txn_id)
        if ticket is None or not ticket.live:
            return None
        ticket.live = False
        if ticket.prev is not None:
            ticket.prev.next = ticket.next
        else:
            self._head = ticket.next
        if ticket.next is not None:
            ticket.next.prev = ticket.prev
        else:
            self._tail = ticket.prev
        ticket.prev = ticket.next = None
        return ticket

    # ------------------------------------------------------------------
    # ordering queries
    # ------------------------------------------------------------------
    def earliest_live(self) -> Optional[FootprintTicket]:
        """The live ticket with the smallest sequence number, if any."""
        return self._head

    def live_predecessor(self, ticket: FootprintTicket) -> Optional[FootprintTicket]:
        """The nearest live ticket ordered before ``ticket`` (None at the head)."""
        return ticket.prev if ticket.live else None

    @property
    def admitted(self) -> int:
        """How many transactions have been admitted so far."""
        return self._next_seq

    @property
    def drained_epochs(self) -> int:
        """Epochs whose every admitted transaction has finished.

        The *contiguous* finished prefix, measured at the head of the
        live list: epochs at or above the earliest live transaction's
        epoch may still have live members, everything below is drained.
        """
        floor = self._head.seq if self._head is not None else self._next_seq
        return floor // self.epoch_size
