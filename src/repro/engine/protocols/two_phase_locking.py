"""Strict two-phase locking with deadlock detection.

The online counterpart of the 2PL policy of Section 5.2: shared locks for
reads, exclusive locks for writes, every lock held until the transaction
finishes (strictness), blocked requests queue on the lock, and a
wait-for-graph cycle check aborts the requester whose wait would close a
cycle (the victim then restarts via the executor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.reasons import ABORT_LOCK_DEADLOCK
from repro.engine.storage import DataStore
from repro.util.graphs import WaitForGraph


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) lock mode."""

    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class LockEntry:
    """The state of one key's lock: current holders and their strongest mode."""

    holders: Dict[int, LockMode] = field(default_factory=dict)

    def compatible(self, txn_id: int, mode: LockMode) -> bool:
        """Whether ``txn_id`` may acquire the lock in ``mode`` right now."""
        # no dict copy here: this runs once per lock request, and at
        # 1,000 clients the herd of retries behind a hot key makes an
        # allocation per check visible in profiles
        holders = self.holders
        if not holders:
            return True
        if mode is LockMode.SHARED:
            return all(
                m is LockMode.SHARED for t, m in holders.items() if t != txn_id
            )
        return len(holders) == 1 and txn_id in holders

    def conflicting_holders(self, txn_id: int, mode: LockMode) -> List[int]:
        """The holders that prevent ``txn_id`` from acquiring ``mode``."""
        result = []
        for holder, held_mode in self.holders.items():
            if holder == txn_id:
                continue
            if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                result.append(holder)
        return result

    def grant(self, txn_id: int, mode: LockMode) -> None:
        current = self.holders.get(txn_id)
        if current is None or (current is LockMode.SHARED and mode is LockMode.EXCLUSIVE):
            self.holders[txn_id] = mode

    def release(self, txn_id: int) -> None:
        self.holders.pop(txn_id, None)

    @property
    def free(self) -> bool:
        return not self.holders


class StrictTwoPhaseLocking(ConcurrencyControl):
    """Strict 2PL: S/X locks held to end of transaction, deadlock detection by WFG cycle.

    Parameters
    ----------
    store:
        The shared data store.
    deadlock_victim:
        ``"requester"`` (default) aborts the transaction whose wait would
        create a cycle; ``"youngest"`` aborts the most recently started
        transaction on the cycle (the requester retries its wait).
    """

    name = "strict-2pl"

    def __init__(
        self,
        store: DataStore,
        deadlock_victim: str = "requester",
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(store, metrics=metrics)
        if deadlock_victim not in ("requester", "youngest"):
            raise ValueError("deadlock_victim must be 'requester' or 'youngest'")
        self.deadlock_victim = deadlock_victim
        self._locks: Dict[str, LockEntry] = {}
        self._wait_for = WaitForGraph()
        self._start_order: Dict[int, int] = {}
        self._next_start = 0
        self.deadlocks_detected = 0
        #: transactions this protocol has decided must abort (victim != requester);
        #: the executor polls :meth:`must_abort` to act on it.
        self._doomed: Set[int] = set()

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_begin(self, txn_id: int) -> None:
        self._start_order[txn_id] = self._next_start
        self._next_start += 1

    def on_read(self, txn_id: int, key: str) -> Decision:
        return self._acquire(txn_id, key, LockMode.SHARED)

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        return self._acquire(txn_id, key, LockMode.EXCLUSIVE)

    def on_commit(self, txn_id: int) -> Decision:
        if txn_id in self._doomed:
            self._doomed.discard(txn_id)
            return Decision.abort(
                "chosen as deadlock victim", code=ABORT_LOCK_DEADLOCK
            )
        return Decision.grant()

    def on_finished(self, txn_id: int) -> None:
        for entry in self._locks.values():
            entry.release(txn_id)
        self._wait_for.remove_transaction(txn_id)
        self._doomed.discard(txn_id)

    # ------------------------------------------------------------------
    # lock acquisition and deadlock handling
    # ------------------------------------------------------------------
    def _acquire(self, txn_id: int, key: str, mode: LockMode) -> Decision:
        if txn_id in self._doomed:
            self._doomed.discard(txn_id)
            return Decision.abort(
                "chosen as deadlock victim", code=ABORT_LOCK_DEADLOCK
            )
        entry = self._locks.setdefault(key, LockEntry())
        if entry.compatible(txn_id, mode):
            entry.grant(txn_id, mode)
            self._wait_for.clear_waits(txn_id)
            return Decision.grant()

        blockers = entry.conflicting_holders(txn_id, mode)
        for blocker in blockers:
            self._wait_for.add_wait(txn_id, blocker)
        # only cycles through the requester matter here (its wait edges
        # are the only new ones), and the targeted search keeps blocking
        # O(reachable waits) instead of O(every parked transaction)
        cycle = self._wait_for.deadlocked_transactions(through=txn_id)
        if cycle and txn_id in cycle:
            self.deadlocks_detected += 1
            self.metrics.incr("2pl.deadlocks")
            victim = self._choose_victim(cycle, requester=txn_id)
            if victim == txn_id:
                self._wait_for.remove_transaction(txn_id)
                return Decision.abort(
                    f"deadlock on {key!r}",
                    code=ABORT_LOCK_DEADLOCK,
                    key=key,
                    conflict=sorted(blockers),
                )
            self._doomed.add(victim)
            # The requester keeps waiting; the victim learns of its doom at
            # its next request — which a polling caller issues on a timer,
            # but an event-driven caller must be told to issue now.
            self.request_wake(victim)
            return Decision.block(blocked_on=tuple(blockers), reason=f"lock on {key!r}")
        return Decision.block(blocked_on=tuple(blockers), reason=f"lock on {key!r}")

    def _choose_victim(self, cycle: List[int], requester: int) -> int:
        if self.deadlock_victim == "requester":
            return requester
        return max(cycle, key=lambda t: self._start_order.get(t, -1))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def must_abort(self, txn_id: int) -> bool:
        """Whether the protocol has marked this transaction as a deadlock victim."""
        return txn_id in self._doomed

    def locks_held(self, txn_id: int) -> Dict[str, LockMode]:
        """The locks currently held by a transaction (for tests and debugging)."""
        return {
            key: entry.holders[txn_id]
            for key, entry in self._locks.items()
            if txn_id in entry.holders
        }

    def lock_holders(self, key: str) -> Dict[int, LockMode]:
        """The current holders of a key's lock."""
        entry = self._locks.get(key)
        return dict(entry.holders) if entry else {}
