"""The shared protocol registry: one name -> factory map for the repo.

Before ISSUE 4 the registry lived in ``benchmarks/conftest.py`` (itself
the merger of three drifting per-benchmark dicts).  The conformance
harness (:mod:`repro.harness`) needs the same map from library code — a
protocol registered here is automatically covered by the differential
matrix, the fault-injection fuzzer, and the oracle stack — so the
registry now lives in the engine and the benchmarks import it.

Each entry also declares the protocol's **guarantee**, which selects the
oracles the harness holds it to:

* ``serializable`` — single-version conflict-serializability: the
  committed conflict graph must be acyclic, and so must the MVSG of the
  history lifted to single-version reads (the oracle-agreement guard).
* ``one-copy-serializable`` — multi-version: the MVSG of the actual
  reads-from relation and version order must be acyclic.
* ``snapshot-isolation`` — the MVSG verdict is advisory (write skew is
  admitted by design); only SI-level invariants (no lost updates,
  consistent snapshots) are required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.engine.protocols.base import ConcurrencyControl, SerialProtocol
from repro.engine.protocols.deterministic import (
    DeterministicEpoch,
    DeterministicSlotted,
)
from repro.engine.protocols.mvto import MultiVersionTimestampOrdering
from repro.engine.protocols.occ import OptimisticConcurrencyControl
from repro.engine.protocols.sgt import SerializationGraphTesting
from repro.engine.protocols.snapshot_isolation import SnapshotIsolation
from repro.engine.protocols.timestamp_ordering import TimestampOrdering
from repro.engine.protocols.two_phase_locking import StrictTwoPhaseLocking

#: the guarantee levels a protocol may declare
SERIALIZABLE = "serializable"
ONE_COPY_SERIALIZABLE = "one-copy-serializable"
SNAPSHOT_ISOLATION = "snapshot-isolation"

GUARANTEES = (SERIALIZABLE, ONE_COPY_SERIALIZABLE, SNAPSHOT_ISOLATION)

ProtocolFactory = Callable[[Any], ConcurrencyControl]


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered protocol: factory plus conformance metadata."""

    name: str
    factory: ProtocolFactory
    guarantee: str
    #: True when the protocol reads from version chains (its history is
    #: judged by the MVSG, never by the single-version conflict graph)
    multiversion: bool = False

    def __post_init__(self) -> None:
        if self.guarantee not in GUARANTEES:
            raise ValueError(
                f"unknown guarantee {self.guarantee!r}; expected one of {GUARANTEES}"
            )


def _occ_parallel(store: Any) -> OptimisticConcurrencyControl:
    return OptimisticConcurrencyControl(store, validation="parallel")


def _serializable_si(store: Any) -> SnapshotIsolation:
    return SnapshotIsolation(store, serializable=True)


def _entries(*entries: ProtocolEntry) -> Dict[str, ProtocolEntry]:
    return {entry.name: entry for entry in entries}


#: every registered protocol, by report name — the harness's matrix axis
PROTOCOL_ENTRIES: Dict[str, ProtocolEntry] = _entries(
    ProtocolEntry("serial", SerialProtocol, SERIALIZABLE),
    ProtocolEntry("strict-2pl", StrictTwoPhaseLocking, SERIALIZABLE),
    ProtocolEntry("sgt", SerializationGraphTesting, SERIALIZABLE),
    ProtocolEntry("timestamp", TimestampOrdering, SERIALIZABLE),
    ProtocolEntry("occ", OptimisticConcurrencyControl, SERIALIZABLE),
    ProtocolEntry("occ-parallel", _occ_parallel, SERIALIZABLE),
    ProtocolEntry("mvto", MultiVersionTimestampOrdering, ONE_COPY_SERIALIZABLE, multiversion=True),
    ProtocolEntry("si", SnapshotIsolation, SNAPSHOT_ISOLATION, multiversion=True),
    ProtocolEntry("serializable-si", _serializable_si, ONE_COPY_SERIALIZABLE, multiversion=True),
    # deterministic (Calvin-style) family: registered entries are judged
    # by the standard serializable oracles PLUS the deterministic oracle
    # (commit order == epoch order, zero protocol-issued aborts) keyed
    # off their ``deterministic`` class flag
    ProtocolEntry("det-epoch", DeterministicEpoch, SERIALIZABLE),
    ProtocolEntry("det-slot", DeterministicSlotted, SERIALIZABLE),
)

#: plain name -> factory view (what the benchmarks historically used)
PROTOCOL_FACTORIES: Dict[str, ProtocolFactory] = {
    name: entry.factory for name, entry in PROTOCOL_ENTRIES.items()
}


def protocol_names() -> Tuple[str, ...]:
    """The registered protocol names, in registration order."""
    return tuple(PROTOCOL_ENTRIES)


def get_entry(name: str) -> ProtocolEntry:
    """Look up a registered protocol, with a helpful error."""
    try:
        return PROTOCOL_ENTRIES[name]
    except KeyError:
        known = ", ".join(PROTOCOL_ENTRIES)
        raise KeyError(f"unknown protocol {name!r}; registered: {known}") from None
