"""Multi-version timestamp ordering (MVTO).

The multi-version sibling of basic T/O, built on
:class:`~repro.engine.mvstore.MultiVersionDataStore`:

* every transaction receives a unique start timestamp ``ts(T)``;
* **readers never block and never abort** — a read of ``x`` is served
  from the newest committed version with ``begin_ts <= ts(T)``, and the
  protocol records ``rts`` (the largest reader timestamp) on that
  version;
* **writers validate against read timestamps** — a write of ``x`` by
  ``T`` will install a version at ``ts(T)``; if the version it would
  supersede (the one visible at ``ts(T)``) has already been read by a
  transaction *younger* than ``T`` (``rts > ts(T)``), installing the
  version would retroactively invalidate that read, so ``T`` aborts.
  The check runs at write time (fail fast) and again at commit (the
  decisive check, because reads by younger transactions may arrive while
  ``T``'s writes sit in its buffer).

Because versions reach the store only at commit, readers only ever
observe committed versions (no cascading aborts), and the commit-time
validation closes the classic deferred-write race: if a younger reader
observed the *old* version while an older writer was still uncommitted,
the writer — not the reader — pays with an abort.  The committed history
is one-copy serializable in timestamp order; the MVSG checker
(:mod:`repro.analysis.mvsg`) verifies exactly that, version by version.

The shared multi-version machinery (snapshot leases, GC cadence, MVSG
bookkeeping) lives in :class:`~repro.engine.protocols.multiversion.
MultiVersionConcurrencyControl`; this module adds only the timestamp
policy and the writer validation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.engine.metrics import Metrics
from repro.engine.mvstore import VersionedRead
from repro.engine.protocols.base import Decision
from repro.engine.reasons import ABORT_MVTO_READ_INVALIDATION
from repro.engine.protocols.multiversion import MultiVersionConcurrencyControl
from repro.engine.storage import StorageError


class MultiVersionTimestampOrdering(MultiVersionConcurrencyControl):
    """MVTO: snapshot reads at the start timestamp, writer validation."""

    name = "mvto"

    def __init__(
        self,
        store: Any,
        metrics: Optional[Metrics] = None,
        gc_interval: int = 128,
    ) -> None:
        super().__init__(store, metrics=metrics, gc_interval=gc_interval)
        self._txn_ts: Dict[int, int] = {}
        #: start above any version the store already carries, so a store
        #: reused across batches never collides with the new installs
        self._next_ts = self.store.max_timestamp() + 1
        #: (key, begin_ts) -> largest timestamp that read that version
        self._version_rts: Dict[Any, int] = {}
        self.write_validation_failures = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_begin(self, txn_id: int) -> None:
        self._txn_ts[txn_id] = self._next_ts
        self._next_ts += 1

    def timestamp(self, txn_id: int) -> int:
        """The start timestamp assigned to an active transaction."""
        return self._txn_ts[txn_id]

    # ------------------------------------------------------------------
    # reads: always granted, served from the version chain
    # ------------------------------------------------------------------
    def on_read(self, txn_id: int, key: str) -> Decision:
        return Decision.grant()

    def read_value(self, txn_id: int, key: str) -> Any:
        buffer = self.write_buffers.get(txn_id, {})
        if key in buffer:
            return buffer[key]
        ts = self._txn_ts[txn_id]
        version = self.store.read_as_of(key, ts)
        rts_key = (key, version.begin_ts)
        if ts > self._version_rts.get(rts_key, -1):
            self._version_rts[rts_key] = ts
        self.mv_reads.append(VersionedRead(txn_id, key, version.writer))
        return version.value

    # ------------------------------------------------------------------
    # writes: validate against read timestamps
    # ------------------------------------------------------------------
    def _write_invalidated_by(self, txn_id: int, key: str) -> Optional[int]:
        """The rts that dooms a write of ``key`` by ``txn_id``, if any."""
        ts = self._txn_ts[txn_id]
        try:
            version = self.store.read_as_of(key, ts)
        except StorageError:
            return None  # no version visible at ts: the write supersedes nothing
        rts = self._version_rts.get((key, version.begin_ts), -1)
        return rts if rts > ts else None

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        rts = self._write_invalidated_by(txn_id, key)
        if rts is not None:
            self.write_validation_failures += 1
            self.metrics.incr("mvto.write_validation_failures")
            return Decision.abort(
                f"mvto: version of {key!r} visible at ts {self._txn_ts[txn_id]} "
                f"was already read at ts {rts}",
                code=ABORT_MVTO_READ_INVALIDATION,
                key=key,
            )
        return Decision.grant()

    def on_commit(self, txn_id: int) -> Decision:
        # The decisive validation: a younger reader may have observed the
        # superseded version while this writer's versions sat in its
        # buffer.  The write-time check only fails fast.
        for key in self.write_buffers.get(txn_id, ()):
            rts = self._write_invalidated_by(txn_id, key)
            if rts is not None:
                self.write_validation_failures += 1
                self.metrics.incr("mvto.write_validation_failures")
                return Decision.abort(
                    f"mvto: commit validation failed on {key!r} "
                    f"(read at ts {rts} > ts {self._txn_ts[txn_id]})",
                    code=ABORT_MVTO_READ_INVALIDATION,
                    key=key,
                )
        return Decision.grant()

    def install_writes(self, txn_id: int) -> None:
        ts = self._txn_ts[txn_id]
        for key, value in self.write_buffers[txn_id].items():
            self.store.install(key, value, ts, writer=txn_id)
            self._record_install(key, ts, txn_id)

    # ------------------------------------------------------------------
    # timestamp policies (the multi-version base consumes these)
    # ------------------------------------------------------------------
    def _readonly_timestamp(self) -> int:
        """One tick below every active or future writer.

        MVTO installs versions at the writer's *start* timestamp, so a
        timestamp is stable only once every transaction at or below it
        has finished.
        """
        return min(self._txn_ts.values(), default=self._next_ts) - 1

    def _active_floor(self) -> int:
        return min(self._txn_ts.values(), default=self._next_ts)

    def _after_gc(self, watermark: Any) -> None:
        # prune rts entries of collected versions: no writer below the
        # watermark can ever validate against them again
        surviving = {
            (key, record.begin_ts)
            for key in self.store.keys()
            for record in self.store.version_chain(key)
        }
        self._version_rts = {
            rts_key: rts
            for rts_key, rts in self._version_rts.items()
            if rts_key in surviving
        }

    def on_finished(self, txn_id: int) -> None:
        self._txn_ts.pop(txn_id, None)
        super().on_finished(txn_id)
