"""Serialization graph testing (SGT).

The most permissive of the classical conflict-based protocols: every
request is granted immediately, and the scheduler maintains the
serialization (conflict) graph over live and committed transactions.  A
request whose conflict edges would close a cycle is refused and its
transaction aborted, which keeps the graph acyclic and hence the history
conflict-serializable.

SGT is the natural online counterpart of the serialization scheduler of
Theorem 3: it accepts strictly more interleavings than two-phase locking
(no waits are ever introduced, only the conflicts that would actually
break serializability are punished), at the cost of remembering
"which transaction read data first from which" — exactly the memory the
paper observes a lock-based scheduler cannot have (Section 5.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.reasons import ABORT_SG_CYCLE, ABORT_WAIT_DEADLOCK
from repro.engine.storage import DataStore
from repro.util.graphs import DiGraph, WaitForGraph


class SerializationGraphTesting(ConcurrencyControl):
    """Grant everything; abort the requester if its conflicts would close a cycle."""

    name = "sgt"

    def __init__(
        self,
        store: DataStore,
        prune_committed: bool = True,
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(store, metrics=metrics)
        #: conflict graph over transactions; nodes are removed only once it is
        #: safe to forget them (committed with no live predecessors).
        self.graph = DiGraph()
        self.prune_committed = prune_committed
        self._readers: Dict[str, Set[int]] = {}
        self._writers: Dict[str, Set[int]] = {}
        self.cycles_prevented = 0
        #: waits caused by pending (uncommitted, buffered) writes; a cycle here
        #: is a deadlock and aborts the requester.
        self._wait_for = WaitForGraph()

    def on_begin(self, txn_id: int) -> None:
        self.graph.add_node(txn_id)

    # ------------------------------------------------------------------
    # conflict bookkeeping
    # ------------------------------------------------------------------
    def _edges_for(self, txn_id: int, key: str, is_write: bool) -> List[Tuple[int, int]]:
        """The conflict edges a granted operation would add (predecessor -> txn)."""
        edges: List[Tuple[int, int]] = []
        for writer in self._writers.get(key, ()):  # rw and ww conflicts
            if writer != txn_id:
                edges.append((writer, txn_id))
        if is_write:
            for reader in self._readers.get(key, ()):  # wr conflicts
                if reader != txn_id:
                    edges.append((reader, txn_id))
        return edges

    def _would_cycle(self, edges: List[Tuple[int, int]]) -> bool:
        trial = self.graph.copy()
        for source, target in edges:
            trial.add_edge(source, target)
        return trial.has_cycle()

    def _apply(self, txn_id: int, key: str, is_write: bool, edges) -> None:
        for source, target in edges:
            self.graph.add_edge(source, target)
        registry = self._writers if is_write else self._readers
        registry.setdefault(key, set()).add(txn_id)

    def _decide(self, txn_id: int, key: str, is_write: bool) -> Decision:
        # A pending (uncommitted, buffered) write by another transaction is a
        # barrier: granting now would let this operation observe or clobber a
        # value the conflict graph assumes it did not.  Wait for the writer;
        # if the wait would close a wait-for cycle, abort the requester.
        pending = self.pending_writers(key, exclude=txn_id)
        if pending:
            for writer in pending:
                self._wait_for.add_wait(txn_id, writer)
            cycle = self._wait_for.deadlocked_transactions()
            if cycle and txn_id in cycle:
                self._wait_for.remove_transaction(txn_id)
                return Decision.abort(
                    f"deadlock waiting for pending write on {key!r}",
                    code=ABORT_WAIT_DEADLOCK,
                    key=key,
                    conflict=pending,
                )
            return Decision.block(
                blocked_on=tuple(pending), reason=f"pending write on {key!r}"
            )
        self._wait_for.clear_waits(txn_id)

        edges = self._edges_for(txn_id, key, is_write)
        if self._would_cycle(edges):
            self.cycles_prevented += 1
            self.metrics.incr("sgt.cycles_prevented")
            return Decision.abort(
                f"serialization-graph cycle on {key!r} ({'write' if is_write else 'read'})",
                code=ABORT_SG_CYCLE,
                key=key,
                conflict=sorted({source for source, _ in edges}),
            )
        self._apply(txn_id, key, is_write, edges)
        return Decision.grant()

    def on_read(self, txn_id: int, key: str) -> Decision:
        return self._decide(txn_id, key, is_write=False)

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        return self._decide(txn_id, key, is_write=True)

    # ------------------------------------------------------------------
    # cleanup
    # ------------------------------------------------------------------
    def on_abort(self, txn_id: int) -> None:
        # An aborted transaction's operations never happened: drop its node
        # and its access records entirely.
        self.graph.remove_node(txn_id)
        for registry in (self._readers, self._writers):
            for key_set in registry.values():
                key_set.discard(txn_id)

    def on_finished(self, txn_id: int) -> None:
        self._wait_for.remove_transaction(txn_id)
        if txn_id in self.committed and self.prune_committed:
            self._prune()

    def _prune(self) -> None:
        """Forget committed transactions with no live predecessors.

        A committed transaction can only contribute to a future cycle if
        some still-active transaction precedes it in the graph; sources
        (no predecessors) that are committed can therefore be removed,
        which keeps the graph small in long runs.
        """
        changed = True
        while changed:
            changed = False
            for node in list(self.graph.nodes()):
                if node in self.committed and self.graph.in_degree(node) == 0:
                    self.graph.remove_node(node)
                    for registry in (self._readers, self._writers):
                        for key_set in registry.values():
                            key_set.discard(node)
                    changed = True
