"""Optimistic concurrency control: both Kung & Robinson validation algorithms.

Transactions run entirely against their private read/write sets (the
*read phase*), then attempt to *validate* at commit: a committing
transaction must be certain that no transaction that committed after it
started wrote anything it read.  Kung & Robinson (1981) give two
algorithms for this backward validation, and this module implements both,
selected by ``OptimisticConcurrencyControl(validation=...)``:

* ``"serial"`` — the paper's first algorithm: validation plus write phase
  form one critical section, so at most one transaction validates at a
  time.  Simple, but the critical section becomes the bottleneck at high
  multiprogramming levels — every committing client queues behind it.
* ``"parallel"`` — the paper's Section 5 refinement: only the assignment
  of a *validation ticket* (and the snapshot of who else is validating)
  happens in the critical section.  The validation checks themselves and
  the write phase run outside it, overlapping with other transactions'
  read phases and with each other.  A validator must then check its read
  set against transactions that committed since it started *and* its
  read+write footprint against the write sets of transactions that were
  mid-validation when it entered the pipeline (their write phases may
  interleave with ours).  The engine kernel drives the pipeline as two
  interactions (``prepare_commit`` then ``commit``), which is what lets
  the discrete-event simulator overlap validation with other clients'
  work and measure the critical-section bottleneck disappearing.

Validation itself is O(|read set|) in both modes, via an **inverted write
index**: a per-key map from key to the commit number of its last
committed writer.  A validator probes only the keys it actually read,
instead of scanning every committed write set — the O(history x
footprint) scan of the original implementation.  The index is exact for
any transaction that started within the last ``history_limit`` commits;
older entries are evicted in bulk (amortised), and a transaction whose
start number predates the eviction floor *aborts conservatively* rather
than risking a false validation pass — the paper's answer to unbounded
old-write-set retention.  The committed-footprint list is kept only for
diagnostics and trimmed amortised, never rebuilt per commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.reasons import (
    ABORT_OCC_HISTORY_OVERFLOW,
    ABORT_OCC_PIPELINE_OVERLAP,
    ABORT_OCC_READ_INVALIDATED,
)
from repro.engine.storage import DataStore


@dataclass(frozen=True)
class CommittedFootprint:
    """The write set and commit sequence number of a committed transaction.

    Since the inverted write index took over validation, footprints are
    retained purely for diagnostics (post-mortem conflict inspection);
    they are no longer consulted on the commit path.
    """

    txn_id: int
    write_set: FrozenSet[str]
    commit_number: int


class _Validator:
    """One transaction inside the parallel-validation pipeline."""

    __slots__ = ("txn_id", "ticket", "write_set")

    def __init__(self, txn_id: int, ticket: int, write_set: FrozenSet[str]) -> None:
        self.txn_id = txn_id
        self.ticket = ticket
        self.write_set = write_set


class OptimisticConcurrencyControl(ConcurrencyControl):
    """Backward-validating OCC with serial or parallel (Section 5) validation."""

    name = "occ"

    def __init__(
        self,
        store: DataStore,
        history_limit: int = 10_000,
        metrics: Optional[Metrics] = None,
        validation: str = "serial",
    ) -> None:
        super().__init__(store, metrics=metrics)
        if validation not in ("serial", "parallel"):
            raise ValueError("validation must be 'serial' or 'parallel'")
        self.validation = validation
        if validation == "parallel":
            self.name = "occ-parallel"
            self.two_stage_commit = True
        if history_limit < 1:
            raise ValueError("history_limit must be at least 1")
        #: start number of each active transaction = how many commits it has seen
        self._start_number: Dict[int, int] = {}
        self._read_sets: Dict[int, Set[str]] = {}
        self._commit_number = 0
        #: the inverted write index: key -> commit number of the key's last
        #: committed writer.  Validation probes this per read-set key.
        self._last_writer_commit: Dict[str, int] = {}
        #: key -> txn id of that last committed writer, maintained in
        #: lock-step with the commit-number index purely for abort
        #: attribution (naming the conflicting writer costs one extra
        #: dict write per committed key, never a probe on the pass path)
        self._last_writer_txn: Dict[str, int] = {}
        #: commit numbers at or below the floor may have been evicted from
        #: the index; a transaction that started below the floor cannot
        #: distinguish "no conflicting write" from "conflict evicted" and
        #: must abort conservatively.
        self._index_floor = 0
        #: committed write sets, diagnostics only (see CommittedFootprint)
        self._committed_footprints: List[CommittedFootprint] = []
        self.history_limit = history_limit
        self.validation_failures = 0
        self.conservative_aborts = 0
        # --- parallel-validation pipeline state ---
        self._next_ticket = 0
        #: transactions currently between prepare_commit and commit,
        #: keyed by txn id; the values carry the published write sets that
        #: later entrants must validate against.
        self._validating: Dict[int, _Validator] = {}

    def on_begin(self, txn_id: int) -> None:
        self._start_number[txn_id] = self._commit_number
        self._read_sets[txn_id] = set()

    # ------------------------------------------------------------------
    # read phase: everything is granted
    # ------------------------------------------------------------------
    def on_read(self, txn_id: int, key: str) -> Decision:
        self._read_sets[txn_id].add(key)
        return Decision.grant()

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        return Decision.grant()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _fail(
        self,
        reason: str,
        conservative: bool = False,
        code: Optional[str] = None,
        key: Optional[str] = None,
        conflict: Tuple[int, ...] = (),
    ) -> Decision:
        self.validation_failures += 1
        self.metrics.incr("occ.validation_failures")
        if conservative:
            self.conservative_aborts += 1
            self.metrics.incr("occ.conservative_aborts")
        return Decision.abort(reason, code=code, key=key, conflict=conflict)

    def _validate_against_committed(self, txn_id: int) -> Optional[Decision]:
        """Probe the inverted index for each key the transaction read.

        Returns an ABORT decision on conflict (or when the retained
        history cannot answer exactly), ``None`` when validation passes.
        Cost: one dict probe per read-set key — independent of how many
        transactions have committed.
        """
        start = self._start_number[txn_id]
        if start < self._index_floor:
            # the transaction outlived the retained index history: writes
            # committed in (start, floor] may have been evicted, so a pass
            # cannot be trusted.  Abort conservatively (never falsely pass).
            self._validation_probes += 1
            return self._fail(
                f"history_limit overflow: T{txn_id} started at commit "
                f"{start}, before the retained index floor {self._index_floor}",
                conservative=True,
                code=ABORT_OCC_HISTORY_OVERFLOW,
            )
        index = self._last_writer_commit
        read_set = self._read_sets[txn_id]
        # probe cost is charged for the whole read set up front, not up to
        # the first conflict: read sets are unordered, so charging partial
        # scans would make simulated time depend on set iteration order
        # (i.e. on PYTHONHASHSEED) and break cross-process reproducibility
        self._validation_probes += len(read_set)
        for key in read_set:
            last = index.get(key)
            if last is not None and last > start:
                writer = self._last_writer_txn.get(key)
                return self._fail(
                    f"validation failed: {key!r} overwritten at commit "
                    f"{last} > T{txn_id}'s start number {start}"
                    + (f" by T{writer}" if writer is not None else ""),
                    code=ABORT_OCC_READ_INVALIDATED,
                    key=key,
                    conflict=(writer,) if writer is not None else (),
                )
        return None

    def _validate_against_validators(
        self, txn_id: int, validators: List[_Validator]
    ) -> Optional[Decision]:
        """Check the paper's parallel-validation condition (3).

        A validator's read *and* write sets must be disjoint from the
        write set of every transaction that was mid-validation when this
        one entered the pipeline: their write phases may interleave with
        ours, so both rw and ww overlaps are unsafe.
        """
        if not validators:
            return None
        footprint = self._read_sets[txn_id] | set(self.write_buffers.get(txn_id, ()))
        # like the index probes: the full snapshot's cost is charged up
        # front so simulated time never depends on set iteration order
        self._validation_probes += sum(
            min(len(other.write_set), len(footprint)) for other in validators
        )
        for other in validators:
            overlap = other.write_set & footprint
            if overlap:
                return self._fail(
                    f"parallel validation failed against concurrently "
                    f"validating T{other.txn_id} on {sorted(overlap)}",
                    code=ABORT_OCC_PIPELINE_OVERLAP,
                    key=min(overlap),
                    conflict=(other.txn_id,),
                )
        return None

    # ------------------------------------------------------------------
    # commit: serial = one critical section; parallel = pipeline
    # ------------------------------------------------------------------
    def _validate(
        self, txn_id: int, validators: Optional[List[_Validator]] = None
    ) -> Optional[Decision]:
        """The full validation sequence: committed index, then pipeline.

        Shared by the prepare stage and the unprepared-commit fallback so
        the two driving styles can never diverge.
        """
        decision = self._validate_against_committed(txn_id)
        if decision is None and validators:
            decision = self._validate_against_validators(txn_id, validators)
        return decision

    def on_prepare_commit(self, txn_id: int) -> Optional[Decision]:
        if self.validation != "parallel":
            return None
        # critical section (atomic here): snapshot the concurrent
        # validators and take a ticket; the checks below conceptually run
        # outside it, overlapping with other transactions' read phases.
        validators = [v for v in self._validating.values() if v.txn_id != txn_id]
        decision = self._validate(txn_id, validators)
        if decision is not None:
            return decision
        ticket = self._next_ticket
        self._next_ticket += 1
        write_set = frozenset(self.write_buffers.get(txn_id, ()))
        self._validating[txn_id] = _Validator(txn_id, ticket, write_set)
        self.metrics.incr("occ.pipeline_entries")
        return Decision.grant()

    def on_commit(self, txn_id: int) -> Decision:
        if self.validation == "parallel":
            if self._validating.pop(txn_id, None) is None:
                # driven without a prepare stage (direct protocol use or a
                # polling caller): validate in one step, like serial mode
                # but still against any concurrently validating writers.
                decision = self._validate(txn_id, list(self._validating.values()))
                if decision is not None:
                    return decision
            # prepared transactions already validated; later entrants have
            # been checking themselves against our published write set.
        else:
            decision = self._validate(txn_id)
            if decision is not None:
                return decision
        self._record_commit(txn_id)
        return Decision.grant()

    def _record_commit(self, txn_id: int) -> None:
        """Write phase bookkeeping: bump the index and the diagnostics list.

        The base class installs the buffered writes into the store right
        after ``on_commit`` returns GRANT.
        """
        self._commit_number += 1
        number = self._commit_number
        write_set = frozenset(self.write_buffers.get(txn_id, ()))
        index = self._last_writer_commit
        writers = self._last_writer_txn
        for key in write_set:
            index[key] = number
            writers[key] = txn_id
        self._committed_footprints.append(
            CommittedFootprint(txn_id, write_set, number)
        )
        self._maybe_evict_index()
        self._maybe_trim_footprints()

    def on_abort(self, txn_id: int) -> None:
        self._validating.pop(txn_id, None)

    def on_finished(self, txn_id: int) -> None:
        self._start_number.pop(txn_id, None)
        self._read_sets.pop(txn_id, None)
        self._validating.pop(txn_id, None)
        # horizon-advance trigger: once the oldest active transaction
        # moves past the oldest retained footprint, the diagnostics list
        # can shrink.  The min() is O(active transactions) — flat in
        # history length — and the rebuild runs only when it can shrink.
        footprints = self._committed_footprints
        if len(footprints) > self.history_limit:
            horizon = self._active_horizon()
            if horizon > footprints[0].commit_number:
                self._trim_history(horizon)

    # ------------------------------------------------------------------
    # housekeeping (all amortised; nothing here rebuilds per commit)
    # ------------------------------------------------------------------
    def _active_horizon(self) -> int:
        """The smallest start number any active transaction still holds."""
        if not self._start_number:
            return self._commit_number
        return min(self._start_number.values())

    def _maybe_evict_index(self) -> None:
        """Bulk-evict index entries older than ``history_limit`` commits.

        Runs a full index sweep only once every ``history_limit`` commits,
        so the amortised per-commit cost is O(index size / history_limit).
        Advancing the floor is what forces transactions older than the
        retained window into the conservative-abort path.
        """
        if self._commit_number - self._index_floor < 2 * self.history_limit:
            return
        floor = self._commit_number - self.history_limit
        index = self._last_writer_commit
        for key in [key for key, number in index.items() if number <= floor]:
            del index[key]
            self._last_writer_txn.pop(key, None)
        self._index_floor = floor

    def _maybe_trim_footprints(self) -> None:
        """Size-triggered diagnostics trim: only when 2x over the limit."""
        if len(self._committed_footprints) > 2 * self.history_limit:
            self._trim_history(self._active_horizon())

    def _trim_history(self, horizon: Optional[int] = None) -> None:
        """Drop footprints no active transaction could ever conflict with.

        Kept for diagnostics callers; the commit path only reaches it
        through the amortised triggers above.
        """
        if horizon is None:
            horizon = self._active_horizon()
        self._committed_footprints = [
            f for f in self._committed_footprints if f.commit_number > horizon
        ][-self.history_limit :]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def active_read_set(self, txn_id: int) -> Set[str]:
        """The read set accumulated so far by an active transaction."""
        return set(self._read_sets.get(txn_id, set()))

    def last_writer_commit(self, key: str) -> Optional[int]:
        """The commit number of ``key``'s last committed writer, if retained."""
        return self._last_writer_commit.get(key)

    def validating_transactions(self) -> Tuple[int, ...]:
        """Transactions currently inside the validation pipeline, by ticket."""
        return tuple(
            v.txn_id for v in sorted(self._validating.values(), key=lambda v: v.ticket)
        )
