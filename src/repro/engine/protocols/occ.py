"""Optimistic concurrency control (Kung & Robinson style validation).

Transactions run entirely against their private read/write sets (the
*read phase*), then attempt to *validate* at commit: a committing
transaction is checked against every transaction that committed since it
started.  If any of those committed write sets intersects the validator's
read set, the validator aborts and restarts; otherwise its writes are
installed (the *write phase*).

This is backward validation with the serial-validation simplification:
validation + write phase are treated as a critical section, which is
exactly the first algorithm of Kung & Robinson (1981) and is consistent
with the paper's single centralized scheduler model (Section 6).  OCC is
the natural protocol to include here because the same H. T. Kung proposed
it as the non-locking alternative the optimality framework motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.storage import DataStore


@dataclass(frozen=True)
class CommittedFootprint:
    """The write set and commit sequence number of a committed transaction."""

    txn_id: int
    write_set: FrozenSet[str]
    commit_number: int


class OptimisticConcurrencyControl(ConcurrencyControl):
    """Backward-validating OCC: read freely, validate read sets at commit."""

    name = "occ"

    def __init__(
        self,
        store: DataStore,
        history_limit: int = 10_000,
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(store, metrics=metrics)
        #: start number of each active transaction = how many commits it has seen
        self._start_number: Dict[int, int] = {}
        self._read_sets: Dict[int, Set[str]] = {}
        self._commit_number = 0
        self._committed_footprints: List[CommittedFootprint] = []
        self.history_limit = history_limit
        self.validation_failures = 0

    def on_begin(self, txn_id: int) -> None:
        self._start_number[txn_id] = self._commit_number
        self._read_sets[txn_id] = set()

    # ------------------------------------------------------------------
    # read phase: everything is granted
    # ------------------------------------------------------------------
    def on_read(self, txn_id: int, key: str) -> Decision:
        self._read_sets[txn_id].add(key)
        return Decision.grant()

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        return Decision.grant()

    # ------------------------------------------------------------------
    # validation + write phase
    # ------------------------------------------------------------------
    def on_commit(self, txn_id: int) -> Decision:
        start = self._start_number[txn_id]
        read_set = self._read_sets[txn_id]
        for footprint in self._committed_footprints:
            if footprint.commit_number <= start:
                continue
            overlap = footprint.write_set & read_set
            if overlap:
                self.validation_failures += 1
                self.metrics.incr("occ.validation_failures")
                return Decision.abort(
                    f"validation failed against T{footprint.txn_id} on {sorted(overlap)}"
                )
        # Validation succeeded: record the footprint; the base class installs
        # the buffered writes right after this returns GRANT.
        self._commit_number += 1
        write_set = frozenset(self.write_buffers.get(txn_id, {}))
        self._committed_footprints.append(
            CommittedFootprint(txn_id, write_set, self._commit_number)
        )
        self._trim_history()
        return Decision.grant()

    def on_finished(self, txn_id: int) -> None:
        self._start_number.pop(txn_id, None)
        self._read_sets.pop(txn_id, None)

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    def _trim_history(self) -> None:
        """Drop footprints no active transaction could ever conflict with."""
        if not self._start_number:
            horizon = self._commit_number
        else:
            horizon = min(self._start_number.values())
        self._committed_footprints = [
            f for f in self._committed_footprints if f.commit_number > horizon
        ][-self.history_limit :]

    def active_read_set(self, txn_id: int) -> Set[str]:
        """The read set accumulated so far by an active transaction."""
        return set(self._read_sets.get(txn_id, set()))
