"""Basic timestamp ordering (T/O).

Each transaction receives a unique start timestamp; the protocol forces
every conflict to respect timestamp order by rejecting (aborting) the
requester otherwise.  The rules are the classical ones:

* read(``x``) by ``T`` with ``ts(T) < wts(x)`` — too late, abort ``T``;
  otherwise grant and set ``rts(x) = max(rts(x), ts(T))``.
* write(``x``) by ``T`` with ``ts(T) < rts(x)`` or ``ts(T) < wts(x)`` —
  abort ``T`` (the Thomas-write-rule variant that silently skips obsolete
  writes can be enabled with ``thomas_write_rule=True``); otherwise grant
  and set ``wts(x) = ts(T)``.

Timestamps of restarted transactions are re-drawn, so a repeatedly
aborted transaction eventually becomes the newest and wins.  Because
writes are buffered until commit, aborted transactions never dirty the
store, and the committed history is serializable in timestamp order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.engine.metrics import Metrics
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.reasons import ABORT_TO_READ_TOO_LATE, ABORT_TO_WRITE_TOO_LATE
from repro.engine.storage import DataStore


@dataclass
class KeyTimestamps:
    """The read/write timestamps of one key."""

    read_ts: int = -1
    write_ts: int = -1


class TimestampOrdering(ConcurrencyControl):
    """Basic timestamp ordering with optional Thomas write rule."""

    name = "timestamp-ordering"

    def __init__(
        self,
        store: DataStore,
        thomas_write_rule: bool = False,
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(store, metrics=metrics)
        self.thomas_write_rule = thomas_write_rule
        self._timestamps: Dict[str, KeyTimestamps] = {}
        self._txn_ts: Dict[int, int] = {}
        self._next_ts = 0
        #: writes skipped by the Thomas write rule, for statistics
        self.skipped_writes = 0

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_begin(self, txn_id: int) -> None:
        self._txn_ts[txn_id] = self._next_ts
        self._next_ts += 1

    def timestamp(self, txn_id: int) -> int:
        """The start timestamp assigned to a transaction."""
        return self._txn_ts[txn_id]

    def _key_ts(self, key: str) -> KeyTimestamps:
        return self._timestamps.setdefault(key, KeyTimestamps())

    def _older_pending_writers(self, txn_id: int, key: str) -> list:
        """Pending (uncommitted) writers of ``key`` with a smaller timestamp.

        With deferred writes, a reader whose timestamp exceeds a pending
        writer's must wait for that writer to commit, otherwise it would
        observe the older committed version and violate timestamp order.
        Waits always point from younger to older timestamps, so they can
        never form a cycle.
        """
        ts = self._txn_ts[txn_id]
        return [
            writer
            for writer in self.pending_writers(key, exclude=txn_id)
            if writer in self._txn_ts and self._txn_ts[writer] < ts
        ]

    def on_read(self, txn_id: int, key: str) -> Decision:
        ts = self._txn_ts[txn_id]
        key_ts = self._key_ts(key)
        if ts < key_ts.write_ts:
            return Decision.abort(
                f"read too late: ts({txn_id})={ts} < wts({key!r})={key_ts.write_ts}",
                code=ABORT_TO_READ_TOO_LATE,
                key=key,
            )
        older = self._older_pending_writers(txn_id, key)
        if older:
            return Decision.block(
                blocked_on=tuple(older), reason=f"uncommitted older write on {key!r}"
            )
        key_ts.read_ts = max(key_ts.read_ts, ts)
        return Decision.grant()

    def on_write(self, txn_id: int, key: str, value: Any) -> Decision:
        ts = self._txn_ts[txn_id]
        key_ts = self._key_ts(key)
        older = self._older_pending_writers(txn_id, key)
        if older:
            return Decision.block(
                blocked_on=tuple(older), reason=f"uncommitted older write on {key!r}"
            )
        if ts < key_ts.read_ts:
            return Decision.abort(
                f"write too late: ts({txn_id})={ts} < rts({key!r})={key_ts.read_ts}",
                code=ABORT_TO_WRITE_TOO_LATE,
                key=key,
            )
        if ts < key_ts.write_ts:
            if self.thomas_write_rule:
                # Obsolete write: skip it silently (do not buffer), but grant.
                self.skipped_writes += 1
                self.metrics.incr("to.skipped_writes")
                return Decision.grant_without_effect("Thomas write rule")
            return Decision.abort(
                f"write too late: ts({txn_id})={ts} < wts({key!r})={key_ts.write_ts}",
                code=ABORT_TO_WRITE_TOO_LATE,
                key=key,
            )
        key_ts.write_ts = ts
        return Decision.grant()

    def on_finished(self, txn_id: int) -> None:
        self._txn_ts.pop(txn_id, None)
