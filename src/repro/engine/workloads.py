"""Workload generators for the engine and the simulator.

Each generator has two forms:

* ``*_workload(...)`` returns ``(initial_data, specs)`` — a concrete batch
  of :class:`~repro.engine.operations.TransactionSpec` for the untimed
  executor;
* ``*_generator(...)`` returns ``(initial_data, generator)`` where
  ``generator(rng)`` produces one fresh transaction per call — the form
  the discrete-event :class:`~repro.engine.simulator.Simulator` consumes.

The banking workload reproduces the Section 2 example at scale: transfers
between accounts conditioned on sufficient funds, withdrawals that bump an
audit counter, and audit transactions that recompute the running total —
so the integrity constraint ``sum(accounts) + withdrawn == initial total``
can be asserted after any serializable execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.operations import (
    Operation,
    TransactionSpec,
    increment_op,
    read_op,
    update_op,
    write_op,
)

#: A workload generator: draws one transaction using the supplied RNG.
TransactionGenerator = Callable[[random.Random], TransactionSpec]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters shared by the synthetic workloads."""

    num_keys: int = 64
    operations_per_transaction: int = 4
    read_fraction: float = 0.5
    hotspot_fraction: float = 0.1
    hotspot_probability: float = 0.75
    zipf_theta: float = 0.9
    initial_value: int = 100
    seed: int = 0

    def key_names(self) -> List[str]:
        return [f"k{i}" for i in range(self.num_keys)]

    def initial_data(self) -> Dict[str, int]:
        return {name: self.initial_value for name in self.key_names()}


# ----------------------------------------------------------------------
# banking (the Section 2 example, scaled up)
# ----------------------------------------------------------------------


def banking_initial_data(num_accounts: int = 16, balance: int = 100) -> Dict[str, int]:
    """Account balances plus the audit total ``S`` and withdrawal counter ``C``."""
    data = {f"acct{i}": balance for i in range(num_accounts)}
    data["S"] = balance * num_accounts
    data["C"] = 0
    return data


def banking_transfer(source: str, target: str, amount: int) -> TransactionSpec:
    """Transfer ``amount`` from ``source`` to ``target`` if funds suffice (paper's T1)."""

    def credit(reads: Dict[str, Any]) -> Any:
        return reads[target] + amount if reads[source] >= amount else reads[target]

    def debit(reads: Dict[str, Any]) -> Any:
        return reads[source] - amount if reads[source] >= amount else reads[source]

    return TransactionSpec(
        [read_op(source), update_op(target, credit), update_op(source, debit)],
        name="transfer",
    )


def banking_withdraw(account: str, amount: int) -> TransactionSpec:
    """Withdraw ``amount`` from ``account`` (if funded) and bump the counter (paper's T2)."""

    def debit(reads: Dict[str, Any]) -> Any:
        return reads[account] - amount if reads[account] >= amount else reads[account]

    def bump(reads: Dict[str, Any]) -> Any:
        return reads["C"] + 1 if reads[account] >= amount else reads["C"]

    return TransactionSpec(
        [update_op(account, debit), update_op("C", bump)], name="withdraw"
    )


def banking_audit(num_accounts: int) -> TransactionSpec:
    """Recompute the audit total over all accounts and reset the counter (paper's T3)."""
    accounts = [f"acct{i}" for i in range(num_accounts)]
    operations: List[Operation] = [read_op(a) for a in accounts]

    def total(reads: Dict[str, Any]) -> Any:
        return sum(reads[a] for a in accounts)

    operations.append(update_op("S", total))
    operations.append(write_op("C", 0))
    return TransactionSpec(operations, name="audit")


def banking_generator(
    num_accounts: int = 16,
    transfer_amount: int = 10,
    withdraw_amount: int = 5,
    audit_probability: float = 0.1,
    withdraw_probability: float = 0.3,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """The banking workload in generator form (for the simulator)."""
    initial = banking_initial_data(num_accounts)

    def generate(rng: random.Random) -> TransactionSpec:
        roll = rng.random()
        if roll < audit_probability:
            return banking_audit(num_accounts)
        if roll < audit_probability + withdraw_probability:
            account = f"acct{rng.randrange(num_accounts)}"
            return banking_withdraw(account, withdraw_amount)
        source = rng.randrange(num_accounts)
        target = rng.randrange(num_accounts)
        while target == source:
            target = rng.randrange(num_accounts)
        return banking_transfer(f"acct{source}", f"acct{target}", transfer_amount)

    return initial, generate


def banking_workload(
    num_accounts: int = 16,
    num_transactions: int = 50,
    seed: int = 0,
    **kwargs,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of banking transactions (for the untimed executor)."""
    initial, generate = banking_generator(num_accounts, **kwargs)
    rng = random.Random(seed)
    return initial, [generate(rng) for _ in range(num_transactions)]


# ----------------------------------------------------------------------
# synthetic read/write mixes
# ----------------------------------------------------------------------


def _zipf_chooser(
    keys: Sequence[str], theta: float
) -> Callable[[random.Random], str]:
    """A ``rng -> key`` sampler with zipf-distributed rank popularity."""
    weights = [1.0 / ((rank + 1) ** theta) for rank in range(len(keys))]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def choose(rng: random.Random) -> str:
        u = rng.random()
        for index, threshold in enumerate(cumulative):
            if u <= threshold:
                return keys[index]
        return keys[-1]

    return choose


def _mixed_transaction(
    rng: random.Random,
    config: WorkloadConfig,
    choose_key: Callable[[random.Random], str],
    name: str,
) -> TransactionSpec:
    operations: List[Operation] = []
    for _ in range(config.operations_per_transaction):
        key = choose_key(rng)
        if rng.random() < config.read_fraction:
            operations.append(read_op(key))
        else:
            operations.append(increment_op(key))
    return TransactionSpec(operations, name=name)


def uniform_generator(
    config: Optional[WorkloadConfig] = None,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """Uniformly random key choice."""
    config = config or WorkloadConfig()
    keys = config.key_names()

    def choose(rng: random.Random) -> str:
        return keys[rng.randrange(len(keys))]

    return config.initial_data(), lambda rng: _mixed_transaction(
        rng, config, choose, "uniform"
    )


def hotspot_generator(
    config: Optional[WorkloadConfig] = None,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """A small hot set of keys receives most of the accesses."""
    config = config or WorkloadConfig()
    keys = config.key_names()
    hot_count = max(1, int(len(keys) * config.hotspot_fraction))
    hot, cold = keys[:hot_count], keys[hot_count:] or keys[:1]

    def choose(rng: random.Random) -> str:
        pool = hot if rng.random() < config.hotspot_probability else cold
        return pool[rng.randrange(len(pool))]

    return config.initial_data(), lambda rng: _mixed_transaction(
        rng, config, choose, "hotspot"
    )


def zipfian_generator(
    config: Optional[WorkloadConfig] = None,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """Zipf-distributed key popularity with parameter ``zipf_theta``."""
    config = config or WorkloadConfig()
    choose = _zipf_chooser(config.key_names(), config.zipf_theta)
    return config.initial_data(), lambda rng: _mixed_transaction(
        rng, config, choose, "zipfian"
    )


def zipfian_hotspot_generator(
    config: Optional[WorkloadConfig] = None,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """A zipfian hotspot: accesses concentrate on a hot set, zipf *within* it.

    With probability ``hotspot_probability`` a key is drawn from the hot
    set (``hotspot_fraction`` of the keyspace) with zipf-distributed rank
    popularity — so even inside the hot set a few keys dominate, the
    worst case for lock queues and validation conflicts; otherwise a cold
    key is drawn uniformly.  This is the contention profile the kernel
    benchmark uses: it maximises blocking, which is exactly where
    event-driven wakeups beat retry polling.
    """
    config = config or WorkloadConfig()
    keys = config.key_names()
    hot_count = max(1, int(len(keys) * config.hotspot_fraction))
    hot, cold = keys[:hot_count], keys[hot_count:] or keys[:1]
    choose_hot = _zipf_chooser(hot, config.zipf_theta)

    def choose(rng: random.Random) -> str:
        if rng.random() < config.hotspot_probability:
            return choose_hot(rng)
        return cold[rng.randrange(len(cold))]

    return config.initial_data(), lambda rng: _mixed_transaction(
        rng, config, choose, "zipfian-hotspot"
    )


def hotspot_queue_workload(
    num_transactions: int = 1000,
    ops_per_transaction: int = 192,
    num_hot: int = 4,
    num_cold: int = 192,
    hotspot_probability: float = 0.9,
    zipf_theta: float = 0.8,
    seed: int = 0,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """Single-key blind-write transactions queueing on a zipfian hot set.

    The scheduler-benchmark shape: ``hotspot_probability`` of the
    transactions pick one hot key (zipf-distributed popularity inside
    the hot set) and the rest a uniform cold key; each transaction then
    blind-writes its one key ``ops_per_transaction`` times.  A
    single-key footprint means one exclusive lock per transaction,
    taken by the first write — so under 2PL the workload is
    **deadlock-free by construction** (no lock-order inversions, no
    shared-to-exclusive upgrades) and its behaviour is pure queueing:
    deep wait queues on the hot keys, long holder occupancy, zero
    restarts.  At high client counts this is the 90%-parked regime
    where the *scheduler's* per-round cost dominates the engine — which
    is exactly what ``benchmarks/test_bench_sched.py`` measures.
    """
    if num_hot < 1 or num_cold < 1:
        raise ValueError("num_hot and num_cold must be at least 1")
    if ops_per_transaction < 1:
        raise ValueError("ops_per_transaction must be at least 1")
    if not 0.0 <= hotspot_probability <= 1.0:
        raise ValueError("hotspot_probability must be in [0, 1]")
    rng = random.Random(seed)
    hot = [f"h{i}" for i in range(num_hot)]
    cold = [f"c{i}" for i in range(num_cold)]
    choose_hot = _zipf_chooser(hot, zipf_theta)
    specs: List[TransactionSpec] = []
    for index in range(num_transactions):
        if rng.random() < hotspot_probability:
            key = choose_hot(rng)
        else:
            key = cold[rng.randrange(num_cold)]
        specs.append(
            TransactionSpec(
                [write_op(key, j) for j in range(ops_per_transaction)],
                name=f"queue-write-{index}",
            )
        )
    initial = {key: 0 for key in hot + cold}
    return initial, specs


def epoch_batched_workload(
    num_epochs: int = 8,
    epoch_size: int = 8,
    ops_per_transaction: int = 6,
    num_keys: int = 32,
    read_fraction: float = 0.5,
    zipf_theta: float = 0.8,
    seed: int = 0,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """Epoch-shaped batches for the deterministic (Calvin-style) family.

    ``num_epochs * epoch_size`` mixed read/write transactions over a
    zipfian key popularity, emitted in admission order and named
    ``e{epoch}s{slot}`` so traces and digests read directly against the
    sequencer's epoch/slot assignment (admission order *is* list
    order when the batch is run round-robin).  The zipfian skew makes
    cross-transaction key overlap common, which is the regime where the
    deterministic variants differ: ``det-epoch`` drains each batch of
    ``epoch_size`` behind its barrier while ``det-slot`` pipelines the
    same order across epoch boundaries.
    """
    if num_epochs < 1 or epoch_size < 1:
        raise ValueError("num_epochs and epoch_size must be at least 1")
    if ops_per_transaction < 1:
        raise ValueError("ops_per_transaction must be at least 1")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = random.Random(seed)
    keys = [f"k{i}" for i in range(num_keys)]
    choose = _zipf_chooser(keys, zipf_theta)
    specs: List[TransactionSpec] = []
    for epoch in range(num_epochs):
        for slot in range(epoch_size):
            ops = []
            for j in range(ops_per_transaction):
                key = choose(rng)
                if rng.random() < read_fraction:
                    ops.append(read_op(key))
                else:
                    ops.append(write_op(key, epoch * epoch_size + slot + j))
            specs.append(TransactionSpec(ops, name=f"e{epoch}s{slot}"))
    return {key: 0 for key in keys}, specs


def read_mostly_generator(
    config: Optional[WorkloadConfig] = None,
    read_fraction: float = 0.9,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """A read-mostly mix: mostly reads, with updates falling on a zipfian tail.

    Unlike :func:`readonly_heavy_generator` (uniform keys), the rare
    updates here land zipf-distributed — the common production shape
    where a read-dominated service still sees write contention on a few
    hot rows.
    """
    config = config or WorkloadConfig()
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    keys = config.key_names()
    choose_zipf = _zipf_chooser(keys, config.zipf_theta)

    def generate(rng: random.Random) -> TransactionSpec:
        operations: List[Operation] = []
        for _ in range(config.operations_per_transaction):
            if rng.random() < read_fraction:
                operations.append(read_op(keys[rng.randrange(len(keys))]))
            else:
                key = choose_zipf(rng)
                operations.append(increment_op(key))
        return TransactionSpec(operations, name="read-mostly")

    return config.initial_data(), generate


def partitioned_generator(
    config: Optional[WorkloadConfig] = None,
    num_partitions: int = 4,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """Single-partition transactions for sharded execution.

    Keys are named ``p<partition>:k<i>`` and every generated transaction
    confines itself to one partition, so the batch can be executed with
    one protocol instance per shard (see
    :func:`repro.engine.runtime.run_sharded_batch` with a
    :class:`~repro.engine.storage.ShardedDataStore` whose ``shard_of``
    reads the partition prefix).
    """
    config = config or WorkloadConfig()
    if num_partitions < 1:
        raise ValueError("num_partitions must be at least 1")
    per_partition = max(1, config.num_keys // num_partitions)
    partition_keys = [
        [f"p{p}:k{i}" for i in range(per_partition)] for p in range(num_partitions)
    ]
    initial = {
        key: config.initial_value for keys in partition_keys for key in keys
    }

    def generate(rng: random.Random) -> TransactionSpec:
        keys = partition_keys[rng.randrange(num_partitions)]
        operations: List[Operation] = []
        for _ in range(config.operations_per_transaction):
            key = keys[rng.randrange(len(keys))]
            if rng.random() < config.read_fraction:
                operations.append(read_op(key))
            else:
                operations.append(increment_op(key))
        return TransactionSpec(operations, name="partitioned")

    return initial, generate


def partition_of(key: str) -> int:
    """The partition index encoded in a ``p<partition>:k<i>`` key name."""
    prefix, _, _ = key.partition(":")
    if not prefix.startswith("p"):
        raise ValueError(f"key {key!r} has no partition prefix")
    return int(prefix[1:])


def long_scan_generator(
    config: Optional[WorkloadConfig] = None,
    scan_fraction: float = 0.5,
    scan_length: Optional[int] = None,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """Long declared-read-only scans racing short zipfian updates.

    The multi-version showcase: ``scan_fraction`` of the transactions
    are contiguous read-only scans of ``scan_length`` keys (declared
    with ``read_only=True``, so multi-version protocols serve them on
    the kernel's snapshot fast path), and the rest are short
    read-modify-write transactions on zipf-hot keys.  Under
    single-version locking, every scan must queue behind the hot
    writers; under MVTO/SI the scans are invisible to them.
    """
    config = config or WorkloadConfig()
    if not 0.0 <= scan_fraction <= 1.0:
        raise ValueError("scan_fraction must be in [0, 1]")
    keys = config.key_names()
    length = scan_length if scan_length is not None else min(
        len(keys), 4 * config.operations_per_transaction
    )
    if length < 1:
        raise ValueError("scan_length must be at least 1")
    choose_zipf = _zipf_chooser(keys, config.zipf_theta)

    def generate(rng: random.Random) -> TransactionSpec:
        if rng.random() < scan_fraction:
            start = rng.randrange(len(keys))
            operations = [
                read_op(keys[(start + i) % len(keys)]) for i in range(length)
            ]
            return TransactionSpec(operations, name="long-scan", read_only=True)
        operations = []
        for _ in range(config.operations_per_transaction):
            operations.append(increment_op(choose_zipf(rng)))
        return TransactionSpec(operations, name="scan-update")

    return config.initial_data(), generate


def analytical_generator(
    config: Optional[WorkloadConfig] = None,
    read_fraction: float = 0.9,
    scan_length: int = 8,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """A 90%-read zipfian-hotspot analytical mix.

    ``read_fraction`` of the transactions are declared-read-only
    analytic scans whose keys are drawn from the same zipfian hotspot
    the writers hammer — the common production shape where dashboards
    and reports aggregate exactly the rows the OLTP traffic mutates.
    The rest are short zipfian-hotspot updates.  This is the benchmark
    mix for the multi-version protocols: single-version locking makes
    readers queue behind hot writers, while MVTO/SI keep the reader
    block/abort rate at zero.
    """
    config = config or WorkloadConfig()
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    if scan_length < 1:
        raise ValueError("scan_length must be at least 1")
    keys = config.key_names()
    hot_count = max(1, int(len(keys) * config.hotspot_fraction))
    hot, cold = keys[:hot_count], keys[hot_count:] or keys[:1]
    choose_hot = _zipf_chooser(hot, config.zipf_theta)

    def choose(rng: random.Random) -> str:
        if rng.random() < config.hotspot_probability:
            return choose_hot(rng)
        return cold[rng.randrange(len(cold))]

    def generate(rng: random.Random) -> TransactionSpec:
        if rng.random() < read_fraction:
            operations = [read_op(choose(rng)) for _ in range(scan_length)]
            return TransactionSpec(operations, name="analytic-scan", read_only=True)
        operations = []
        for _ in range(config.operations_per_transaction):
            operations.append(increment_op(choose(rng)))
        return TransactionSpec(operations, name="analytic-update")

    return config.initial_data(), generate


def readonly_heavy_generator(
    config: Optional[WorkloadConfig] = None,
) -> Tuple[Dict[str, int], TransactionGenerator]:
    """A 95%-read variant of the uniform workload."""
    config = config or WorkloadConfig()
    biased = WorkloadConfig(
        num_keys=config.num_keys,
        operations_per_transaction=config.operations_per_transaction,
        read_fraction=0.95,
        hotspot_fraction=config.hotspot_fraction,
        hotspot_probability=config.hotspot_probability,
        zipf_theta=config.zipf_theta,
        initial_value=config.initial_value,
        seed=config.seed,
    )
    return uniform_generator(biased)


def _materialise(
    generator_pair: Tuple[Dict[str, int], TransactionGenerator],
    num_transactions: int,
    seed: int,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    initial, generate = generator_pair
    rng = random.Random(seed)
    return initial, [generate(rng) for _ in range(num_transactions)]


def uniform_workload(
    num_transactions: int = 50, config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of uniform-mix transactions."""
    return _materialise(uniform_generator(config), num_transactions, seed)


def hotspot_workload(
    num_transactions: int = 50, config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of hotspot-mix transactions."""
    return _materialise(hotspot_generator(config), num_transactions, seed)


def zipfian_workload(
    num_transactions: int = 50, config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of zipfian-mix transactions."""
    return _materialise(zipfian_generator(config), num_transactions, seed)


def readonly_heavy_workload(
    num_transactions: int = 50, config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of read-heavy transactions."""
    return _materialise(readonly_heavy_generator(config), num_transactions, seed)


def zipfian_hotspot_workload(
    num_transactions: int = 50, config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of zipfian-hotspot transactions."""
    return _materialise(zipfian_hotspot_generator(config), num_transactions, seed)


def read_mostly_workload(
    num_transactions: int = 50, config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of read-mostly transactions."""
    return _materialise(read_mostly_generator(config), num_transactions, seed)


def long_scan_workload(
    num_transactions: int = 50,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    scan_fraction: float = 0.5,
    scan_length: Optional[int] = None,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of long-scan transactions."""
    return _materialise(
        long_scan_generator(config, scan_fraction, scan_length),
        num_transactions,
        seed,
    )


def analytical_workload(
    num_transactions: int = 50,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    read_fraction: float = 0.9,
    scan_length: int = 8,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of analytical-mix transactions."""
    return _materialise(
        analytical_generator(config, read_fraction, scan_length),
        num_transactions,
        seed,
    )


def partitioned_workload(
    num_transactions: int = 50,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    num_partitions: int = 4,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A concrete batch of single-partition transactions (for sharded runs)."""
    return _materialise(
        partitioned_generator(config, num_partitions), num_transactions, seed
    )


# ---------------------------------------------------------------------------
# cross-shard workloads (the distributed 2PC layer, repro.dist)
# ---------------------------------------------------------------------------


def dist_shard_of(key: str) -> int:
    """Shard index for ``s{n}:...`` keys — the distributed workloads' scheme.

    Explicit-prefix sharding (rather than the hashed default) keeps the
    cross-shard *fraction* of a generated batch an exact, seeded choice
    instead of an accident of key hashing.
    """
    return int(key.split(":", 1)[0][1:])


def cross_shard_initial_data(
    num_shards: int = 3, accounts_per_shard: int = 4, balance: int = 100
) -> Dict[str, int]:
    """Balances for ``s{shard}:acct{i}`` accounts across every shard."""
    return {
        f"s{shard}:acct{i}": balance
        for shard in range(num_shards)
        for i in range(accounts_per_shard)
    }


def cross_shard_transfer_workload(
    num_shards: int = 3,
    accounts_per_shard: int = 4,
    num_transactions: int = 20,
    cross_fraction: float = 0.7,
    min_amount: int = 5,
    max_amount: int = 25,
    balance: int = 100,
    seed: int = 0,
) -> Tuple[Dict[str, int], List[TransactionSpec]]:
    """A batch of conditional transfers, mostly spanning two shards.

    Each transaction moves a seeded amount between two distinct
    accounts (guarded on sufficient funds, like the paper's banking
    transfer, so money is conserved under any interleaving); with
    probability ``cross_fraction`` the two accounts live on different
    shards, which is what forces the 2PC path.  The conservation oracle
    for any run is simply ``sum(balances) == num_shards *
    accounts_per_shard * balance``.
    """
    if num_shards < 2:
        raise ValueError("cross-shard workload needs at least 2 shards")
    if not 0.0 <= cross_fraction <= 1.0:
        raise ValueError(f"cross_fraction must be in [0, 1], got {cross_fraction!r}")
    rng = random.Random(seed)
    initial = cross_shard_initial_data(num_shards, accounts_per_shard, balance)
    specs: List[TransactionSpec] = []
    for n in range(num_transactions):
        src_shard = rng.randrange(num_shards)
        if rng.random() < cross_fraction:
            dst_shard = rng.randrange(num_shards - 1)
            if dst_shard >= src_shard:
                dst_shard += 1
        else:
            dst_shard = src_shard
        src_acct = rng.randrange(accounts_per_shard)
        dst_acct = rng.randrange(accounts_per_shard)
        if dst_shard == src_shard:
            while dst_acct == src_acct:
                dst_acct = rng.randrange(accounts_per_shard)
        source = f"s{src_shard}:acct{src_acct}"
        target = f"s{dst_shard}:acct{dst_acct}"
        amount = rng.randint(min_amount, max_amount)
        spec = banking_transfer(source, target, amount)
        specs.append(
            TransactionSpec(
                spec.operations,
                name=f"xfer{n}:{source}->{target}",
            )
        )
    return initial, specs
