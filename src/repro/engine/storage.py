"""A small versioned key-value store used as the engine's database.

The store keeps, per key, the committed value plus a monotonically
increasing version counter and the identifier of the last committing
writer.  Versions are what optimistic validation and timestamp ordering
need; the extra bookkeeping is cheap and harmless for the locking
protocols.

The store itself performs no concurrency control: that is the protocols'
job.  It does provide *buffered writes* (per-transaction private write
sets applied atomically at commit), which all the implemented protocols
use so that aborts never leave partial updates behind.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


class StorageError(KeyError):
    """Raised when a key is accessed that was never initialised."""


class Version:
    """A committed version of a key: value, version number and writer id.

    Slotted (one instance per committed write on the engine hot path)
    and immutable — ``__hash__`` is defined over the fields, so mutation
    after construction is rejected like the frozen dataclass it replaced.
    """

    __slots__ = ("value", "version", "writer")

    def __init__(self, value: Any, version: int, writer: Optional[int] = None) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "version", version)
        object.__setattr__(self, "writer", writer)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Version is immutable")

    def __reduce__(self):
        # the immutability guard breaks pickle's default slot restore
        # (it calls setattr); rebuild through the constructor instead so
        # stores can cross process boundaries (the parallel shard runner)
        return (Version, (self.value, self.version, self.writer))

    def __repr__(self) -> str:
        return (
            f"Version(value={self.value!r}, version={self.version!r}, "
            f"writer={self.writer!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return (
            self.value == other.value
            and self.version == other.version
            and self.writer == other.writer
        )

    def __hash__(self) -> int:
        return hash((self.version, self.writer))


class DataStore:
    """An in-memory, versioned key-value store.

    Parameters
    ----------
    initial:
        Initial key/value contents; every key a workload touches must be
        initialised here (reads of unknown keys raise
        :class:`StorageError`, which catches workload bugs early).
    """

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        self._data: Dict[str, Version] = {}
        if initial:
            for key, value in initial.items():
                self._data[key] = Version(value=value, version=0, writer=None)

    # ------------------------------------------------------------------
    # committed state
    # ------------------------------------------------------------------
    def read(self, key: str) -> Any:
        """The committed value of ``key``."""
        return self.read_version(key).value

    def read_version(self, key: str) -> Version:
        """The committed :class:`Version` of ``key``."""
        if key not in self._data:
            raise StorageError(f"key {key!r} was never initialised")
        return self._data[key]

    def version_number(self, key: str) -> int:
        return self.read_version(key).version

    def write(self, key: str, value: Any, writer: Optional[int] = None) -> Version:
        """Install a new committed version of ``key`` and return it."""
        current = self._data.get(key)
        next_version = (current.version + 1) if current is not None else 0
        version = Version(value=value, version=next_version, writer=writer)
        self._data[key] = version
        return version

    def apply_writes(
        self, writes: Mapping[str, Any], writer: Optional[int] = None
    ) -> None:
        """Atomically install a transaction's buffered write set."""
        for key, value in writes.items():
            self.write(key, value, writer=writer)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> Dict[str, Any]:
        """A plain dict copy of the committed values (for assertions and metrics)."""
        return {key: version.value for key, version in self._data.items()}

    def total_versions_written(self) -> int:
        """Sum of version numbers — a cheap proxy for total committed writes."""
        return sum(version.version for version in self._data.values())

    def copy(self) -> "DataStore":
        """An independent copy of the store (used to run baselines on equal footing)."""
        clone = DataStore()
        clone._data = dict(self._data)
        return clone


class ShardedDataStore:
    """A key-value store partitioned into independent shards.

    Each shard is a full :class:`DataStore`; a deterministic
    ``shard_of(key)`` function assigns every key to exactly one shard.
    Because the engine's conflicts are per-key, the shards are disjoint
    *conflict domains*: transactions confined to different shards can
    never conflict, so a concurrency-control protocol can be instantiated
    per shard (see :func:`repro.engine.runtime.run_sharded_batch`) and the
    shards scheduled independently — the standard horizontal-scaling move
    the paper's single centralized scheduler model invites.

    The facade also implements the :class:`DataStore` read/write API by
    delegating to the owning shard, so a ``ShardedDataStore`` can be
    dropped in anywhere a plain store is expected.

    Parameters
    ----------
    initial:
        Initial contents, distributed across shards by ``shard_of``.
    num_shards:
        Number of shards.  Always honoured: it sizes the shard tuple and
        bounds every shard index, whether ``shard_of`` is supplied or
        defaulted.
    shard_of:
        Optional key -> shard index function; defaults to a stable hash
        of the key name (``hash()`` is salted per process, so the default
        uses a deterministic string fold instead).  A supplied function
        must map every key into ``range(num_shards)``; this is validated
        against every key of ``initial`` at construction time (and again
        for previously unseen keys on access), so a mismatched
        ``shard_of``/``num_shards`` pair fails fast instead of on first
        use.
    shard_factory:
        Optional ``initial_mapping -> store`` constructor for the
        per-shard stores (defaults to :class:`DataStore`); this is how
        :class:`~repro.engine.mvstore.ShardedMultiVersionDataStore`
        composes multi-version chains with sharding.
    """

    def __init__(
        self,
        initial: Optional[Mapping[str, Any]] = None,
        num_shards: int = 4,
        shard_of: Optional[Any] = None,
        shard_factory: Optional[Any] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if shard_of is not None and not callable(shard_of):
            raise TypeError("shard_of must be callable (key -> shard index)")
        self.num_shards = num_shards
        self._shard_of = shard_of if shard_of is not None else self._default_shard_of
        self._shard_factory = shard_factory if shard_factory is not None else DataStore
        grouped: Dict[int, Dict[str, Any]] = {i: {} for i in range(num_shards)}
        for key, value in (initial or {}).items():
            # shard_of() range-checks the index, so a caller-supplied
            # function that disagrees with num_shards raises here — at
            # construction — for every initial key, not on first access.
            grouped[self.shard_of(key)][key] = value
        self._shards: Tuple[DataStore, ...] = tuple(
            self._shard_factory(grouped[i]) for i in range(num_shards)
        )

    def _default_shard_of(self, key: str) -> int:
        # a deterministic string fold (djb2) — unlike built-in hash(),
        # stable across processes so sharded runs are reproducible
        acc = 5381
        for ch in key:
            acc = ((acc * 33) + ord(ch)) & 0xFFFFFFFF
        return acc % self.num_shards

    # ------------------------------------------------------------------
    # shard topology
    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = self._shard_of(key)
        if not 0 <= index < self.num_shards:
            raise ValueError(
                f"shard_of({key!r}) = {index} out of range [0, {self.num_shards})"
            )
        return index

    def shard(self, index: int) -> DataStore:
        """The shard's underlying :class:`DataStore`."""
        return self._shards[index]

    @property
    def shard_factory(self) -> Any:
        """The ``initial_mapping -> store`` constructor used per shard.

        Exposed so process-parallel execution can rebuild an equivalent
        shard store inside a worker from a shard's committed snapshot.
        """
        return self._shard_factory

    def shard_snapshot(self, index: int) -> Dict[str, Any]:
        """The committed values currently owned by one shard."""
        return self._shards[index].snapshot()

    def group_specs(self, specs: Iterable[Any]) -> Dict[int, List[Any]]:
        """Group transaction specs by the single shard each one touches.

        Each spec's full footprint (reads and writes) must fall inside
        one shard — shards are independent conflict domains, and a spec
        spanning shards would need a cross-shard commit coordinator,
        which the single-scheduler model of the paper deliberately
        excludes.  Raises ``ValueError`` for a spanning spec.  Shared by
        :func:`repro.engine.runtime.run_sharded_batch` and
        :class:`repro.engine.parallel.ParallelShardRunner` so the two
        execution paths can never drift on what "single-shard" means.
        """
        groups: Dict[int, List[Any]] = {}
        for spec in specs:
            touched = set(spec.keys_read()) | set(spec.keys_written())
            shards = {self.shard_of(key) for key in touched}
            if len(shards) != 1:
                raise ValueError(
                    f"transaction {spec.name!r} spans shards {sorted(shards)}; "
                    "sharded execution requires single-shard transactions"
                )
            groups.setdefault(shards.pop(), []).append(spec)
        return groups

    def shard_for(self, key: str) -> DataStore:
        return self._shards[self.shard_of(key)]

    def shards(self) -> Tuple[DataStore, ...]:
        return self._shards

    def conflict_domains(self) -> Dict[int, Tuple[str, ...]]:
        """Mapping shard index -> the keys it currently owns."""
        return {
            index: tuple(sorted(shard.keys()))
            for index, shard in enumerate(self._shards)
        }

    # ------------------------------------------------------------------
    # DataStore facade (delegates to the owning shard)
    # ------------------------------------------------------------------
    def read(self, key: str) -> Any:
        return self.shard_for(key).read(key)

    def read_version(self, key: str) -> Version:
        return self.shard_for(key).read_version(key)

    def version_number(self, key: str) -> int:
        return self.shard_for(key).version_number(key)

    def write(self, key: str, value: Any, writer: Optional[int] = None) -> Version:
        return self.shard_for(key).write(key, value, writer=writer)

    def apply_writes(
        self, writes: Mapping[str, Any], writer: Optional[int] = None
    ) -> None:
        for key, value in writes.items():
            self.write(key, value, writer=writer)

    def keys(self) -> Iterator[str]:
        for shard in self._shards:
            yield from shard.keys()

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def snapshot(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for shard in self._shards:
            merged.update(shard.snapshot())
        return merged

    def total_versions_written(self) -> int:
        return sum(shard.total_versions_written() for shard in self._shards)

    def copy(self) -> "ShardedDataStore":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._shards = tuple(shard.copy() for shard in self._shards)
        return clone
