"""A small versioned key-value store used as the engine's database.

The store keeps, per key, the committed value plus a monotonically
increasing version counter and the identifier of the last committing
writer.  Versions are what optimistic validation and timestamp ordering
need; the extra bookkeeping is cheap and harmless for the locking
protocols.

The store itself performs no concurrency control: that is the protocols'
job.  It does provide *buffered writes* (per-transaction private write
sets applied atomically at commit), which all the implemented protocols
use so that aborts never leave partial updates behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple


class StorageError(KeyError):
    """Raised when a key is accessed that was never initialised."""


@dataclass(frozen=True)
class Version:
    """A committed version of a key: value, version number and writer id."""

    value: Any
    version: int
    writer: Optional[int] = None


class DataStore:
    """An in-memory, versioned key-value store.

    Parameters
    ----------
    initial:
        Initial key/value contents; every key a workload touches must be
        initialised here (reads of unknown keys raise
        :class:`StorageError`, which catches workload bugs early).
    """

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        self._data: Dict[str, Version] = {}
        if initial:
            for key, value in initial.items():
                self._data[key] = Version(value=value, version=0, writer=None)

    # ------------------------------------------------------------------
    # committed state
    # ------------------------------------------------------------------
    def read(self, key: str) -> Any:
        """The committed value of ``key``."""
        return self.read_version(key).value

    def read_version(self, key: str) -> Version:
        """The committed :class:`Version` of ``key``."""
        if key not in self._data:
            raise StorageError(f"key {key!r} was never initialised")
        return self._data[key]

    def version_number(self, key: str) -> int:
        return self.read_version(key).version

    def write(self, key: str, value: Any, writer: Optional[int] = None) -> Version:
        """Install a new committed version of ``key`` and return it."""
        current = self._data.get(key)
        next_version = (current.version + 1) if current is not None else 0
        version = Version(value=value, version=next_version, writer=writer)
        self._data[key] = version
        return version

    def apply_writes(
        self, writes: Mapping[str, Any], writer: Optional[int] = None
    ) -> None:
        """Atomically install a transaction's buffered write set."""
        for key, value in writes.items():
            self.write(key, value, writer=writer)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> Dict[str, Any]:
        """A plain dict copy of the committed values (for assertions and metrics)."""
        return {key: version.value for key, version in self._data.items()}

    def total_versions_written(self) -> int:
        """Sum of version numbers — a cheap proxy for total committed writes."""
        return sum(version.version for version in self._data.values())

    def copy(self) -> "DataStore":
        """An independent copy of the store (used to run baselines on equal footing)."""
        clone = DataStore()
        clone._data = dict(self._data)
        return clone
