"""An executable multi-user concurrency-control engine.

The paper's performance claims are about delays imposed on interactively
arriving requests (Section 6): scheduling time + waiting time + execution
time.  This subpackage provides the measurement substrate for those
claims — a versioned key-value store, online concurrency-control
protocols (serial execution, strict two-phase locking, serialization
graph testing, basic timestamp ordering, and optimistic validation in the
style of Kung & Robinson), a workload generator family including the
paper's banking example, and a discrete-event simulator that decomposes
transaction latency exactly as Section 6 does.

The protocols are *online* schedulers: they see one request at a time and
must grant, delay, or reject (abort) it, in contrast with the static,
whole-history schedulers of :mod:`repro.core.schedulers`.  The test suite
cross-checks them against the static theory: every history of committed
operations they produce is conflict-serializable.

Both front-ends (untimed executor, timed simulator) drive the shared
:mod:`repro.engine.kernel`, which owns session state and the event-driven
wait index that wakes blocked requests from commit/abort notifications
instead of polling them on a timer.  Storage can be sharded into
independent conflict domains (:class:`ShardedDataStore`), and every layer
records into a pluggable :class:`~repro.engine.metrics.Metrics` registry.

Since ISSUE 2 the engine is also *multi-version*: per-key version chains
(:class:`MultiVersionDataStore`, sharded as
:class:`ShardedMultiVersionDataStore`) back two additional protocols —
multi-version timestamp ordering (:class:`MultiVersionTimestampOrdering`)
and snapshot isolation (:class:`SnapshotIsolation`, with a
``serializable=True`` SSI knob) — whose readers never block or abort.
Declared-read-only transactions ride the kernel's snapshot fast path,
and committed multi-version histories are certified one-copy
serializable by the MVSG checker in :mod:`repro.analysis.mvsg`.
"""

from repro.engine.storage import DataStore, ShardedDataStore, Version
from repro.engine.mvstore import (
    MultiVersionDataStore,
    ShardedMultiVersionDataStore,
    VersionRecord,
    VersionedRead,
    ensure_multiversion,
)
from repro.engine.metrics import NULL_METRICS, Counter, Histogram, Metrics, NullMetrics
from repro.engine.faults import FaultEvent, FaultPlan, FaultSpec
from repro.engine.kernel import EngineKernel, RunQueue, Session, StepKind, StepResult
from repro.engine.parallel import ParallelShardRunner
from repro.engine.operations import (
    Operation,
    OperationKind,
    TransactionSpec,
    read_op,
    write_op,
    update_op,
)
from repro.engine.protocols.base import (
    ConcurrencyControl,
    Decision,
    DecisionKind,
    TransactionAborted,
    SerialProtocol,
)
from repro.engine.protocols.two_phase_locking import StrictTwoPhaseLocking
from repro.engine.protocols.timestamp_ordering import TimestampOrdering
from repro.engine.protocols.sgt import SerializationGraphTesting
from repro.engine.protocols.occ import OptimisticConcurrencyControl
from repro.engine.protocols.mvto import MultiVersionTimestampOrdering
from repro.engine.protocols.snapshot_isolation import SnapshotIsolation
from repro.engine.protocols.registry import (
    PROTOCOL_ENTRIES,
    PROTOCOL_FACTORIES,
    ProtocolEntry,
    get_entry,
    protocol_names,
)
from repro.engine.runtime import (
    TransactionExecutor,
    ExecutionResult,
    ShardedExecutionResult,
    run_batch,
    run_sharded_batch,
)
from repro.engine.simulator import (
    Simulator,
    SimulationConfig,
    SimulationReport,
    LatencyBreakdown,
)
from repro.engine.workloads import (
    WorkloadConfig,
    banking_workload,
    uniform_workload,
    hotspot_workload,
    zipfian_workload,
    readonly_heavy_workload,
    zipfian_hotspot_workload,
    hotspot_queue_workload,
    read_mostly_workload,
    partitioned_workload,
    long_scan_workload,
    analytical_workload,
    zipfian_hotspot_generator,
    read_mostly_generator,
    partitioned_generator,
    long_scan_generator,
    analytical_generator,
    partition_of,
)

__all__ = [
    "DataStore",
    "ShardedDataStore",
    "Version",
    "MultiVersionDataStore",
    "ShardedMultiVersionDataStore",
    "VersionRecord",
    "VersionedRead",
    "ensure_multiversion",
    "Counter",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "PROTOCOL_ENTRIES",
    "PROTOCOL_FACTORIES",
    "ProtocolEntry",
    "get_entry",
    "protocol_names",
    "EngineKernel",
    "RunQueue",
    "ParallelShardRunner",
    "Session",
    "StepKind",
    "StepResult",
    "Operation",
    "OperationKind",
    "TransactionSpec",
    "read_op",
    "write_op",
    "update_op",
    "ConcurrencyControl",
    "Decision",
    "DecisionKind",
    "TransactionAborted",
    "SerialProtocol",
    "StrictTwoPhaseLocking",
    "TimestampOrdering",
    "SerializationGraphTesting",
    "OptimisticConcurrencyControl",
    "MultiVersionTimestampOrdering",
    "SnapshotIsolation",
    "TransactionExecutor",
    "ExecutionResult",
    "ShardedExecutionResult",
    "run_batch",
    "run_sharded_batch",
    "Simulator",
    "SimulationConfig",
    "SimulationReport",
    "LatencyBreakdown",
    "WorkloadConfig",
    "banking_workload",
    "uniform_workload",
    "hotspot_workload",
    "zipfian_workload",
    "readonly_heavy_workload",
    "zipfian_hotspot_workload",
    "hotspot_queue_workload",
    "read_mostly_workload",
    "partitioned_workload",
    "long_scan_workload",
    "analytical_workload",
    "zipfian_hotspot_generator",
    "read_mostly_generator",
    "partitioned_generator",
    "long_scan_generator",
    "analytical_generator",
    "partition_of",
]
