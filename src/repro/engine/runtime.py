"""The untimed transaction executor.

:class:`TransactionExecutor` runs a batch of
:class:`~repro.engine.operations.TransactionSpec` concurrently (logically
interleaved) under any online protocol, handling blocking, aborting and
restarting, and reports what happened.  It is the engine's workhorse for
correctness testing and for "how many requests had to wait / abort"
counting; the timed view (arrivals, latencies) lives in
:mod:`repro.engine.simulator`.

Session state and the per-step protocol interaction live in the shared
:mod:`repro.engine.kernel`; the executor only decides *which* session
advances next.  Interleaving is controlled by ``interleaving``:

* ``"round-robin"`` — each runnable transaction advances one operation
  per round (the densest fair interleaving);
* ``"random"`` — the next transaction to advance is drawn uniformly using
  the supplied seed (matches the paper's "requests arrive in any order");
* ``"serial"`` — each transaction runs to completion before the next
  starts (the baseline of Section 1).

Blocked sessions are handled by ``wait_policy``:

* ``"event"`` (default) — a blocked session is parked in the kernel's
  wait index and skipped until one of its blockers commits or aborts;
* ``"polling"`` — the pre-kernel compatibility behaviour: a blocked
  session is retried every round regardless.

The *scheduler* decides what one round costs:

* ``"run-queue"`` (default) — the :class:`~repro.engine.kernel.RunQueue`
  structure: runnable sessions live in a round-ordered queue, sessions
  sitting out an abort backoff live in a cooldown wheel, and blocked
  sessions leave the queue entirely, re-entering through the kernel's
  wake notification (``wake_sink`` is the enqueue path).  One round
  costs O(runnable): a run with 1,000 clients where 90% are parked in
  the wait index only ever touches the runnable 10%.
* ``"round-scan"`` — the legacy loop, kept as the differential baseline:
  every round rescans *every* live session (finished/cooldown/waiting
  checks included), which is O(live) per round no matter how many
  sessions could actually move.

Under ``round-robin`` and ``serial`` interleaving the two schedulers
produce **byte-identical executions** — same protocol-interaction order,
same commit order, same counters — because the run queue drains each
round in ascending session order, exactly the order the scan visits
runnable sessions (pinned by ``tests/test_engine_sched.py``).  Under
``random`` interleaving the run queue draws uniformly from the *runnable
set* instead of shuffling a fresh copy of every live session each round,
so its executions are deterministic per seed but differ from the legacy
shuffle; its digests are pinned separately.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.faults import FaultPlan
from repro.engine.kernel import EngineKernel, RunQueue, Session, StepKind
from repro.engine.metrics import Metrics
from repro.engine.operations import TransactionSpec
from repro.engine.protocols.base import ConcurrencyControl, TransactionAborted
from repro.engine.storage import DataStore, ShardedDataStore
from repro.obs.trace import Tracer

SCHEDULERS = ("run-queue", "round-scan")


class ExecutionStuck(RuntimeError):
    """Raised if no live transaction can make progress (should not happen)."""


@dataclass
class ExecutionResult:
    """What happened when a batch of transactions was executed."""

    protocol_name: str
    committed: int
    aborted_attempts: int
    restarts: int
    gave_up: int
    operations_issued: int
    blocks: int
    store_snapshot: Dict[str, Any]
    committed_serializable: bool
    per_transaction: Dict[str, Dict[str, int]]
    metrics: Optional[Metrics] = None

    @property
    def total_submitted(self) -> int:
        return self.committed + self.gave_up

    @property
    def abort_rate(self) -> float:
        """Fraction of finished transaction *attempts* that aborted.

        Attempt-level, like :attr:`SimulationReport.abort_rate
        <repro.engine.simulator.SimulationReport.abort_rate>`: a
        transaction restarted ``k`` times contributes ``k`` aborted
        attempts plus (at most) one commit.
        """
        attempts = self.committed + self.aborted_attempts
        return self.aborted_attempts / attempts if attempts else 0.0

    def summary(self) -> str:
        return (
            f"{self.protocol_name}: committed={self.committed} "
            f"restarts={self.restarts} blocks={self.blocks} "
            f"abort_rate={self.abort_rate:.2%} serializable={self.committed_serializable}"
        )


class TransactionExecutor:
    """Run transaction programs concurrently under an online protocol."""

    def __init__(
        self,
        protocol: ConcurrencyControl,
        max_attempts: int = 50,
        interleaving: str = "round-robin",
        seed: Optional[int] = None,
        max_concurrent: Optional[int] = None,
        wait_policy: str = "event",
        metrics: Optional[Metrics] = None,
        fault_plan: Optional[FaultPlan] = None,
        scheduler: str = "run-queue",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if interleaving not in ("round-robin", "random", "serial"):
            raise ValueError(
                "interleaving must be 'round-robin', 'random' or 'serial'"
            )
        if wait_policy not in ("event", "polling"):
            raise ValueError("wait_policy must be 'event' or 'polling'")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        self.protocol = protocol
        self.kernel = EngineKernel(
            protocol, metrics=metrics, fault_plan=fault_plan, tracer=tracer
        )
        self.metrics = self.kernel.metrics
        #: the kernel's tracer; the executor owns its logical clock,
        #: advancing ``tracer.now`` to the scheduler round so traced
        #: events carry deterministic round stamps.
        self.tracer = self.kernel.tracer
        self._tracing = self.kernel._tracing
        #: set by the kernel when a parked session is woken mid-round; a
        #: wakeup makes that session runnable next round, so it counts as
        #: progress for the stuck detector.
        self._woke_session = False
        self.kernel.wake_sink = self._note_wake
        self.max_attempts = max_attempts
        self.interleaving = interleaving
        self.wait_policy = wait_policy
        self.scheduler = scheduler
        #: multiprogramming level: how many transactions may be in flight at
        #: once (None = all submitted transactions run concurrently).
        self.max_concurrent = max_concurrent
        self.rng = random.Random(seed)
        # per-run accounting, reset by run()
        self._aborted_attempts = 0
        self._restarts = 0
        # run-queue state, built by _run_queue()
        self._rq: Optional[RunQueue] = None
        self._run_sessions: List[Session] = []
        self._finished_count = 0
        self._admission_limited = False
        self._live_ids: List[int] = []
        self._unadmitted: deque = deque()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TransactionSpec]) -> ExecutionResult:
        """Execute all specs to completion (commit or giving up) and report."""
        sessions = [
            self.kernel.new_session(spec, session_id=i) for i, spec in enumerate(specs)
        ]
        self._aborted_attempts = 0
        self._restarts = 0
        self.kernel.attach()
        try:
            if self.scheduler == "run-queue":
                self.kernel.wake_sink = self._on_runqueue_wake
                self._run_queue(sessions)
            else:
                self.kernel.wake_sink = self._note_wake
                self._run_round_scan(sessions)
        finally:
            # a finished kernel must never react to a later kernel's
            # notifications on the same protocol (it would pop its wait
            # index and enqueue dead sessions)
            self.kernel.detach()

        per_transaction = {
            f"{s.spec.name}#{s.session_id}": {
                "attempts": s.attempts,
                "blocks": s.blocks,
                "operations": s.operations_issued,
                "committed": int(s.committed),
            }
            for s in sessions
        }
        return ExecutionResult(
            protocol_name=self.protocol.name,
            committed=sum(1 for s in sessions if s.committed),
            aborted_attempts=self._aborted_attempts,
            restarts=self._restarts,
            gave_up=sum(1 for s in sessions if s.given_up),
            operations_issued=sum(s.operations_issued for s in sessions),
            blocks=sum(s.blocks for s in sessions),
            store_snapshot=self.protocol.store.snapshot(),
            committed_serializable=self.protocol.committed_history_serializable(),
            per_transaction=per_transaction,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # the run-queue scheduler: one round costs O(runnable)
    # ------------------------------------------------------------------
    def _run_queue(self, sessions: List[Session]) -> None:
        rq = self._rq = RunQueue()
        self._run_sessions = sessions
        self._finished_count = 0
        total = len(sessions)
        limit = self.max_concurrent
        if limit is None or limit >= total:
            self._live_ids = []
            self._unadmitted = deque()
            self._admission_limited = False
            for session in sessions:
                rq.push_next(session.session_id)
        else:
            # admission control: the legacy scan admits the first
            # ``max_concurrent`` *live* sessions each round, i.e. the
            # sessions whose ids are at or below the limit-th smallest
            # live id.  Admission is monotone (live ids only leave), so
            # non-admitted sessions wait in creation order and are
            # released as earlier sessions finish.
            self._live_ids = [session.session_id for session in sessions]
            self._admission_limited = True
            for session in sessions[:limit]:
                rq.push_next(session.session_id)
            self._unadmitted = deque(
                session.session_id for session in sessions[limit:]
            )

        random_mode = self.interleaving == "random"
        tracing = self._tracing
        while self._finished_count < total:
            if not rq.advance():
                # nothing runnable, nothing cooling, and no wake can come:
                # every remaining session is parked on a peer that will
                # never resolve
                raise ExecutionStuck(
                    f"no progress with {total - self._finished_count} live "
                    f"transactions under {self.protocol.name}"
                )
            if tracing:
                self.tracer.now = rq.round
            for session_id in rq.expired_cooldowns():
                session = sessions[session_id]
                session.cooldown = 0
                # a session can sit out a backoff while *also* parked in
                # the wait index (serial interleaving restarts drive on
                # through the cooldown); the wake notification owns its
                # re-entry then
                if not session.finished and not session.waiting:
                    rq.push_current(session_id)
            progressed = False
            self._woke_session = False
            if random_mode:
                bucket = rq.drain_current()
                rng = self.rng
                while bucket:
                    index = rng.randrange(len(bucket))
                    session_id = bucket[index]
                    last = len(bucket) - 1
                    if index != last:
                        bucket[index] = bucket[last]
                    del bucket[last]
                    if self._visit_runqueue(sessions[session_id]):
                        progressed = True
            else:
                while True:
                    session_id = rq.pop()
                    if session_id is None:
                        break
                    if self._visit_runqueue(sessions[session_id]):
                        progressed = True
            if (
                not progressed
                and not self._woke_session
                and not rq.cooling
                and self._finished_count < total
            ):
                raise ExecutionStuck(
                    f"no progress with {total - self._finished_count} live "
                    f"transactions under {self.protocol.name}"
                )

    def _visit_runqueue(self, session: Session) -> bool:
        """Visit one queued session, then requeue it where it now belongs."""
        progressed = self._visit(session)
        if session.finished:
            self._note_finished(session)
        elif session.cooldown > 0:
            self._rq.schedule_cooldown(session.session_id, session.cooldown)
        elif session.waiting and self.wait_policy == "event":
            # parked in the wait index: the wake notification is the only
            # way back into the queue — this is the O(runnable) win
            pass
        else:
            # runnable again next round: granted work, an unparked block
            # (no live blockers named, or an injected stall), or a parked
            # block under the polling policy (retried every round)
            self._rq.push_next(session.session_id)
        return progressed

    def _note_finished(self, session: Session) -> None:
        self._finished_count += 1
        if not self._admission_limited:
            return
        ids = self._live_ids
        index = bisect_left(ids, session.session_id)
        if index < len(ids) and ids[index] == session.session_id:
            del ids[index]
        limit = self.max_concurrent
        while self._unadmitted:
            if len(ids) >= limit and self._unadmitted[0] > ids[limit - 1]:
                break
            # newly admitted sessions join from the next round on, like
            # the legacy scan recomputing its admitted prefix per round
            self._rq.push_next(self._unadmitted.popleft())

    def _on_runqueue_wake(self, session: Session) -> None:
        """Kernel wake notification: the run queue's enqueue path."""
        self._woke_session = True
        if session.finished or session.cooldown > 0:
            # the cooldown wheel owns a cooling session's re-entry
            return
        if self.wait_policy != "event":
            # polling sessions are already queued for their round retry
            return
        if self.interleaving == "random":
            self._rq.push_next(session.session_id)
        else:
            # ascending drain order lets the queue tell whether the scan
            # would still have reached this session in the current round
            self._rq.push_wake(session.session_id)

    # ------------------------------------------------------------------
    # the legacy round-scan scheduler (differential baseline)
    # ------------------------------------------------------------------
    def _run_round_scan(self, sessions: List[Session]) -> None:
        live = list(sessions)
        round_number = 0
        while live:
            round_number += 1
            if self._tracing:
                self.tracer.now = round_number
            progressed = False
            self._woke_session = False
            admitted = (
                live
                if self.max_concurrent is None
                else live[: self.max_concurrent]
            )
            order = self._ordering(admitted)
            for session in order:
                if session.finished:
                    continue
                if session.cooldown > 0:
                    session.cooldown -= 1
                    progressed = True
                    continue
                if self.wait_policy == "event" and session.waiting:
                    # parked in the wait index: a commit/abort notification
                    # will clear the flag — no point re-asking the protocol.
                    continue
                if self._visit(session):
                    progressed = True
            live = [s for s in sessions if not s.finished]
            if live and not (progressed or self._woke_session):
                raise ExecutionStuck(
                    f"no progress with {len(live)} live transactions under "
                    f"{self.protocol.name}"
                )

    # ------------------------------------------------------------------
    # shared per-visit logic
    # ------------------------------------------------------------------
    def _visit(self, session: Session) -> bool:
        """Advance a session once (to completion under serial interleaving).

        Returns whether the visit made progress.  Abort/restart
        bookkeeping goes through :meth:`_retire_attempt` for the outer
        step and the serial inner loop alike, so give-up and restart
        accounting cannot drift between the two paths.
        """
        advanced, aborted = self._advance(session)
        if aborted:
            self._retire_attempt(session)
        progressed = advanced or aborted
        if self.interleaving == "serial" and not session.finished:
            # keep driving the same transaction until it finishes
            while not session.finished:
                advanced, aborted = self._advance(session)
                if aborted:
                    self._retire_attempt(session)
                if not advanced and not aborted:
                    break
            progressed = True
        return progressed

    def _retire_attempt(self, session: Session) -> None:
        """Account one aborted attempt: give up or restart with backoff."""
        self._aborted_attempts += 1
        if session.attempts >= self.max_attempts:
            session.given_up = True
        else:
            self._restarts += 1
            self.kernel.restart(session)

    def _note_wake(self, session: Session) -> None:
        self._woke_session = True

    def _ordering(self, live: List[Session]) -> List[Session]:
        if self.interleaving == "random":
            order = list(live)
            self.rng.shuffle(order)
            return order
        return list(live)

    def _advance(self, session: Session) -> Tuple[bool, bool]:
        """Advance a session by one kernel step.

        Returns ``(progressed, aborted_this_attempt)``.
        """
        result = self.kernel.step(session)
        if result.kind is StepKind.BLOCKED:
            # an injected stall is itself an event (the plan advanced),
            # so it counts as progress — otherwise a round in which every
            # live session drew a stall would trip the stuck detector
            return result.fault is not None, False
        if result.kind is StepKind.ABORTED:
            return True, True
        return True, False


def run_batch(
    protocol_factory,
    store: DataStore,
    specs: Sequence[TransactionSpec],
    interleaving: str = "round-robin",
    seed: Optional[int] = None,
    max_attempts: int = 50,
    max_concurrent: Optional[int] = None,
    wait_policy: str = "event",
    fault_plan: Optional[FaultPlan] = None,
    metrics: Optional[Metrics] = None,
    scheduler: str = "run-queue",
    tracer: Optional[Tracer] = None,
) -> ExecutionResult:
    """Convenience helper: build the protocol on ``store`` and run the batch."""
    protocol = protocol_factory(store)
    executor = TransactionExecutor(
        protocol,
        max_attempts=max_attempts,
        interleaving=interleaving,
        seed=seed,
        max_concurrent=max_concurrent,
        wait_policy=wait_policy,
        fault_plan=fault_plan,
        metrics=metrics,
        scheduler=scheduler,
        tracer=tracer,
    )
    return executor.run(specs)


# ----------------------------------------------------------------------
# sharded execution: one protocol instance per conflict domain
# ----------------------------------------------------------------------


@dataclass
class ShardedExecutionResult:
    """Aggregate of per-shard executions over a :class:`ShardedDataStore`."""

    per_shard: Dict[int, ExecutionResult]
    store_snapshot: Dict[str, Any]

    @property
    def committed(self) -> int:
        return sum(r.committed for r in self.per_shard.values())

    @property
    def aborted_attempts(self) -> int:
        return sum(r.aborted_attempts for r in self.per_shard.values())

    @property
    def restarts(self) -> int:
        return sum(r.restarts for r in self.per_shard.values())

    @property
    def blocks(self) -> int:
        return sum(r.blocks for r in self.per_shard.values())

    @property
    def gave_up(self) -> int:
        return sum(r.gave_up for r in self.per_shard.values())

    @property
    def operations_issued(self) -> int:
        return sum(r.operations_issued for r in self.per_shard.values())

    @property
    def abort_rate(self) -> float:
        """Attempt-level abort rate across all shards.

        Same semantics as :attr:`ExecutionResult.abort_rate`: aborted
        attempts over finished attempts (commits + aborted attempts),
        aggregated over the shard results.
        """
        attempts = self.committed + self.aborted_attempts
        return self.aborted_attempts / attempts if attempts else 0.0

    @property
    def committed_serializable(self) -> bool:
        return all(r.committed_serializable for r in self.per_shard.values())

    def merged_metrics(self) -> Metrics:
        merged = Metrics()
        seen: List[int] = []
        for result in self.per_shard.values():
            if result.metrics is None:
                continue
            if id(result.metrics) in seen:
                # shards executed against one shared registry (the
                # caller passed ``metrics=`` to run_sharded_batch):
                # merging it once per shard would multiply every counter
                continue
            seen.append(id(result.metrics))
            merged.merge(result.metrics)
        return merged

    @classmethod
    def merge(
        cls, store: ShardedDataStore, per_shard: Dict[int, "ExecutionResult"]
    ) -> "ShardedExecutionResult":
        """Assemble the aggregate, overlaying shard results on the store.

        Committed values are reported from the protocols' own stores: a
        factory may wrap a shard (multi-version protocols over plain
        shards via ``ensure_multiversion``), in which case the caller's
        store never sees the commits — the overlay keeps untouched
        shards' keys while preferring what actually ran.  Shared by the
        serial and process-parallel sharded runners so their snapshot
        semantics cannot drift.
        """
        merged_snapshot = store.snapshot()
        for result in per_shard.values():
            merged_snapshot.update(result.store_snapshot)
        return cls(per_shard=per_shard, store_snapshot=merged_snapshot)


def _shard_fault_plan(
    fault_plan: Optional[FaultPlan],
) -> Optional[FaultPlan]:
    """A fresh per-shard plan replaying ``fault_plan``'s spec.

    Shards are independent conflict domains executed in isolation, so
    each shard replays the deterministic injection stream from the start
    of the spec — the same definition the process-parallel runner uses
    (a stateful plan cannot be shared across processes), which keeps
    serial and parallel sharded runs byte-identical per shard.
    """
    return None if fault_plan is None else FaultPlan(fault_plan.spec)


def run_sharded_batch(
    protocol_factory,
    store: ShardedDataStore,
    specs: Sequence[TransactionSpec],
    interleaving: str = "round-robin",
    seed: Optional[int] = None,
    max_attempts: int = 50,
    max_concurrent: Optional[int] = None,
    wait_policy: str = "event",
    fault_plan: Optional[FaultPlan] = None,
    metrics: Optional[Metrics] = None,
    scheduler: str = "run-queue",
    tracer: Optional[Tracer] = None,
) -> ShardedExecutionResult:
    """Execute a batch with one protocol instance per shard.

    Each shard of a :class:`~repro.engine.storage.ShardedDataStore` is an
    independent conflict domain: transactions confined to one shard never
    conflict with transactions on another, so each shard gets its own
    protocol instance over its own sub-store and the shards execute
    independently.  A spec whose footprint spans shards is rejected —
    cross-shard transactions would need a commit coordinator, which the
    single-scheduler model of the paper deliberately excludes.

    ``fault_plan`` and ``metrics`` reach every shard: each shard replays
    a fresh plan built from the fault plan's spec (see
    :func:`_shard_fault_plan` for why the plan is per-shard), and a
    supplied metrics registry is shared by all shard executors so kernel
    and protocol counters land in one report.  For true multi-core
    execution of the same shard batches, see
    :class:`repro.engine.parallel.ParallelShardRunner`.
    """
    groups = store.group_specs(specs)

    per_shard: Dict[int, ExecutionResult] = {}
    for shard_index in sorted(groups):
        shard_seed = None if seed is None else seed + shard_index
        per_shard[shard_index] = run_batch(
            protocol_factory,
            store.shard(shard_index),
            groups[shard_index],
            interleaving=interleaving,
            seed=shard_seed,
            max_attempts=max_attempts,
            max_concurrent=max_concurrent,
            wait_policy=wait_policy,
            fault_plan=_shard_fault_plan(fault_plan),
            metrics=metrics,
            scheduler=scheduler,
            tracer=tracer,
        )
    return ShardedExecutionResult.merge(store, per_shard)
