"""The untimed transaction executor.

:class:`TransactionExecutor` runs a batch of
:class:`~repro.engine.operations.TransactionSpec` concurrently (logically
interleaved) under any online protocol, handling blocking, aborting and
restarting, and reports what happened.  It is the engine's workhorse for
correctness testing and for "how many requests had to wait / abort"
counting; the timed view (arrivals, latencies) lives in
:mod:`repro.engine.simulator`.

Session state and the per-step protocol interaction live in the shared
:mod:`repro.engine.kernel`; the executor only decides *which* session
advances next.  Interleaving is controlled by ``interleaving``:

* ``"round-robin"`` — each live transaction advances one operation per
  round (the densest fair interleaving);
* ``"random"`` — the next transaction to advance is drawn uniformly using
  the supplied seed (matches the paper's "requests arrive in any order");
* ``"serial"`` — each transaction runs to completion before the next
  starts (the baseline of Section 1).

Blocked sessions are handled by ``wait_policy``:

* ``"event"`` (default) — a blocked session is parked in the kernel's
  wait index and skipped until one of its blockers commits or aborts;
* ``"polling"`` — the pre-kernel compatibility behaviour: a blocked
  session is retried every round regardless.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.faults import FaultPlan
from repro.engine.kernel import EngineKernel, Session, StepKind
from repro.engine.metrics import Metrics
from repro.engine.operations import TransactionSpec
from repro.engine.protocols.base import ConcurrencyControl, TransactionAborted
from repro.engine.storage import DataStore, ShardedDataStore


class ExecutionStuck(RuntimeError):
    """Raised if no live transaction can make progress (should not happen)."""


@dataclass
class ExecutionResult:
    """What happened when a batch of transactions was executed."""

    protocol_name: str
    committed: int
    aborted_attempts: int
    restarts: int
    gave_up: int
    operations_issued: int
    blocks: int
    store_snapshot: Dict[str, Any]
    committed_serializable: bool
    per_transaction: Dict[str, Dict[str, int]]
    metrics: Optional[Metrics] = None

    @property
    def total_submitted(self) -> int:
        return self.committed + self.gave_up

    @property
    def abort_rate(self) -> float:
        """Fraction of finished transaction *attempts* that aborted.

        Attempt-level, like :attr:`SimulationReport.abort_rate
        <repro.engine.simulator.SimulationReport.abort_rate>`: a
        transaction restarted ``k`` times contributes ``k`` aborted
        attempts plus (at most) one commit.
        """
        attempts = self.committed + self.aborted_attempts
        return self.aborted_attempts / attempts if attempts else 0.0

    def summary(self) -> str:
        return (
            f"{self.protocol_name}: committed={self.committed} "
            f"restarts={self.restarts} blocks={self.blocks} "
            f"abort_rate={self.abort_rate:.2%} serializable={self.committed_serializable}"
        )


class TransactionExecutor:
    """Run transaction programs concurrently under an online protocol."""

    def __init__(
        self,
        protocol: ConcurrencyControl,
        max_attempts: int = 50,
        interleaving: str = "round-robin",
        seed: Optional[int] = None,
        max_concurrent: Optional[int] = None,
        wait_policy: str = "event",
        metrics: Optional[Metrics] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if interleaving not in ("round-robin", "random", "serial"):
            raise ValueError(
                "interleaving must be 'round-robin', 'random' or 'serial'"
            )
        if wait_policy not in ("event", "polling"):
            raise ValueError("wait_policy must be 'event' or 'polling'")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        self.protocol = protocol
        self.kernel = EngineKernel(protocol, metrics=metrics, fault_plan=fault_plan)
        self.metrics = self.kernel.metrics
        #: set by the kernel when a parked session is woken mid-round; a
        #: wakeup makes that session runnable next round, so it counts as
        #: progress for the stuck detector.
        self._woke_session = False
        self.kernel.wake_sink = self._note_wake
        self.max_attempts = max_attempts
        self.interleaving = interleaving
        self.wait_policy = wait_policy
        #: multiprogramming level: how many transactions may be in flight at
        #: once (None = all submitted transactions run concurrently).
        self.max_concurrent = max_concurrent
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TransactionSpec]) -> ExecutionResult:
        """Execute all specs to completion (commit or giving up) and report."""
        sessions = [
            self.kernel.new_session(spec, session_id=i) for i, spec in enumerate(specs)
        ]
        restarts = 0
        aborted_attempts = 0

        live = list(sessions)
        while live:
            progressed = False
            self._woke_session = False
            admitted = (
                live
                if self.max_concurrent is None
                else live[: self.max_concurrent]
            )
            order = self._ordering(admitted)
            for session in order:
                if session.finished:
                    continue
                if session.cooldown > 0:
                    session.cooldown -= 1
                    progressed = True
                    continue
                if self.wait_policy == "event" and session.waiting:
                    # parked in the wait index: a commit/abort notification
                    # will clear the flag — no point re-asking the protocol.
                    continue
                advanced, aborted = self._advance(session)
                if aborted:
                    aborted_attempts += 1
                    if session.attempts >= self.max_attempts:
                        session.given_up = True
                    else:
                        restarts += 1
                        self.kernel.restart(session)
                if advanced or aborted:
                    progressed = True
                if self.interleaving == "serial" and not session.finished:
                    # keep driving the same transaction until it finishes
                    while not session.finished:
                        advanced, aborted = self._advance(session)
                        if aborted:
                            aborted_attempts += 1
                            if session.attempts >= self.max_attempts:
                                session.given_up = True
                            else:
                                restarts += 1
                                self.kernel.restart(session)
                        if not advanced and not aborted:
                            break
                    progressed = True
            live = [s for s in sessions if not s.finished]
            if live and not (progressed or self._woke_session):
                raise ExecutionStuck(
                    f"no progress with {len(live)} live transactions under "
                    f"{self.protocol.name}"
                )

        per_transaction = {
            f"{s.spec.name}#{s.session_id}": {
                "attempts": s.attempts,
                "blocks": s.blocks,
                "operations": s.operations_issued,
                "committed": int(s.committed),
            }
            for s in sessions
        }
        return ExecutionResult(
            protocol_name=self.protocol.name,
            committed=sum(1 for s in sessions if s.committed),
            aborted_attempts=aborted_attempts,
            restarts=restarts,
            gave_up=sum(1 for s in sessions if s.given_up),
            operations_issued=sum(s.operations_issued for s in sessions),
            blocks=sum(s.blocks for s in sessions),
            store_snapshot=self.protocol.store.snapshot(),
            committed_serializable=self.protocol.committed_history_serializable(),
            per_transaction=per_transaction,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note_wake(self, session: Session) -> None:
        self._woke_session = True

    def _ordering(self, live: List[Session]) -> List[Session]:
        if self.interleaving == "random":
            order = list(live)
            self.rng.shuffle(order)
            return order
        return list(live)

    def _advance(self, session: Session) -> Tuple[bool, bool]:
        """Advance a session by one kernel step.

        Returns ``(progressed, aborted_this_attempt)``.
        """
        result = self.kernel.step(session)
        if result.kind is StepKind.BLOCKED:
            # an injected stall is itself an event (the plan advanced),
            # so it counts as progress — otherwise a round in which every
            # live session drew a stall would trip the stuck detector
            return result.fault is not None, False
        if result.kind is StepKind.ABORTED:
            return True, True
        return True, False


def run_batch(
    protocol_factory,
    store: DataStore,
    specs: Sequence[TransactionSpec],
    interleaving: str = "round-robin",
    seed: Optional[int] = None,
    max_attempts: int = 50,
    max_concurrent: Optional[int] = None,
    wait_policy: str = "event",
    fault_plan: Optional[FaultPlan] = None,
) -> ExecutionResult:
    """Convenience helper: build the protocol on ``store`` and run the batch."""
    protocol = protocol_factory(store)
    executor = TransactionExecutor(
        protocol,
        max_attempts=max_attempts,
        interleaving=interleaving,
        seed=seed,
        max_concurrent=max_concurrent,
        wait_policy=wait_policy,
        fault_plan=fault_plan,
    )
    return executor.run(specs)


# ----------------------------------------------------------------------
# sharded execution: one protocol instance per conflict domain
# ----------------------------------------------------------------------


@dataclass
class ShardedExecutionResult:
    """Aggregate of per-shard executions over a :class:`ShardedDataStore`."""

    per_shard: Dict[int, ExecutionResult]
    store_snapshot: Dict[str, Any]

    @property
    def committed(self) -> int:
        return sum(r.committed for r in self.per_shard.values())

    @property
    def restarts(self) -> int:
        return sum(r.restarts for r in self.per_shard.values())

    @property
    def blocks(self) -> int:
        return sum(r.blocks for r in self.per_shard.values())

    @property
    def gave_up(self) -> int:
        return sum(r.gave_up for r in self.per_shard.values())

    @property
    def committed_serializable(self) -> bool:
        return all(r.committed_serializable for r in self.per_shard.values())

    def merged_metrics(self) -> Metrics:
        merged = Metrics()
        for result in self.per_shard.values():
            if result.metrics is not None:
                merged.merge(result.metrics)
        return merged


def run_sharded_batch(
    protocol_factory,
    store: ShardedDataStore,
    specs: Sequence[TransactionSpec],
    interleaving: str = "round-robin",
    seed: Optional[int] = None,
    max_attempts: int = 50,
    max_concurrent: Optional[int] = None,
    wait_policy: str = "event",
) -> ShardedExecutionResult:
    """Execute a batch with one protocol instance per shard.

    Each shard of a :class:`~repro.engine.storage.ShardedDataStore` is an
    independent conflict domain: transactions confined to one shard never
    conflict with transactions on another, so each shard gets its own
    protocol instance over its own sub-store and the shards execute
    independently.  A spec whose footprint spans shards is rejected —
    cross-shard transactions would need a commit coordinator, which the
    single-scheduler model of the paper deliberately excludes.
    """
    groups: Dict[int, List[TransactionSpec]] = {}
    for spec in specs:
        touched = set(spec.keys_read()) | set(spec.keys_written())
        shards = {store.shard_of(key) for key in touched}
        if len(shards) != 1:
            raise ValueError(
                f"transaction {spec.name!r} spans shards {sorted(shards)}; "
                "sharded execution requires single-shard transactions"
            )
        groups.setdefault(shards.pop(), []).append(spec)

    per_shard: Dict[int, ExecutionResult] = {}
    for shard_index in sorted(groups):
        shard_seed = None if seed is None else seed + shard_index
        per_shard[shard_index] = run_batch(
            protocol_factory,
            store.shard(shard_index),
            groups[shard_index],
            interleaving=interleaving,
            seed=shard_seed,
            max_attempts=max_attempts,
            max_concurrent=max_concurrent,
            wait_policy=wait_policy,
        )
    # report committed values from the protocols' own stores: a factory
    # may wrap a shard (multi-version protocols over plain shards via
    # ensure_multiversion), in which case the caller's store never sees
    # the commits — the overlay keeps untouched shards' keys while
    # preferring what actually ran
    merged_snapshot = store.snapshot()
    for result in per_shard.values():
        merged_snapshot.update(result.store_snapshot)
    return ShardedExecutionResult(
        per_shard=per_shard, store_snapshot=merged_snapshot
    )
