"""The untimed transaction executor.

:class:`TransactionExecutor` runs a batch of
:class:`~repro.engine.operations.TransactionSpec` concurrently (logically
interleaved) under any online protocol, handling blocking, aborting and
restarting, and reports what happened.  It is the engine's workhorse for
correctness testing and for "how many requests had to wait / abort"
counting; the timed view (arrivals, latencies) lives in
:mod:`repro.engine.simulator`.

Interleaving is controlled by ``interleaving``:

* ``"round-robin"`` — each live transaction advances one operation per
  round (the densest fair interleaving);
* ``"random"`` — the next transaction to advance is drawn uniformly using
  the supplied seed (matches the paper's "requests arrive in any order");
* ``"serial"`` — each transaction runs to completion before the next
  starts (the baseline of Section 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.operations import Operation, OperationKind, TransactionSpec
from repro.engine.protocols.base import ConcurrencyControl, Decision, TransactionAborted
from repro.engine.storage import DataStore


class ExecutionStuck(RuntimeError):
    """Raised if no live transaction can make progress (should not happen)."""


@dataclass
class _Session:
    """The executor's view of one submitted transaction (across restarts)."""

    spec: TransactionSpec
    session_id: int
    txn_id: Optional[int] = None
    op_index: int = 0
    reads: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 0
    committed: bool = False
    given_up: bool = False
    blocks: int = 0
    operations_issued: int = 0
    #: rounds to sit out after an abort (linear backoff breaks livelock
    #: patterns where restarting transactions keep recreating the same
    #: deadlock against each other)
    cooldown: int = 0

    def reset_for_restart(self) -> None:
        self.txn_id = None
        self.op_index = 0
        self.reads = {}
        self.cooldown = self.attempts


@dataclass
class ExecutionResult:
    """What happened when a batch of transactions was executed."""

    protocol_name: str
    committed: int
    aborted_attempts: int
    restarts: int
    gave_up: int
    operations_issued: int
    blocks: int
    store_snapshot: Dict[str, Any]
    committed_serializable: bool
    per_transaction: Dict[str, Dict[str, int]]

    @property
    def total_submitted(self) -> int:
        return self.committed + self.gave_up

    @property
    def abort_rate(self) -> float:
        attempts = self.committed + self.aborted_attempts
        return self.aborted_attempts / attempts if attempts else 0.0

    def summary(self) -> str:
        return (
            f"{self.protocol_name}: committed={self.committed} "
            f"restarts={self.restarts} blocks={self.blocks} "
            f"abort_rate={self.abort_rate:.2%} serializable={self.committed_serializable}"
        )


class TransactionExecutor:
    """Run transaction programs concurrently under an online protocol."""

    def __init__(
        self,
        protocol: ConcurrencyControl,
        max_attempts: int = 50,
        interleaving: str = "round-robin",
        seed: Optional[int] = None,
        max_concurrent: Optional[int] = None,
    ) -> None:
        if interleaving not in ("round-robin", "random", "serial"):
            raise ValueError(
                "interleaving must be 'round-robin', 'random' or 'serial'"
            )
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        self.protocol = protocol
        self.max_attempts = max_attempts
        self.interleaving = interleaving
        #: multiprogramming level: how many transactions may be in flight at
        #: once (None = all submitted transactions run concurrently).
        self.max_concurrent = max_concurrent
        self.rng = random.Random(seed)
        self._next_txn_id = 1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TransactionSpec]) -> ExecutionResult:
        """Execute all specs to completion (commit or giving up) and report."""
        sessions = [_Session(spec=spec, session_id=i) for i, spec in enumerate(specs)]
        restarts = 0
        aborted_attempts = 0

        live = list(sessions)
        while live:
            progressed = False
            admitted = (
                live
                if self.max_concurrent is None
                else live[: self.max_concurrent]
            )
            order = self._ordering(admitted)
            for session in order:
                if session.committed or session.given_up:
                    continue
                if session.cooldown > 0:
                    session.cooldown -= 1
                    progressed = True
                    continue
                advanced, aborted = self._advance(session)
                if aborted:
                    aborted_attempts += 1
                    if session.attempts >= self.max_attempts:
                        session.given_up = True
                    else:
                        restarts += 1
                        session.reset_for_restart()
                if advanced or aborted:
                    progressed = True
                if self.interleaving == "serial" and not (
                    session.committed or session.given_up
                ):
                    # keep driving the same transaction until it finishes
                    while not (session.committed or session.given_up):
                        advanced, aborted = self._advance(session)
                        if aborted:
                            aborted_attempts += 1
                            if session.attempts >= self.max_attempts:
                                session.given_up = True
                            else:
                                restarts += 1
                                session.reset_for_restart()
                        if not advanced and not aborted:
                            break
                    progressed = True
            live = [s for s in sessions if not (s.committed or s.given_up)]
            if live and not progressed:
                raise ExecutionStuck(
                    f"no progress with {len(live)} live transactions under "
                    f"{self.protocol.name}"
                )

        per_transaction = {
            f"{s.spec.name}#{s.session_id}": {
                "attempts": s.attempts,
                "blocks": s.blocks,
                "operations": s.operations_issued,
                "committed": int(s.committed),
            }
            for s in sessions
        }
        return ExecutionResult(
            protocol_name=self.protocol.name,
            committed=sum(1 for s in sessions if s.committed),
            aborted_attempts=aborted_attempts,
            restarts=restarts,
            gave_up=sum(1 for s in sessions if s.given_up),
            operations_issued=sum(s.operations_issued for s in sessions),
            blocks=sum(s.blocks for s in sessions),
            store_snapshot=self.protocol.store.snapshot(),
            committed_serializable=self.protocol.committed_history_serializable(),
            per_transaction=per_transaction,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ordering(self, live: List[_Session]) -> List[_Session]:
        if self.interleaving == "random":
            order = list(live)
            self.rng.shuffle(order)
            return order
        return list(live)

    def _advance(self, session: _Session) -> Tuple[bool, bool]:
        """Advance a session by one protocol interaction.

        Returns ``(progressed, aborted_this_attempt)``.
        """
        if session.txn_id is None:
            session.txn_id = self._next_txn_id
            self._next_txn_id += 1
            session.attempts += 1
            self.protocol.begin(session.txn_id)
            return True, False

        txn_id = session.txn_id
        if session.op_index >= len(session.spec):
            decision = self.protocol.commit(txn_id)
            if decision.granted:
                session.committed = True
                return True, False
            if decision.blocked:
                session.blocks += 1
                return False, False
            self.protocol.abort(txn_id)
            return True, True

        operation = session.spec.operations[session.op_index]
        decision = self._issue(txn_id, operation, session)
        session.operations_issued += 1
        if decision.granted:
            session.op_index += 1
            return True, False
        if decision.blocked:
            session.blocks += 1
            return False, False
        self.protocol.abort(txn_id)
        return True, True

    def _issue(
        self, txn_id: int, operation: Operation, session: _Session
    ) -> Decision:
        if operation.kind is OperationKind.READ:
            decision = self.protocol.read(txn_id, operation.key)
            if decision.granted:
                session.reads[operation.key] = decision.value
            return decision
        if operation.kind is OperationKind.UPDATE:
            decision = self.protocol.read(txn_id, operation.key)
            if not decision.granted:
                return decision
            session.reads[operation.key] = decision.value
            new_value = operation.transform(dict(session.reads))
            return self.protocol.write(txn_id, operation.key, new_value)
        # blind write
        new_value = operation.transform(dict(session.reads))
        return self.protocol.write(txn_id, operation.key, new_value)


def run_batch(
    protocol_factory,
    store: DataStore,
    specs: Sequence[TransactionSpec],
    interleaving: str = "round-robin",
    seed: Optional[int] = None,
    max_attempts: int = 50,
    max_concurrent: Optional[int] = None,
) -> ExecutionResult:
    """Convenience helper: build the protocol on ``store`` and run the batch."""
    protocol = protocol_factory(store)
    executor = TransactionExecutor(
        protocol,
        max_attempts=max_attempts,
        interleaving=interleaving,
        seed=seed,
        max_concurrent=max_concurrent,
    )
    return executor.run(specs)
