"""Multi-version storage: per-key version chains with snapshot reads.

Kung & Papadimitriou's optimality results bound a scheduler's achievable
concurrency by the *information* it exploits.  Keeping old versions is
the classic way to buy more information cheaply: a multi-version store
can answer "what did ``x`` look like at time ``ts``?" for any timestamp
still covered by its chains, which lets multi-version protocols serve
readers from the past instead of blocking or aborting them.  This module
provides that substrate:

* :class:`VersionRecord` — one committed version: value, the timestamp
  interval ``[begin_ts, end_ts)`` during which it is the visible
  version, and the committing writer;
* :class:`MultiVersionDataStore` — per-key chains of version records,
  ordered by ``begin_ts``, with snapshot reads (:meth:`read_as_of`),
  version installation at arbitrary timestamps (MVTO installs at the
  writer's *start* timestamp, snapshot isolation at its *commit*
  timestamp), and a watermark-based garbage collector;
* :class:`ShardedMultiVersionDataStore` — the sharded composition: a
  :class:`~repro.engine.storage.ShardedDataStore` whose shards are
  multi-version stores, so per-shard protocol instances (see
  :func:`repro.engine.runtime.run_sharded_batch`) get snapshot reads
  within their conflict domain.

The store also implements the single-version :class:`~repro.engine.
storage.DataStore` facade (``read``/``write``/``apply_writes``/
``snapshot``/...), so it can be dropped in anywhere a plain store is
expected: single-version protocols simply always see the newest version.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.engine.storage import DataStore, ShardedDataStore, StorageError, Version


class VersionRecord:
    """One committed version of a key.

    The version is the visible one for every timestamp in
    ``[begin_ts, end_ts)``; ``end_ts is None`` means it is still current.
    ``writer`` is the committing transaction (``None`` for the initial
    load).

    Slotted: one record per committed write under the multi-version
    protocols, read on every snapshot probe.  Immutable — the store
    replaces a record (:meth:`closed_at`) instead of mutating it, and
    records may be shared by concurrent snapshot readers and held in
    hashed collections.
    """

    __slots__ = ("value", "begin_ts", "end_ts", "writer")

    def __init__(
        self,
        value: Any,
        begin_ts: Any,
        end_ts: Optional[Any] = None,
        writer: Optional[int] = None,
    ) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "begin_ts", begin_ts)
        object.__setattr__(self, "end_ts", end_ts)
        object.__setattr__(self, "writer", writer)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("VersionRecord is immutable (use closed_at)")

    def visible_at(self, ts: Any) -> bool:
        return self.begin_ts <= ts and (self.end_ts is None or ts < self.end_ts)

    def closed_at(self, end_ts: Any) -> "VersionRecord":
        """A copy of this record whose visibility interval ends at ``end_ts``."""
        return VersionRecord(self.value, self.begin_ts, end_ts, self.writer)

    def __repr__(self) -> str:
        return (
            f"VersionRecord(value={self.value!r}, begin_ts={self.begin_ts!r}, "
            f"end_ts={self.end_ts!r}, writer={self.writer!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, VersionRecord):
            return NotImplemented
        return (
            self.value == other.value
            and self.begin_ts == other.begin_ts
            and self.end_ts == other.end_ts
            and self.writer == other.writer
        )

    def __hash__(self) -> int:
        return hash((self.begin_ts, self.end_ts, self.writer))


class VersionedRead:
    """One read observation: which transaction read which version of a key.

    ``writer`` identifies the version by its committing transaction
    (``None`` = the initial version).  Multi-version protocols log these
    so the MVSG checker (:mod:`repro.analysis.mvsg`) can rebuild the
    reads-from relation of the actual execution.  Slotted and immutable:
    one record per multi-version read.
    """

    __slots__ = ("txn_id", "key", "writer")

    def __init__(self, txn_id: int, key: str, writer: Optional[int]) -> None:
        object.__setattr__(self, "txn_id", txn_id)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "writer", writer)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("VersionedRead is immutable")

    def __repr__(self) -> str:
        return f"VersionedRead({self.txn_id!r}, {self.key!r}, {self.writer!r})"

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, VersionedRead):
            return NotImplemented
        return (
            self.txn_id == other.txn_id
            and self.key == other.key
            and self.writer == other.writer
        )

    def __hash__(self) -> int:
        return hash((self.txn_id, self.key, self.writer))


class MultiVersionDataStore:
    """An in-memory store keeping a chain of versions per key.

    Parameters
    ----------
    initial:
        Initial contents; every key gets one initial version with
        ``begin_ts == initial_ts`` and no writer.
    initial_ts:
        Timestamp of the initial versions (default 0; protocol
        timestamps start above it).
    """

    def __init__(
        self,
        initial: Optional[Mapping[str, Any]] = None,
        initial_ts: Any = 0,
    ) -> None:
        self.initial_ts = initial_ts
        self._chains: Dict[str, List[VersionRecord]] = {}
        #: parallel begin_ts lists for bisection (py3.9 bisect lacks key=)
        self._begins: Dict[str, List[Any]] = {}
        #: monotone count of versions installed per key (survives GC)
        self._installs: Dict[str, int] = {}
        self.versions_collected = 0
        if initial:
            for key, value in initial.items():
                self._chains[key] = [VersionRecord(value, initial_ts, None, None)]
                self._begins[key] = [initial_ts]
                self._installs[key] = 0

    # ------------------------------------------------------------------
    # multi-version reads
    # ------------------------------------------------------------------
    def _chain(self, key: str) -> List[VersionRecord]:
        chain = self._chains.get(key)
        if chain is None:
            raise StorageError(f"key {key!r} was never initialised")
        return chain

    def read_as_of(self, key: str, ts: Any) -> VersionRecord:
        """The version of ``key`` visible at timestamp ``ts``.

        Raises :class:`~repro.engine.storage.StorageError` if the key is
        unknown or every version at or below ``ts`` has been garbage
        collected (callers must keep their watermark below any snapshot
        still in use).
        """
        chain = self._chain(key)
        index = bisect_right(self._begins[key], ts) - 1
        if index < 0:
            raise StorageError(
                f"no version of {key!r} visible at ts {ts!r} "
                f"(earliest surviving version begins at {chain[0].begin_ts!r})"
            )
        return chain[index]

    def latest(self, key: str) -> VersionRecord:
        """The newest version of ``key``."""
        return self._chain(key)[-1]

    def version_chain(self, key: str) -> Tuple[VersionRecord, ...]:
        """The surviving version chain of ``key``, oldest first."""
        return tuple(self._chain(key))

    def version_order(self, key: str) -> Tuple[Optional[int], ...]:
        """The writers of the surviving chain in version order."""
        return tuple(record.writer for record in self._chain(key))

    def snapshot_as_of(self, ts: Any) -> Dict[str, Any]:
        """A consistent value snapshot of every key at timestamp ``ts``."""
        return {key: self.read_as_of(key, ts).value for key in self._chains}

    def max_timestamp(self) -> Any:
        """The largest ``begin_ts`` of any version (``initial_ts`` if empty).

        Protocols seed their timestamp/commit clocks above this, so a
        store that already carries versions — e.g. one reused across
        batches — never collides with or hides the new installs.
        """
        newest = self.initial_ts
        for chain in self._chains.values():
            if chain[-1].begin_ts > newest:
                newest = chain[-1].begin_ts
        return newest

    # ------------------------------------------------------------------
    # version installation
    # ------------------------------------------------------------------
    def install(
        self, key: str, value: Any, ts: Any, writer: Optional[int] = None
    ) -> VersionRecord:
        """Install a committed version of ``key`` at timestamp ``ts``.

        The chain stays ordered by ``begin_ts``; installing *between*
        existing versions is legal (MVTO writers install at their start
        timestamp, which may lie below versions committed by younger
        transactions) and splices the interval bookkeeping accordingly.
        """
        chain = self._chains.get(key)
        if chain is None:
            record = VersionRecord(value, ts, None, writer)
            self._chains[key] = [record]
            self._begins[key] = [ts]
            self._installs[key] = self._installs.get(key, 0) + 1
            return record
        begins = self._begins[key]
        index = bisect_right(begins, ts)
        if index > 0 and begins[index - 1] == ts:
            raise ValueError(
                f"a version of {key!r} at ts {ts!r} already exists "
                f"(written by {chain[index - 1].writer})"
            )
        end_ts = chain[index].begin_ts if index < len(chain) else None
        record = VersionRecord(value, ts, end_ts, writer)
        chain.insert(index, record)
        begins.insert(index, ts)
        if index > 0:
            chain[index - 1] = chain[index - 1].closed_at(ts)
        self._installs[key] = self._installs.get(key, 0) + 1
        return record

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def collect_garbage(self, watermark: Any) -> int:
        """Drop versions invisible to every snapshot at or above ``watermark``.

        A version is reclaimable once it was superseded at or before the
        watermark (``end_ts <= watermark``): no reader with a snapshot
        timestamp ``>= watermark`` can ever see it again.  The version
        visible *at* the watermark, and everything newer, survives.
        Returns the number of versions reclaimed.
        """
        dropped = 0
        for key, chain in self._chains.items():
            kept = [
                record
                for record in chain
                if record.end_ts is None or record.end_ts > watermark
            ]
            if len(kept) != len(chain):
                dropped += len(chain) - len(kept)
                self._chains[key] = kept
                self._begins[key] = [record.begin_ts for record in kept]
        self.versions_collected += dropped
        return dropped

    # ------------------------------------------------------------------
    # DataStore facade (single-version protocols see the newest version)
    # ------------------------------------------------------------------
    def read(self, key: str) -> Any:
        return self.latest(key).value

    def read_version(self, key: str) -> Version:
        record = self.latest(key)
        return Version(
            value=record.value,
            version=self._installs.get(key, 0),
            writer=record.writer,
        )

    def version_number(self, key: str) -> int:
        self._chain(key)  # raise on unknown keys, like DataStore
        return self._installs.get(key, 0)

    def write(self, key: str, value: Any, writer: Optional[int] = None) -> VersionRecord:
        """Install a new version one tick above the current newest."""
        chain = self._chains.get(key)
        ts = self.initial_ts if not chain else chain[-1].begin_ts + 1
        return self.install(key, value, ts, writer=writer)

    def apply_writes(
        self, writes: Mapping[str, Any], writer: Optional[int] = None
    ) -> None:
        for key, value in writes.items():
            self.write(key, value, writer=writer)

    def keys(self) -> Iterator[str]:
        return iter(self._chains)

    def __contains__(self, key: str) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def total_versions(self) -> int:
        """Number of version records currently held (GC shrinks this)."""
        return sum(len(chain) for chain in self._chains.values())

    def total_versions_written(self) -> int:
        """Total versions ever installed on top of the initial load."""
        return sum(self._installs.values())

    def snapshot(self) -> Dict[str, Any]:
        """A plain dict of the newest value of every key."""
        return {key: chain[-1].value for key, chain in self._chains.items()}

    def copy(self) -> "MultiVersionDataStore":
        clone = MultiVersionDataStore(initial_ts=self.initial_ts)
        clone._chains = {key: list(chain) for key, chain in self._chains.items()}
        clone._begins = {key: list(begins) for key, begins in self._begins.items()}
        clone._installs = dict(self._installs)
        clone.versions_collected = self.versions_collected
        return clone


def ensure_multiversion(store: Any) -> Any:
    """Return ``store`` if it supports snapshot reads, else wrap its contents.

    Multi-version protocols call this so they can be constructed over a
    plain :class:`~repro.engine.storage.DataStore` (the form every
    ``protocol_factory(store)`` call site produces): the committed values
    become the initial versions of a fresh multi-version store.

    The wrap *copies* the contents — commits land in the wrapped store,
    not the original.  Read results back from ``protocol.store`` (which
    is what :func:`~repro.engine.runtime.run_batch` and
    :func:`~repro.engine.runtime.run_sharded_batch` report snapshots
    from); to share one store across batches, construct a
    :class:`MultiVersionDataStore` yourself and pass it in.
    """
    if hasattr(store, "read_as_of"):
        return store
    return MultiVersionDataStore(store.snapshot())


class ShardedMultiVersionDataStore(ShardedDataStore):
    """A sharded store whose shards keep version chains.

    Composes :class:`MultiVersionDataStore` with the sharding facade:
    keys partition into independent conflict domains exactly as in
    :class:`~repro.engine.storage.ShardedDataStore`, and each shard
    additionally answers snapshot reads, so one multi-version protocol
    instance per shard (via :func:`repro.engine.runtime.run_sharded_batch`)
    gets the full multi-version API on its own sub-store.
    """

    def __init__(
        self,
        initial: Optional[Mapping[str, Any]] = None,
        num_shards: int = 4,
        shard_of: Optional[Any] = None,
        initial_ts: Any = 0,
    ) -> None:
        self.initial_ts = initial_ts
        super().__init__(
            initial,
            num_shards=num_shards,
            shard_of=shard_of,
            shard_factory=lambda data: MultiVersionDataStore(data, initial_ts=initial_ts),
        )

    # ------------------------------------------------------------------
    # multi-version facade (delegates to the owning shard)
    # ------------------------------------------------------------------
    def read_as_of(self, key: str, ts: Any) -> VersionRecord:
        return self.shard_for(key).read_as_of(key, ts)

    def latest(self, key: str) -> VersionRecord:
        return self.shard_for(key).latest(key)

    def version_chain(self, key: str) -> Tuple[VersionRecord, ...]:
        return self.shard_for(key).version_chain(key)

    def version_order(self, key: str) -> Tuple[Optional[int], ...]:
        return self.shard_for(key).version_order(key)

    def install(
        self, key: str, value: Any, ts: Any, writer: Optional[int] = None
    ) -> VersionRecord:
        return self.shard_for(key).install(key, value, ts, writer=writer)

    def collect_garbage(self, watermark: Any) -> int:
        return sum(shard.collect_garbage(watermark) for shard in self.shards())

    def total_versions(self) -> int:
        return sum(shard.total_versions() for shard in self.shards())

    def max_timestamp(self) -> Any:
        return max(shard.max_timestamp() for shard in self.shards())
