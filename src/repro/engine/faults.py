"""Deterministic fault injection for the engine kernel.

The conformance harness (:mod:`repro.harness`) hunts for interleaving
windows in which a protocol's bookkeeping and the actual history drift
apart.  Many of those windows only open when something goes *wrong* at
an awkward moment — a client dies just before commit, a commit or
validation is delayed long enough for a rival to slip past, a busy shard
stalls while the rest of the system races ahead.  This module provides
the engine-level hook that manufactures those moments **reproducibly**:

* :class:`FaultSpec` — the declarative description of an injection
  campaign (probabilities, shard bias, caps, seed);
* :class:`FaultPlan` — the stateful interpreter the
  :class:`~repro.engine.kernel.EngineKernel` consults once per protocol
  interaction.  All randomness comes from one private ``random.Random``
  seeded by the spec, and the kernel consults the plan at deterministic
  points, so the same (engine seed, fault seed) pair replays the same
  injections byte-for-byte — a failing fuzzer seed is a complete
  reproduction recipe.

Only *safe* faults are injected: forcing an attempt to abort and
delaying a request are both actions a correct protocol must tolerate at
any time, so every correctness oracle must still pass under an arbitrary
fault plan.  (Faults that could genuinely corrupt state — torn writes,
lost notifications — would be bugs in the engine, not scenarios.)

The kernel skips injection on the read-only fast path (fast-path
sessions can neither block nor abort by contract) and while a session is
mid-validation in a two-stage commit (the pipeline owns the attempt).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

#: interaction stages a fault can intercept
OPERATION_STAGE = "operation"
COMMIT_STAGE = "commit"

#: actions a plan may request
ABORT_ACTION = "abort"
STALL_ACTION = "stall"


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a deterministic injection campaign.

    Parameters
    ----------
    abort_probability:
        Chance that an interaction is answered with a forced client
        abort (the transaction attempt aborts and restarts as usual).
    stall_probability:
        Chance that a *data operation* is stalled: the request is
        answered BLOCK without being parked, so the caller retries on
        its own schedule (next round for the executor, one
        ``retry_interval`` later for the simulator).
    commit_stall_probability:
        Same, for *commit* interactions — this is what delays commits
        and validations into their rivals' windows.
    biased_keys:
        Keys whose operations stall ``bias_multiplier`` times more often
        — the "one hot shard is slow" shape.
    bias_multiplier:
        Stall-probability multiplier for ``biased_keys``.
    max_injections:
        Overall cap on injected faults (``None`` = unlimited).  Keeps a
        hostile plan from starving a run outright.
    seed:
        Seed of the plan's private RNG.
    """

    abort_probability: float = 0.0
    stall_probability: float = 0.0
    commit_stall_probability: float = 0.0
    biased_keys: FrozenSet[str] = frozenset()
    bias_multiplier: float = 4.0
    max_injections: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("abort_probability", "stall_probability", "commit_stall_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.bias_multiplier < 0:
            raise ValueError("bias_multiplier must be non-negative")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the counterexample report."""

    index: int
    txn_id: int
    stage: str
    key: Optional[str]
    action: str

    def __str__(self) -> str:
        where = f" on {self.key!r}" if self.key is not None else ""
        return f"#{self.index}: {self.action} T{self.txn_id} at {self.stage}{where}"


class FaultPlan:
    """The stateful injector the kernel consults once per interaction.

    One plan instance belongs to one run: it owns a private RNG and an
    append-only event log.  Constructing a fresh plan from the same
    :class:`FaultSpec` replays the identical injection sequence as long
    as the engine drives it through the same interaction sequence —
    which the deterministic executor/simulator guarantee for a fixed
    engine seed.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._consults = 0
        self.events: List[FaultEvent] = []

    @property
    def injections(self) -> int:
        return len(self.events)

    def intercept(self, txn_id: int, stage: str, key: Optional[str]) -> Optional[str]:
        """Decide the fate of one interaction; ``None`` = no fault.

        Exactly one RNG draw per consultation keeps the decision stream
        a pure function of the spec seed and the consultation order.
        """
        self._consults += 1
        roll = self._rng.random()
        spec = self.spec
        if spec.max_injections is not None and len(self.events) >= spec.max_injections:
            return None
        if stage == COMMIT_STAGE:
            stall_probability = spec.commit_stall_probability
        else:
            stall_probability = spec.stall_probability
            if key is not None and key in spec.biased_keys:
                stall_probability = min(1.0, stall_probability * spec.bias_multiplier)
        action: Optional[str] = None
        if roll < spec.abort_probability:
            action = ABORT_ACTION
        elif roll < spec.abort_probability + stall_probability:
            action = STALL_ACTION
        if action is not None:
            self.events.append(
                FaultEvent(self._consults, txn_id, stage, key, action)
            )
        return action


def plan_from(spec: Optional[FaultSpec]) -> Optional[FaultPlan]:
    """A fresh plan for ``spec``, or ``None`` for fault-free runs."""
    return None if spec is None else FaultPlan(spec)
