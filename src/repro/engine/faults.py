"""Deterministic fault injection for the engine kernel.

The conformance harness (:mod:`repro.harness`) hunts for interleaving
windows in which a protocol's bookkeeping and the actual history drift
apart.  Many of those windows only open when something goes *wrong* at
an awkward moment — a client dies just before commit, a commit or
validation is delayed long enough for a rival to slip past, a busy shard
stalls while the rest of the system races ahead.  This module provides
the engine-level hook that manufactures those moments **reproducibly**:

* :class:`FaultSpec` — the declarative description of an injection
  campaign (probabilities, shard bias, caps, seed);
* :class:`FaultPlan` — the stateful interpreter the
  :class:`~repro.engine.kernel.EngineKernel` consults once per protocol
  interaction.  All randomness comes from one private ``random.Random``
  seeded by the spec, and the kernel consults the plan at deterministic
  points, so the same (engine seed, fault seed) pair replays the same
  injections byte-for-byte — a failing fuzzer seed is a complete
  reproduction recipe.

Only *safe* faults are injected: forcing an attempt to abort and
delaying a request are both actions a correct protocol must tolerate at
any time, so every correctness oracle must still pass under an arbitrary
fault plan.  (Faults that could genuinely corrupt state — torn writes,
lost notifications — would be bugs in the engine, not scenarios.)

The kernel skips injection on the read-only fast path (fast-path
sessions can neither block nor abort by contract) and while a session is
mid-validation in a two-stage commit (the pipeline owns the attempt).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

#: interaction stages a fault can intercept
OPERATION_STAGE = "operation"
COMMIT_STAGE = "commit"

#: actions a plan may request
ABORT_ACTION = "abort"
STALL_ACTION = "stall"


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a deterministic injection campaign.

    Parameters
    ----------
    abort_probability:
        Chance that an interaction is answered with a forced client
        abort (the transaction attempt aborts and restarts as usual).
    stall_probability:
        Chance that a *data operation* is stalled: the request is
        answered BLOCK without being parked, so the caller retries on
        its own schedule (next round for the executor, one
        ``retry_interval`` later for the simulator).
    commit_stall_probability:
        Same, for *commit* interactions — this is what delays commits
        and validations into their rivals' windows.
    biased_keys:
        Keys whose operations stall ``bias_multiplier`` times more often
        — the "one hot shard is slow" shape.
    bias_multiplier:
        Stall-probability multiplier for ``biased_keys``.
    max_injections:
        Overall cap on injected faults (``None`` = unlimited).  Keeps a
        hostile plan from starving a run outright.
    seed:
        Seed of the plan's private RNG.
    """

    abort_probability: float = 0.0
    stall_probability: float = 0.0
    commit_stall_probability: float = 0.0
    biased_keys: FrozenSet[str] = frozenset()
    bias_multiplier: float = 4.0
    max_injections: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("abort_probability", "stall_probability", "commit_stall_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.bias_multiplier < 0:
            raise ValueError("bias_multiplier must be non-negative")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the counterexample report."""

    index: int
    txn_id: int
    stage: str
    key: Optional[str]
    action: str

    def __str__(self) -> str:
        where = f" on {self.key!r}" if self.key is not None else ""
        return f"#{self.index}: {self.action} T{self.txn_id} at {self.stage}{where}"


class FaultPlan:
    """The stateful injector the kernel consults once per interaction.

    One plan instance belongs to one run: it owns a private RNG and an
    append-only event log.  Constructing a fresh plan from the same
    :class:`FaultSpec` replays the identical injection sequence as long
    as the engine drives it through the same interaction sequence —
    which the deterministic executor/simulator guarantee for a fixed
    engine seed.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._consults = 0
        self.events: List[FaultEvent] = []

    @property
    def injections(self) -> int:
        return len(self.events)

    def intercept(self, txn_id: int, stage: str, key: Optional[str]) -> Optional[str]:
        """Decide the fate of one interaction; ``None`` = no fault.

        Exactly one RNG draw per consultation keeps the decision stream
        a pure function of the spec seed and the consultation order.
        """
        self._consults += 1
        roll = self._rng.random()
        spec = self.spec
        if spec.max_injections is not None and len(self.events) >= spec.max_injections:
            return None
        if stage == COMMIT_STAGE:
            stall_probability = spec.commit_stall_probability
        else:
            stall_probability = spec.stall_probability
            if key is not None and key in spec.biased_keys:
                stall_probability = min(1.0, stall_probability * spec.bias_multiplier)
        action: Optional[str] = None
        if roll < spec.abort_probability:
            action = ABORT_ACTION
        elif roll < spec.abort_probability + stall_probability:
            action = STALL_ACTION
        if action is not None:
            self.events.append(
                FaultEvent(self._consults, txn_id, stage, key, action)
            )
        return action


def plan_from(spec: Optional[FaultSpec]) -> Optional[FaultPlan]:
    """A fresh plan for ``spec``, or ``None`` for fault-free runs."""
    return None if spec is None else FaultPlan(spec)


# ----------------------------------------------------------------------
# network faults: the simulated-network counterpart of FaultSpec/FaultPlan
# ----------------------------------------------------------------------

#: actions a network plan may request for one message send
DROP_ACTION = "drop"
DUPLICATE_ACTION = "duplicate"


@dataclass(frozen=True)
class PartitionWindow:
    """A virtual-time interval during which a node group is cut off.

    Messages between an ``isolated`` node and any node outside the group
    are dropped while ``start <= now < end`` (messages *within* the
    isolated group still flow — it is a partition, not a crash).
    """

    start: float
    end: float
    isolated: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise ValueError(
                f"partition window times must be non-negative, got "
                f"[{self.start!r}, {self.end!r})"
            )
        if self.end < self.start:
            raise ValueError(
                f"partition window must have start <= end, got "
                f"[{self.start!r}, {self.end!r})"
            )
        object.__setattr__(self, "isolated", frozenset(self.isolated))

    def severs(self, src: str, dst: str, now: float) -> bool:
        """Whether this window drops a ``src -> dst`` message at ``now``."""
        if not self.start <= now < self.end:
            return False
        return (src in self.isolated) != (dst in self.isolated)


@dataclass(frozen=True)
class NetworkFaultSpec:
    """Declarative description of a deterministic network-chaos campaign.

    The simulated network (:mod:`repro.dist.network`) consults the
    matching :class:`NetworkFaultPlan` once per message send, exactly as
    the engine kernel consults a :class:`FaultPlan` once per protocol
    interaction — same replay contract, same one-draw-per-consult rule.

    Parameters
    ----------
    loss_probability:
        Chance that a message is silently dropped.
    duplicate_probability:
        Chance that a message is delivered twice (with independent
        latency draws, so the copies may also arrive reordered).
    partitions:
        Virtual-time windows during which a node group is unreachable.
    max_injections:
        Overall cap on injected drops/duplicates (``None`` = unlimited);
        partition drops are deterministic and do not count against it.
    seed:
        Seed of the plan's private RNG.
    """

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    partitions: Tuple[PartitionWindow, ...] = ()
    max_injections: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        total = self.loss_probability + self.duplicate_probability
        if total > 1.0:
            raise ValueError(
                "loss_probability + duplicate_probability must not exceed 1, "
                f"got {total!r}"
            )
        object.__setattr__(self, "partitions", tuple(self.partitions))


@dataclass(frozen=True)
class NetworkFaultEvent:
    """One injected network fault, for the counterexample report."""

    index: int
    src: str
    dst: str
    kind: str
    action: str
    time: float

    def __str__(self) -> str:
        return (
            f"#{self.index}: {self.action} {self.kind!r} "
            f"{self.src}->{self.dst} at t={self.time:g}"
        )


class NetworkFaultPlan:
    """The stateful injector the simulated network consults per send.

    Mirrors :class:`FaultPlan`: one private RNG seeded by the spec, one
    draw per consultation, an append-only event log — so the same
    (network seed, fault seed) pair replays the identical loss and
    duplication stream for the same message sequence.  Partition drops
    are a pure function of ``(src, dst, now)`` and consume no
    randomness, so a partition window never perturbs the loss stream.
    """

    def __init__(self, spec: NetworkFaultSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._consults = 0
        self._seeded = 0
        self.events: List[NetworkFaultEvent] = []

    @property
    def injections(self) -> int:
        return len(self.events)

    def intercept(self, src: str, dst: str, kind: str, now: float) -> Optional[str]:
        """Decide the fate of one message send; ``None`` = deliver once."""
        for window in self.spec.partitions:
            if window.severs(src, dst, now):
                self.events.append(
                    NetworkFaultEvent(
                        len(self.events), src, dst, kind, DROP_ACTION, now
                    )
                )
                return DROP_ACTION
        self._consults += 1
        roll = self._rng.random()
        spec = self.spec
        if spec.max_injections is not None and self._seeded >= spec.max_injections:
            return None
        action: Optional[str] = None
        if roll < spec.loss_probability:
            action = DROP_ACTION
        elif roll < spec.loss_probability + spec.duplicate_probability:
            action = DUPLICATE_ACTION
        if action is not None:
            self._seeded += 1
            self.events.append(
                NetworkFaultEvent(len(self.events), src, dst, kind, action, now)
            )
        return action


def network_plan_from(
    spec: Optional[NetworkFaultSpec],
) -> Optional[NetworkFaultPlan]:
    """A fresh plan for ``spec``, or ``None`` for a reliable network."""
    return None if spec is None else NetworkFaultPlan(spec)
