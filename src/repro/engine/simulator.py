"""A discrete-event multi-user simulator (the Section 6 environment).

The paper's closing discussion models the life of a transaction step as
three components: *scheduling time* (waiting for, and occupying, the
single centralized scheduler), *waiting time* (delays the scheduler
imposes so that consistency is preserved), and *execution time* (actually
running the step).  This simulator realises that decomposition:

* a fixed set of client terminals submit transactions drawn from a
  workload, separated by exponentially distributed think times;
* every request occupies the centralized scheduler for
  ``scheduling_time`` time units (requests queue for the scheduler —
  scheduling times of different users cannot overlap, as in the paper);
* a granted data operation then takes ``execution_time`` units;
* an aborted transaction restarts after ``abort_backoff``.

Blocked requests are governed by ``SimulationConfig.wait_policy``:

* ``"event"`` (default) — the blocked client is parked in the engine
  kernel's wait index and woken the moment one of its blockers commits
  or aborts.  No simulation events are spent re-asking the protocol, so
  the event count — and hence wall-clock — stays proportional to useful
  work even with hundreds of clients, and the measured waiting time is
  exact rather than quantised to the retry interval.
* ``"polling"`` — the pre-kernel compatibility mode: a blocked request
  is retried every ``retry_interval`` time units.  Kept so that reports
  produced before the kernel refactor remain reproducible.

The per-step protocol interaction itself (begin / operation / commit /
restart bookkeeping) lives in :mod:`repro.engine.kernel`, shared with the
untimed executor.  The event heap is the simulator's run queue — the
same structure the executor's ``"run-queue"`` scheduler builds out of
rounds (:class:`~repro.engine.kernel.RunQueue`), with real-valued time:
only runnable clients have events, abort backoff is an event in the
future (the cooldown wheel), and blocked clients re-enter through the
kernel's wake notification.  Events beyond the configured duration are
never enqueued, so the heap stays proportional to the clients that can
still act before the horizon.

The report gives throughput, mean response time, the mean latency
breakdown per committed transaction, abort counts and the *delay-free
fraction* — the empirical counterpart of the fixpoint-set probability
``|P| / |H|`` of Section 6 — plus the kernel/protocol metrics registry.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.faults import FaultPlan
from repro.engine.kernel import EngineKernel, Session, StepKind
from repro.engine.metrics import Metrics
from repro.engine.operations import TransactionSpec
from repro.engine.protocols.base import ConcurrencyControl
from repro.engine.storage import DataStore
from repro.obs.trace import Tracer


@dataclass
class SimulationConfig:
    """Knobs of the discrete-event simulation."""

    num_clients: int = 8
    duration: float = 1_000.0
    scheduling_time: float = 0.1
    execution_time: float = 1.0
    think_time: float = 2.0
    retry_interval: float = 1.0
    abort_backoff: float = 2.0
    max_attempts: int = 50
    seed: int = 0
    #: "event" wakes blocked clients from commit/abort notifications;
    #: "polling" retries them every ``retry_interval`` (compatibility).
    wait_policy: str = "event"
    #: simulated time per validation probe (OCC commit checks).  Serial
    #: validation runs *inside* the scheduler critical section, so its
    #: probes extend the scheduler occupancy and every other client
    #: queues behind them; a validation pipeline (parallel OCC) runs its
    #: probes off the critical section, overlapping with other clients.
    #: 0 (the default) reproduces pre-pipeline reports exactly.
    validation_probe_time: float = 0.0

    def __post_init__(self) -> None:
        if self.wait_policy not in ("event", "polling"):
            raise ValueError("wait_policy must be 'event' or 'polling'")


@dataclass
class LatencyBreakdown:
    """Per-transaction latency split into the paper's three components."""

    scheduling: float = 0.0
    waiting: float = 0.0
    execution: float = 0.0

    @property
    def total(self) -> float:
        return self.scheduling + self.waiting + self.execution


@dataclass
class SimulationReport:
    """Aggregate results of one simulation run."""

    protocol_name: str
    duration: float
    committed: int
    aborts: int
    blocks: int
    operations: int
    delay_free_transactions: int
    mean_response_time: float
    mean_breakdown: LatencyBreakdown
    committed_serializable: bool
    final_snapshot: Dict[str, Any]
    wait_policy: str = "event"
    metrics: Optional[Metrics] = None
    events_processed: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per unit time."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def delay_free_fraction(self) -> float:
        """Fraction of committed transactions that never waited or restarted."""
        return self.delay_free_transactions / self.committed if self.committed else 0.0

    @property
    def abort_rate(self) -> float:
        """Fraction of finished transaction *attempts* that aborted.

        ``aborts`` counts attempts, not client transactions: one
        transaction that restarts ``k`` times before committing
        contributes ``k`` aborted attempts plus one commit, so the
        denominator ``committed + aborts`` is the total number of
        finished attempts.  This is deliberate — the paper's Section 6
        accounting is per *request*, and an attempt-level rate exposes
        how much submitted work restarts burn, which a per-transaction
        rate would hide.  (A transaction that exhausts ``max_attempts``
        and gives up contributes its aborted attempts but no commit.)
        Pinned by ``tests/test_engine_simulator.py::TestAbortRateSemantics``.
        """
        attempts = self.committed + self.aborts
        return self.aborts / attempts if attempts else 0.0

    def summary(self) -> str:
        b = self.mean_breakdown
        return (
            f"{self.protocol_name}: throughput={self.throughput:.3f}/u "
            f"resp={self.mean_response_time:.2f} "
            f"(sched={b.scheduling:.2f} wait={b.waiting:.2f} exec={b.execution:.2f}) "
            f"delay-free={self.delay_free_fraction:.1%} abort-rate={self.abort_rate:.1%}"
        )


class _ClientSession(Session):
    """One terminal: a kernel session plus latency accounting."""

    __slots__ = ("submit_time", "breakdown", "ever_delayed", "wait_started")

    def __init__(self, spec: Optional[TransactionSpec], session_id: int) -> None:
        super().__init__(spec=spec, session_id=session_id)
        self.submit_time = 0.0
        self.breakdown = LatencyBreakdown()
        self.ever_delayed = False
        self.wait_started: Optional[float] = None


class Simulator:
    """Drive an online protocol with timed, concurrently arriving requests."""

    def __init__(
        self,
        protocol: ConcurrencyControl,
        workload: Callable[[random.Random], TransactionSpec],
        config: Optional[SimulationConfig] = None,
        metrics: Optional[Metrics] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.protocol = protocol
        self.workload = workload
        self.config = config or SimulationConfig()
        self.rng = random.Random(self.config.seed)
        self.kernel = EngineKernel(
            protocol, metrics=metrics, fault_plan=fault_plan, tracer=tracer
        )
        self.metrics = self.kernel.metrics
        #: the kernel's tracer; the simulator owns its logical clock,
        #: stamping events with virtual time (the decision time of the
        #: interaction that produced them) — never the wall clock.
        self.tracer = self.kernel.tracer
        self._tracing = self.kernel._tracing
        self.kernel.wake_sink = self._on_wake
        self._events: List[Tuple[float, int, int]] = []  # (time, seq, client_id)
        self._seq = 0
        self._scheduler_free_at = 0.0
        #: the simulated time at which in-flight protocol effects happen;
        #: wakeups triggered while deciding a request are scheduled here.
        self._effective_now = 0.0
        self.events_processed = 0
        self.completed_breakdowns: List[LatencyBreakdown] = []
        self.response_times: List[float] = []
        self.delay_free = 0
        self.aborts = 0
        self.blocks = 0
        self.operations = 0
        self.committed = 0

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, time: float, client_id: int) -> None:
        """Enqueue a client event; the heap is the simulator's run queue.

        The event heap plays exactly the role the executor's
        :class:`~repro.engine.kernel.RunQueue` plays for rounds, with
        real-valued time: runnable clients have an event queued, clients
        backing off after an abort are "in the wheel" (an event at
        ``now + abort_backoff``), and blocked clients have no event at
        all until the kernel's wake notification schedules one.  Events
        past the configured duration are dropped at the source — the
        main loop could never process them, so pushing them would only
        grow the heap (visible at hundreds of clients, where every
        think-time draw near the end of the run lands past the horizon).
        """
        if time > self.config.duration:
            return
        heapq.heappush(self._events, (time, self._seq, client_id))
        self._seq += 1

    def _think(self) -> float:
        return self.rng.expovariate(1.0 / self.config.think_time) if self.config.think_time else 0.0

    def _on_wake(self, session: Session) -> None:
        """Kernel wakeup: a blocker of this parked client resolved."""
        if self.config.wait_policy != "event":
            return  # polling clients already have a retry event queued
        self._schedule(self._effective_now, session.session_id)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Run the simulation for the configured duration and report."""
        config = self.config
        clients = [
            self.kernel.register(_ClientSession(spec=None, session_id=i))
            for i in range(config.num_clients)
        ]
        for client in clients:
            self._schedule(self._think(), client.session_id)

        self.kernel.attach()
        try:
            while self._events:
                time, _, client_id = heapq.heappop(self._events)
                if time > config.duration:
                    break
                self.events_processed += 1
                client = clients[client_id]
                next_time = self._step(client, time)
                if next_time is not None:
                    self._schedule(next_time, client_id)
        finally:
            # like the executor: a finished simulation's kernel must not
            # keep reacting to a later kernel's protocol notifications
            self.kernel.detach()

        return SimulationReport(
            protocol_name=self.protocol.name,
            duration=config.duration,
            committed=self.committed,
            aborts=self.aborts,
            blocks=self.blocks,
            operations=self.operations,
            delay_free_transactions=self.delay_free,
            mean_response_time=(
                sum(self.response_times) / len(self.response_times)
                if self.response_times
                else 0.0
            ),
            mean_breakdown=self._mean_breakdown(),
            committed_serializable=self.protocol.committed_history_serializable(),
            final_snapshot=self.protocol.store.snapshot(),
            wait_policy=config.wait_policy,
            metrics=self.metrics,
            events_processed=self.events_processed,
        )

    def _mean_breakdown(self) -> LatencyBreakdown:
        if not self.completed_breakdowns:
            return LatencyBreakdown()
        n = len(self.completed_breakdowns)
        return LatencyBreakdown(
            scheduling=sum(b.scheduling for b in self.completed_breakdowns) / n,
            waiting=sum(b.waiting for b in self.completed_breakdowns) / n,
            execution=sum(b.execution for b in self.completed_breakdowns) / n,
        )

    # ------------------------------------------------------------------
    # per-client progression
    # ------------------------------------------------------------------
    def _step(self, client: _ClientSession, now: float) -> Optional[float]:
        """Advance one client at simulated time ``now``; return its next event time."""
        config = self.config

        if client.spec is None:
            client.begin_new(self.workload(self.rng))
            client.submit_time = now
            client.breakdown = LatencyBreakdown()
            client.ever_delayed = False
            client.wait_started = None

        if client.txn_id is None:
            self._effective_now = now
            if self._tracing:
                self.tracer.now = now
            self.kernel.step(client)  # begin: consumes no simulated time
            return now

        # account waiting time accrued since the last blocked attempt
        if client.wait_started is not None:
            waited = now - client.wait_started
            client.breakdown.waiting += waited
            self.metrics.observe("sim.wait_time", waited)
            client.wait_started = None

        # occupy the centralized scheduler (a single shared resource)
        start = max(now, self._scheduler_free_at)
        queueing = start - now
        decision_time = start + config.scheduling_time
        self._scheduler_free_at = decision_time
        client.breakdown.scheduling += queueing + config.scheduling_time

        self._effective_now = decision_time
        if self._tracing:
            self.tracer.now = decision_time
        result = self.kernel.step(client)
        if not result.was_commit:
            self.operations += 1

        # validation work costs simulated time: serial validation ran
        # inside the critical section (the scheduler stays occupied, all
        # other clients queue behind it), pipelined validation runs off
        # it and only delays this client.
        if result.validation_probes and config.validation_probe_time:
            cost = result.validation_probes * config.validation_probe_time
            if result.validation_offloaded:
                client.breakdown.execution += cost
            else:
                self._scheduler_free_at = decision_time + cost
                client.breakdown.scheduling += cost
            decision_time += cost

        if result.kind is StepKind.VALIDATING:
            # validation passed off the critical section; the next event
            # is the short finishing commit interaction
            return decision_time
        if result.kind is StepKind.COMMITTED:
            return self._finish_commit(client, decision_time)
        if result.kind is StepKind.GRANTED:
            client.breakdown.execution += config.execution_time
            return decision_time + config.execution_time
        if result.kind is StepKind.BLOCKED:
            self.blocks += 1
            client.ever_delayed = True
            client.wait_started = decision_time
            if config.wait_policy == "event" and result.parked:
                # the kernel will wake us; no retry event needed
                return None
            return decision_time + config.retry_interval
        return self._after_abort(client, decision_time)

    def _finish_commit(self, client: _ClientSession, decision_time: float) -> float:
        self.committed += 1
        if not client.ever_delayed and client.attempts == 1:
            self.delay_free += 1
        response = decision_time - client.submit_time
        self.response_times.append(response)
        self.completed_breakdowns.append(client.breakdown)
        self.metrics.observe("sim.response_time", response)
        client.spec = None
        return decision_time + self._think()

    def _after_abort(self, client: _ClientSession, decision_time: float) -> float:
        config = self.config
        self.aborts += 1
        client.ever_delayed = True
        if client.attempts >= config.max_attempts:
            # give up on this transaction and move on to a new one
            client.spec = None
            return decision_time + self._think()
        self.kernel.restart(client)
        client.wait_started = decision_time
        return decision_time + config.abort_backoff


def compare_protocols(
    protocol_factories: Dict[str, Callable[[DataStore], ConcurrencyControl]],
    initial_data: Dict[str, Any],
    workload: Callable[[random.Random], TransactionSpec],
    config: Optional[SimulationConfig] = None,
) -> Dict[str, SimulationReport]:
    """Run the same workload/config under several protocols on identical stores."""
    reports: Dict[str, SimulationReport] = {}
    for name, factory in protocol_factories.items():
        store = DataStore(initial_data)
        protocol = factory(store)
        simulator = Simulator(protocol, workload, config)
        reports[name] = simulator.run()
    return reports
