"""A discrete-event multi-user simulator (the Section 6 environment).

The paper's closing discussion models the life of a transaction step as
three components: *scheduling time* (waiting for, and occupying, the
single centralized scheduler), *waiting time* (delays the scheduler
imposes so that consistency is preserved), and *execution time* (actually
running the step).  This simulator realises that decomposition:

* a fixed set of client terminals submit transactions drawn from a
  workload, separated by exponentially distributed think times;
* every request occupies the centralized scheduler for
  ``scheduling_time`` time units (requests queue for the scheduler —
  scheduling times of different users cannot overlap, as in the paper);
* a granted data operation then takes ``execution_time`` units;
* a blocked request waits and is retried after ``retry_interval`` (or as
  soon as a transaction finishes, whichever comes first);
* an aborted transaction restarts after ``abort_backoff``.

The report gives throughput, mean response time, the mean latency
breakdown per committed transaction, abort counts and the *delay-free
fraction* — the empirical counterpart of the fixpoint-set probability
``|P| / |H|`` of Section 6.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.operations import Operation, OperationKind, TransactionSpec
from repro.engine.protocols.base import ConcurrencyControl, Decision
from repro.engine.storage import DataStore


@dataclass
class SimulationConfig:
    """Knobs of the discrete-event simulation."""

    num_clients: int = 8
    duration: float = 1_000.0
    scheduling_time: float = 0.1
    execution_time: float = 1.0
    think_time: float = 2.0
    retry_interval: float = 1.0
    abort_backoff: float = 2.0
    max_attempts: int = 50
    seed: int = 0


@dataclass
class LatencyBreakdown:
    """Per-transaction latency split into the paper's three components."""

    scheduling: float = 0.0
    waiting: float = 0.0
    execution: float = 0.0

    @property
    def total(self) -> float:
        return self.scheduling + self.waiting + self.execution


@dataclass
class SimulationReport:
    """Aggregate results of one simulation run."""

    protocol_name: str
    duration: float
    committed: int
    aborts: int
    blocks: int
    operations: int
    delay_free_transactions: int
    mean_response_time: float
    mean_breakdown: LatencyBreakdown
    committed_serializable: bool
    final_snapshot: Dict[str, Any]

    @property
    def throughput(self) -> float:
        """Committed transactions per unit time."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def delay_free_fraction(self) -> float:
        """Fraction of committed transactions that never waited or restarted."""
        return self.delay_free_transactions / self.committed if self.committed else 0.0

    @property
    def abort_rate(self) -> float:
        attempts = self.committed + self.aborts
        return self.aborts / attempts if attempts else 0.0

    def summary(self) -> str:
        b = self.mean_breakdown
        return (
            f"{self.protocol_name}: throughput={self.throughput:.3f}/u "
            f"resp={self.mean_response_time:.2f} "
            f"(sched={b.scheduling:.2f} wait={b.waiting:.2f} exec={b.execution:.2f}) "
            f"delay-free={self.delay_free_fraction:.1%} abort-rate={self.abort_rate:.1%}"
        )


@dataclass
class _ClientState:
    """One terminal: its current transaction attempt and latency accounting."""

    client_id: int
    spec: Optional[TransactionSpec] = None
    txn_id: Optional[int] = None
    op_index: int = 0
    reads: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 0
    submit_time: float = 0.0
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    ever_delayed: bool = False
    wait_started: Optional[float] = None


class Simulator:
    """Drive an online protocol with timed, concurrently arriving requests."""

    def __init__(
        self,
        protocol: ConcurrencyControl,
        workload: Callable[[random.Random], TransactionSpec],
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.protocol = protocol
        self.workload = workload
        self.config = config or SimulationConfig()
        self.rng = random.Random(self.config.seed)
        self._events: List[Tuple[float, int, int]] = []  # (time, seq, client_id)
        self._seq = 0
        self._next_txn_id = 1
        self._scheduler_free_at = 0.0
        self.completed_breakdowns: List[LatencyBreakdown] = []
        self.response_times: List[float] = []
        self.delay_free = 0
        self.aborts = 0
        self.blocks = 0
        self.operations = 0
        self.committed = 0

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, time: float, client_id: int) -> None:
        heapq.heappush(self._events, (time, self._seq, client_id))
        self._seq += 1

    def _think(self) -> float:
        return self.rng.expovariate(1.0 / self.config.think_time) if self.config.think_time else 0.0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Run the simulation for the configured duration and report."""
        config = self.config
        clients = [_ClientState(client_id=i) for i in range(config.num_clients)]
        for client in clients:
            self._schedule(self._think(), client.client_id)

        while self._events:
            time, _, client_id = heapq.heappop(self._events)
            if time > config.duration:
                break
            client = clients[client_id]
            next_time = self._step(client, time)
            if next_time is not None:
                self._schedule(next_time, client_id)

        return SimulationReport(
            protocol_name=self.protocol.name,
            duration=config.duration,
            committed=self.committed,
            aborts=self.aborts,
            blocks=self.blocks,
            operations=self.operations,
            delay_free_transactions=self.delay_free,
            mean_response_time=(
                sum(self.response_times) / len(self.response_times)
                if self.response_times
                else 0.0
            ),
            mean_breakdown=self._mean_breakdown(),
            committed_serializable=self.protocol.committed_history_serializable(),
            final_snapshot=self.protocol.store.snapshot(),
        )

    def _mean_breakdown(self) -> LatencyBreakdown:
        if not self.completed_breakdowns:
            return LatencyBreakdown()
        n = len(self.completed_breakdowns)
        return LatencyBreakdown(
            scheduling=sum(b.scheduling for b in self.completed_breakdowns) / n,
            waiting=sum(b.waiting for b in self.completed_breakdowns) / n,
            execution=sum(b.execution for b in self.completed_breakdowns) / n,
        )

    # ------------------------------------------------------------------
    # per-client progression
    # ------------------------------------------------------------------
    def _step(self, client: _ClientState, now: float) -> Optional[float]:
        """Advance one client at simulated time ``now``; return its next event time."""
        config = self.config

        if client.spec is None:
            client.spec = self.workload(self.rng)
            client.txn_id = None
            client.op_index = 0
            client.reads = {}
            client.attempts = 0
            client.submit_time = now
            client.breakdown = LatencyBreakdown()
            client.ever_delayed = False
            client.wait_started = None

        if client.txn_id is None:
            client.txn_id = self._next_txn_id
            self._next_txn_id += 1
            client.attempts += 1
            self.protocol.begin(client.txn_id)
            return now

        # account waiting time accrued since the last blocked attempt
        if client.wait_started is not None:
            client.breakdown.waiting += now - client.wait_started
            client.wait_started = None

        # occupy the centralized scheduler (a single shared resource)
        start = max(now, self._scheduler_free_at)
        queueing = start - now
        decision_time = start + config.scheduling_time
        self._scheduler_free_at = decision_time
        client.breakdown.scheduling += queueing + config.scheduling_time

        if client.op_index >= len(client.spec):
            decision = self.protocol.commit(client.txn_id)
            return self._after_commit(client, decision, decision_time)

        operation = client.spec.operations[client.op_index]
        decision = self._issue(client, operation)
        self.operations += 1
        return self._after_operation(client, decision, decision_time)

    def _issue(self, client: _ClientState, operation: Operation) -> Decision:
        txn_id = client.txn_id
        if operation.kind is OperationKind.READ:
            decision = self.protocol.read(txn_id, operation.key)
            if decision.granted:
                client.reads[operation.key] = decision.value
            return decision
        if operation.kind is OperationKind.UPDATE:
            decision = self.protocol.read(txn_id, operation.key)
            if not decision.granted:
                return decision
            client.reads[operation.key] = decision.value
            value = operation.transform(dict(client.reads))
            return self.protocol.write(txn_id, operation.key, value)
        value = operation.transform(dict(client.reads))
        return self.protocol.write(txn_id, operation.key, value)

    def _after_operation(
        self, client: _ClientState, decision: Decision, decision_time: float
    ) -> float:
        config = self.config
        if decision.granted:
            client.op_index += 1
            client.breakdown.execution += config.execution_time
            return decision_time + config.execution_time
        if decision.blocked:
            self.blocks += 1
            client.ever_delayed = True
            client.wait_started = decision_time
            return decision_time + config.retry_interval
        return self._abort_and_restart(client, decision_time)

    def _after_commit(
        self, client: _ClientState, decision: Decision, decision_time: float
    ) -> float:
        config = self.config
        if decision.granted:
            self.committed += 1
            if not client.ever_delayed and client.attempts == 1:
                self.delay_free += 1
            self.response_times.append(decision_time - client.submit_time)
            self.completed_breakdowns.append(client.breakdown)
            client.spec = None
            return decision_time + self._think()
        if decision.blocked:
            self.blocks += 1
            client.ever_delayed = True
            client.wait_started = decision_time
            return decision_time + config.retry_interval
        return self._abort_and_restart(client, decision_time)

    def _abort_and_restart(self, client: _ClientState, decision_time: float) -> float:
        config = self.config
        self.aborts += 1
        client.ever_delayed = True
        self.protocol.abort(client.txn_id)
        if client.attempts >= config.max_attempts:
            # give up on this transaction and move on to a new one
            client.spec = None
            return decision_time + self._think()
        client.txn_id = None
        client.op_index = 0
        client.reads = {}
        client.wait_started = decision_time
        return decision_time + config.abort_backoff


def compare_protocols(
    protocol_factories: Dict[str, Callable[[DataStore], ConcurrencyControl]],
    initial_data: Dict[str, Any],
    workload: Callable[[random.Random], TransactionSpec],
    config: Optional[SimulationConfig] = None,
) -> Dict[str, SimulationReport]:
    """Run the same workload/config under several protocols on identical stores."""
    reports: Dict[str, SimulationReport] = {}
    for name, factory in protocol_factories.items():
        store = DataStore(initial_data)
        protocol = factory(store)
        simulator = Simulator(protocol, workload, config)
        reports[name] = simulator.run()
    return reports
