"""The differential conformance runner.

One seeded scenario, every registered protocol, both execution modes,
both wait policies: each cell of the matrix runs the same transaction
programs under the same engine seed, records its committed history, and
answers to the shared oracle stack.  A conforming engine produces **zero
required-oracle violations in every cell** — that is the cross-run
agreement the differential design asserts: a protocol may commit more
or fewer transactions in one mode than another, but none of them may
ever produce a non-conforming history.

Each seed also gets a **replay check**: the first cell is executed
twice and must produce byte-identical history digests, which is what
makes a failing seed a complete reproduction recipe.

When a cell fails, the **minimizing reporter** shrinks the scenario —
greedily dropping transaction programs while the failure persists — and
renders a counterexample: the reduced programs, the violated oracles
with their offending cycle, and the injected-fault log.

The mutation smoke test (:func:`mutation_smoke`) closes the loop on the
harness itself: it registers a deliberately broken serializable-SI
(pivot detection disabled) and demands that the harness catch it and
shrink a counterexample — proof the oracles can actually see the class
of bug they exist for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.faults import plan_from
from repro.engine.protocols.registry import (
    ONE_COPY_SERIALIZABLE,
    PROTOCOL_ENTRIES,
    ProtocolEntry,
)
from repro.engine.protocols.snapshot_isolation import SnapshotIsolation
from repro.engine.runtime import TransactionExecutor
from repro.engine.simulator import SimulationConfig, Simulator
from repro.engine.storage import DataStore
from repro.harness.oracles import OracleVerdict, evaluate_run
from repro.harness.recorder import HistoryRecorder
from repro.harness.scenarios import Scenario, build_scenario
from repro.obs.trace import TraceRecorder, Tracer

MODES = ("executor", "simulator")
WAIT_POLICIES = ("event", "polling")


@dataclass(frozen=True)
class CellOutcome:
    """One matrix cell: a protocol run and its oracle verdicts."""

    protocol: str
    mode: str
    wait_policy: str
    committed: int
    digest: str
    verdicts: Tuple[OracleVerdict, ...]
    fault_events: Tuple[str, ...] = ()

    @property
    def violations(self) -> Tuple[OracleVerdict, ...]:
        return tuple(v for v in self.verdicts if v.required and not v.ok)

    @property
    def ok(self) -> bool:
        return not self.violations

    def label(self) -> str:
        return f"{self.protocol}/{self.mode}/{self.wait_policy}"


@dataclass
class Counterexample:
    """A shrunk failing scenario, ready to show a human."""

    seed: int
    protocol: str
    mode: str
    wait_policy: str
    original_spec_count: int
    scenario: Scenario
    outcome: CellOutcome
    quick: bool = False
    #: set when the failing protocol was a seeded mutation (not in the
    #: registry): the replay command then goes through ``--mutate``
    mutation: Optional[str] = None
    #: the shrunk cell's full event trace (JSON-lines), captured by a
    #: dedicated re-run — deterministic, so it is exactly what a replay
    #: of ``replay_command()`` would see
    trace_jsonl: Optional[str] = None

    def replay_command(self) -> str:
        """A CLI line that re-executes exactly the failing cell.

        Family and fault injection are pinned explicitly (the fuzzer
        consumes its RNG draws whether or not they are pinned, so the
        pins are byte-faithful) and ``--quick`` is carried because it
        changes scenario sizes.
        """
        quick = " --quick" if self.quick else ""
        if self.mutation is not None:
            return (
                f"python -m repro.harness --mutate {self.mutation} "
                f"--seed {self.seed}{quick}"
            )
        faults = "on" if self.scenario.fault_spec is not None else "off"
        return (
            f"python -m repro.harness --seed {self.seed} "
            f"--protocol {self.protocol} --mode {self.mode} "
            f"--wait-policy {self.wait_policy} "
            f"--family {self.scenario.name} --faults {faults}{quick}"
        )

    def render(self) -> str:
        lines = [
            f"counterexample: seed={self.seed} scenario={self.scenario.name!r} "
            f"cell={self.protocol}/{self.mode}/{self.wait_policy}",
            f"shrunk to {len(self.scenario.specs)} of {self.original_spec_count} "
            f"transactions:",
            self.scenario.describe(),
            "violated oracles:",
        ]
        for verdict in self.outcome.violations:
            lines.append(f"  {verdict}")
        if self.outcome.fault_events:
            lines.append("injected faults:")
            for event in self.outcome.fault_events:
                lines.append(f"  {event}")
        lines.append(f"replay: {self.replay_command()}")
        return "\n".join(lines)


@dataclass
class ConformanceReport:
    """Everything one seed produced across the matrix."""

    seed: int
    scenario: Scenario
    outcomes: List[CellOutcome] = field(default_factory=list)
    replay_ok: bool = True
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.replay_ok and all(outcome.ok for outcome in self.outcomes)

    def summary(self) -> str:
        cells = len(self.outcomes)
        bad = [outcome for outcome in self.outcomes if not outcome.ok]
        status = "ok" if self.ok else f"{len(bad)} violating cell(s)"
        faulty = " +faults" if self.scenario.fault_spec is not None else ""
        replay = "" if self.replay_ok else " REPLAY-MISMATCH"
        return (
            f"seed {self.seed} [{self.scenario.name}{faulty}] "
            f"{cells} cells: {status}{replay}"
        )


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------


def run_cell(
    entry: ProtocolEntry,
    scenario: Scenario,
    mode: str,
    wait_policy: str,
    quick: bool = False,
    scheduler: str = "run-queue",
    interleaving: str = "random",
    tracer: Optional[Tracer] = None,
) -> CellOutcome:
    """Execute one matrix cell and judge it with the oracle stack.

    ``scheduler`` selects the executor's scheduling loop (``"run-queue"``
    default, ``"round-scan"`` the legacy baseline) and ``interleaving``
    its step order; both only apply to executor-mode cells.  The
    scheduler-equivalence suite runs the same cell under both schedulers
    with round-robin interleaving and demands byte-identical digests.
    ``tracer`` threads a structured tracer through the cell's engine;
    tracing never perturbs the run, so a traced cell's digest is
    byte-identical to an untraced one (pinned by the determinism tests).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    store = DataStore(dict(scenario.initial_data))
    protocol = entry.factory(store)
    recorder = HistoryRecorder()
    fault_plan = plan_from(scenario.fault_spec)

    if mode == "executor":
        executor = TransactionExecutor(
            protocol,
            max_attempts=300,
            interleaving=interleaving,
            seed=scenario.seed,
            wait_policy=wait_policy,
            fault_plan=fault_plan,
            scheduler=scheduler,
            tracer=tracer,
        )
        recorder.attach(executor.kernel)
        executor.run(list(scenario.specs))
    else:
        config = SimulationConfig(
            num_clients=6,
            duration=90.0 if quick else 220.0,
            seed=scenario.seed,
            wait_policy=wait_policy,
            abort_backoff=2.0,
            max_attempts=40,
        )
        simulator = Simulator(
            protocol, scenario.generator(), config, fault_plan=fault_plan,
            tracer=tracer,
        )
        recorder.attach(simulator.kernel)
        simulator.run()

    final_snapshot = protocol.store.snapshot()
    ctx = recorder.context(scenario.initial_data, final_snapshot)
    verdicts = evaluate_run(protocol, scenario, ctx, entry.guarantee)
    events = tuple(str(event) for event in fault_plan.events) if fault_plan else ()
    return CellOutcome(
        protocol=entry.name,
        mode=mode,
        wait_policy=wait_policy,
        committed=len(ctx.commits),
        digest=recorder.digest(final_snapshot),
        verdicts=tuple(verdicts),
        fault_events=events,
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------


def shrink_failing_scenario(
    entry: ProtocolEntry,
    scenario: Scenario,
    mode: str,
    wait_policy: str,
    quick: bool = False,
    budget: int = 160,
    scheduler: str = "run-queue",
) -> Tuple[Scenario, CellOutcome]:
    """Greedily drop transactions while the cell keeps failing.

    Classic ddmin-lite: one removal at a time, restart after every
    success, stop at a fixpoint or when the re-run budget is spent.
    Deterministic — every candidate runs under the same seeds.
    """
    current = scenario
    outcome = run_cell(entry, current, mode, wait_policy, quick, scheduler)
    runs = 1
    improved = True
    while improved and runs < budget and len(current.specs) > 1:
        improved = False
        for index in range(len(current.specs)):
            candidate = current.with_specs(
                current.specs[:index] + current.specs[index + 1:]
            )
            candidate_outcome = run_cell(
                entry, candidate, mode, wait_policy, quick, scheduler
            )
            runs += 1
            if not candidate_outcome.ok:
                current, outcome = candidate, candidate_outcome
                improved = True
                break
            if runs >= budget:
                break
    return current, outcome


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------


def _resolve_entries(
    protocols: Optional[Sequence[str]],
    entries: Optional[Mapping[str, ProtocolEntry]],
) -> List[ProtocolEntry]:
    registry = PROTOCOL_ENTRIES if entries is None else entries
    if protocols is None:
        return list(registry.values())
    resolved = []
    for name in protocols:
        if name not in registry:
            known = ", ".join(registry)
            raise KeyError(f"unknown protocol {name!r}; registered: {known}")
        resolved.append(registry[name])
    return resolved


def run_seed(
    seed: int,
    protocols: Optional[Sequence[str]] = None,
    modes: Sequence[str] = MODES,
    wait_policies: Sequence[str] = WAIT_POLICIES,
    quick: bool = False,
    family: Optional[str] = None,
    with_faults: Optional[bool] = None,
    entries: Optional[Mapping[str, ProtocolEntry]] = None,
    shrink: bool = True,
    scheduler: str = "run-queue",
) -> ConformanceReport:
    """Run the full differential matrix for one seed."""
    scenario = build_scenario(seed, quick=quick, family=family, with_faults=with_faults)
    report = ConformanceReport(seed=seed, scenario=scenario)
    selected = _resolve_entries(protocols, entries)
    for entry in selected:
        for mode in modes:
            for wait_policy in wait_policies:
                outcome = run_cell(
                    entry, scenario, mode, wait_policy, quick, scheduler
                )
                report.outcomes.append(outcome)
                if not outcome.ok and report.counterexample is None and shrink:
                    shrunk, shrunk_outcome = shrink_failing_scenario(
                        entry, scenario, mode, wait_policy, quick,
                        scheduler=scheduler,
                    )
                    # re-run the shrunk cell once with tracing on: the
                    # trace is deterministic, so it shows exactly what a
                    # replay of the recipe line will do, step by step
                    trace_recorder = TraceRecorder()
                    run_cell(
                        entry, shrunk, mode, wait_policy, quick, scheduler,
                        tracer=trace_recorder,
                    )
                    report.counterexample = Counterexample(
                        seed=seed,
                        protocol=entry.name,
                        mode=mode,
                        wait_policy=wait_policy,
                        original_spec_count=len(scenario.specs),
                        scenario=shrunk,
                        outcome=shrunk_outcome,
                        quick=quick,
                        trace_jsonl=trace_recorder.to_jsonl(),
                    )
    # byte-identical replay: re-run the first cell, compare digests
    if report.outcomes and selected:
        first = report.outcomes[0]
        rerun = run_cell(
            selected[0], scenario, first.mode, first.wait_policy, quick, scheduler
        )
        report.replay_ok = rerun.digest == first.digest
    return report


def run_seeds(
    seeds: Iterable[int],
    protocols: Optional[Sequence[str]] = None,
    modes: Sequence[str] = MODES,
    wait_policies: Sequence[str] = WAIT_POLICIES,
    quick: bool = False,
    family: Optional[str] = None,
    with_faults: Optional[bool] = None,
    entries: Optional[Mapping[str, ProtocolEntry]] = None,
    scheduler: str = "run-queue",
) -> List[ConformanceReport]:
    """The soak loop: one differential matrix per seed."""
    return [
        run_seed(
            seed,
            protocols=protocols,
            modes=modes,
            wait_policies=wait_policies,
            quick=quick,
            family=family,
            with_faults=with_faults,
            entries=entries,
            scheduler=scheduler,
        )
        for seed in seeds
    ]


# ----------------------------------------------------------------------
# mutation smoke: prove the oracles can see the bug class they hunt
# ----------------------------------------------------------------------


def broken_serializable_si_entry() -> ProtocolEntry:
    """serializable-SI with pivot detection disabled (a seeded bug).

    The commit-time dangerous-structure check is skipped, turning the
    protocol into plain SI while it still *claims* one-copy
    serializability — exactly the committed-pivot gap class fixed in
    PR 3.  The harness must catch the lie via the MVSG oracle.
    """

    class BrokenSerializableSI(SnapshotIsolation):
        def __init__(self, store) -> None:
            super().__init__(store, serializable=True)

        def on_commit(self, txn_id: int):
            self.serializable = False
            try:
                return super().on_commit(txn_id)
            finally:
                self.serializable = True

    return ProtocolEntry(
        "serializable-si[broken-pivot]",
        BrokenSerializableSI,
        ONE_COPY_SERIALIZABLE,
        multiversion=True,
    )


def mutation_smoke(
    seeds: Iterable[int] = range(12),
    quick: bool = True,
) -> Optional[Counterexample]:
    """Hunt write-skew scenarios with the broken SSI until one is caught.

    Returns the shrunk counterexample from the first seed whose matrix
    cell flags the seeded bug, or ``None`` if no seed in the budget
    exposed it (which the test suite treats as a harness failure).
    """
    entry = broken_serializable_si_entry()
    for seed in seeds:
        report = run_seed(
            seed,
            protocols=[entry.name],
            modes=("executor",),
            wait_policies=("event",),
            quick=quick,
            family="write-skew",
            with_faults=False,
            entries={entry.name: entry},
        )
        if report.counterexample is not None:
            report.counterexample.mutation = "ssi-pivot"
            return report.counterexample
    return None


# ----------------------------------------------------------------------
# distributed chaos cells (cross-shard 2PC, repro.dist)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DistCellOutcome:
    """One distributed chaos cell: a 2PC run and its oracle verdicts."""

    plan: str
    committed: int
    attempts: int
    crashes: int
    digest: str
    verdicts: Tuple[OracleVerdict, ...]
    replay_ok: bool
    replicas: int = 1

    @property
    def violations(self) -> Tuple[OracleVerdict, ...]:
        return tuple(v for v in self.verdicts if v.required and not v.ok)

    @property
    def ok(self) -> bool:
        return self.replay_ok and not self.violations


@dataclass
class DistReport:
    """Everything one seed produced across the chaos-plan matrix."""

    seed: int
    outcomes: List[Tuple[Any, DistCellOutcome]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for _scenario, outcome in self.outcomes)

    def summary(self) -> str:
        bad = [outcome for _s, outcome in self.outcomes if not outcome.ok]
        status = "ok" if self.ok else f"{len(bad)} violating cell(s)"
        cells = ", ".join(
            f"{outcome.plan}"
            + (f"+r{outcome.replicas}" if outcome.replicas > 1 else "")
            + f":{outcome.committed}/{outcome.attempts}c"
            + ("" if outcome.replay_ok else " REPLAY-MISMATCH")
            for _s, outcome in self.outcomes
        )
        return f"dist seed {self.seed} [{cells}] {status}"

    def render_failures(self) -> str:
        lines: List[str] = []
        for scenario, outcome in self.outcomes:
            if outcome.ok:
                continue
            lines.append(
                f"dist counterexample: seed={self.seed} plan={scenario.plan} "
                f"shards={scenario.num_shards} replicas={scenario.replicas}"
            )
            lines.append(scenario.describe())
            if not outcome.replay_ok:
                lines.append(
                    "  replay mismatch: the same cell produced two different "
                    "digests (nondeterminism bug)"
                )
            for verdict in outcome.violations:
                lines.append(f"  {verdict}")
            replication = "on" if scenario.replicas > 1 else "off"
            lines.append(
                f"replay: python -m repro.harness --dist --seed {self.seed} "
                f"--plan {scenario.plan} --replication {replication}"
            )
        return "\n".join(lines)


def _run_dist_scenario(scenario) -> Any:
    from repro.dist import run_distributed_batch
    from repro.engine.workloads import dist_shard_of

    return run_distributed_batch(
        scenario.initial_data,
        list(scenario.specs),
        num_shards=scenario.num_shards,
        shard_of=dist_shard_of,
        network_faults=scenario.network_faults,
        crash_specs=list(scenario.crash_specs),
        seed=scenario.seed,
        replicas=scenario.replicas,
        replica_crashes=list(scenario.replica_crashes),
    )


def run_dist_cell(scenario) -> DistCellOutcome:
    """Run one distributed chaos cell — twice, to pin replay determinism.

    The second run must produce a byte-identical digest; a mismatch is
    reported as its own failure (``replay_ok``), separate from oracle
    violations, because nondeterminism invalidates every other verdict's
    replayability.
    """
    from repro.harness.oracles import evaluate_dist_run

    report = _run_dist_scenario(scenario)
    rerun = _run_dist_scenario(scenario)
    verdicts = evaluate_dist_run(scenario, report)
    return DistCellOutcome(
        plan=scenario.plan,
        committed=report.commit_count,
        attempts=len(scenario.specs),
        crashes=report.coordinator.crashes,
        digest=report.digest(),
        verdicts=verdicts,
        replay_ok=report.digest() == rerun.digest(),
        replicas=scenario.replicas,
    )


#: replica-group size used by the replication axis of the dist matrix
DIST_REPLICAS = 3


def run_dist_seeds(
    seeds: Sequence[int],
    plans: Optional[Sequence[str]] = None,
    quick: bool = False,
    replication: str = "both",
) -> List[DistReport]:
    """The distributed conformance sweep: seeds × chaos plans × replication.

    ``replication`` selects the replica axis: ``"off"`` runs each shard
    as the single PR-8 participant, ``"on"`` as a three-replica Paxos
    group, ``"both"`` (the soak default) runs each plan both ways so
    the replicated engine answers to exactly the oracles the
    unreplicated one does — plus the four replication oracles.
    """
    from repro.harness.scenarios import DIST_PLANS, build_dist_scenario

    if replication not in ("both", "on", "off"):
        raise ValueError(
            f"replication must be 'both', 'on' or 'off', got {replication!r}"
        )
    replica_axis = {
        "both": (1, DIST_REPLICAS),
        "off": (1,),
        "on": (DIST_REPLICAS,),
    }[replication]
    chosen = tuple(plans) if plans else DIST_PLANS
    reports: List[DistReport] = []
    for seed in seeds:
        report = DistReport(seed=seed)
        for plan in chosen:
            for replicas in replica_axis:
                scenario = build_dist_scenario(
                    seed, plan=plan, quick=quick, replicas=replicas
                )
                report.outcomes.append((scenario, run_dist_cell(scenario)))
        reports.append(report)
    return reports
