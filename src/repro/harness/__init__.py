"""The cross-protocol conformance harness (Elle/Jepsen-style, deterministic).

The repo ships many online concurrency-control protocols across two
execution modes and two wait policies.  Each has hand-written tests, but
the failure shape that matters most — per-key states that look fine
while the *global* history is non-serializable — hides in interleaving
windows no hand-written scenario was imagined for.  This subpackage
hunts those windows systematically:

* :mod:`repro.harness.scenarios` — a **seeded scenario fuzzer** that
  composes the engine's workload generators with adversarial shapes
  (write-skew cliques, read-only audits racing transfers, long scans
  over hot keys, skewed multi-key RMWs) and optional deterministic
  fault-injection plans (:mod:`repro.engine.faults`);
* :mod:`repro.harness.recorder` — a **history recorder** hooked into the
  engine kernel's commit notifications, capturing each committed
  attempt's program and read set once per run;
* :mod:`repro.harness.oracles` — the shared **oracle stack**:
  conflict-graph serializability for single-version protocols, MVSG
  one-copy-serializability for multi-version ones, a lifted-MVSG
  agreement guard, and per-scenario invariants (balance conservation,
  audit totals, lost-update detection);
* :mod:`repro.harness.runner` — the **differential runner**: the same
  seeded scenario across every registered protocol × executor/simulator
  × event/polling, a byte-identical replay check, and a minimizing
  counterexample reporter that shrinks a failing scenario and
  pretty-prints the offending cycle.

Everything is a pure function of the seed, so a failing run is a
reproduction recipe: ``python -m repro.harness --seed N --protocol all``.
Protocols registered in :mod:`repro.engine.protocols.registry` get all
of this for free.
"""

from repro.harness.oracles import (
    OracleVerdict,
    evaluate_run,
    explain_conflict_cycle,
    lift_single_version_history,
)
from repro.harness.recorder import CommittedTransaction, HistoryRecorder, RunContext
from repro.harness.runner import (
    CellOutcome,
    ConformanceReport,
    Counterexample,
    broken_serializable_si_entry,
    mutation_smoke,
    run_cell,
    run_seed,
    run_seeds,
)
from repro.harness.scenarios import Invariant, Scenario, build_scenario, scenario_families

__all__ = [
    "OracleVerdict",
    "evaluate_run",
    "explain_conflict_cycle",
    "lift_single_version_history",
    "CommittedTransaction",
    "HistoryRecorder",
    "RunContext",
    "CellOutcome",
    "ConformanceReport",
    "Counterexample",
    "broken_serializable_si_entry",
    "mutation_smoke",
    "run_cell",
    "run_seed",
    "run_seeds",
    "Invariant",
    "Scenario",
    "build_scenario",
    "scenario_families",
]
