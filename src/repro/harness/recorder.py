"""The history recorder: capture the committed history once per run.

The engine's front-ends report aggregates (counts, rates, snapshots),
which is enough for benchmarks but not for oracles: the invariants the
harness checks — audit totals, lost-update counting — need to know
*which* transaction programs committed and *what each one read* on its
committed attempt.  The recorder hooks the kernel's ``commit_sink``
notification, which fires exactly once per successful commit (normal
and read-only fast path alike) while the committed attempt's spec and
read buffer are still attached to the session, and snapshots both.

The executor retains its sessions so this could be scraped after the
fact, but the simulator *reuses* one session per client terminal — by
the time a run finishes, every earlier transaction's reads are gone.
Recording at the commit notification is the only point where both modes
expose the same information, which is what lets one oracle stack serve
the whole differential matrix.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from repro.engine.kernel import EngineKernel, Session
from repro.engine.operations import TransactionSpec


class CommittedTransaction:
    """One committed attempt: the program that ran and what it read."""

    __slots__ = ("spec", "txn_id", "session_id", "attempts", "reads")

    def __init__(
        self,
        spec: TransactionSpec,
        txn_id: int,
        session_id: int,
        attempts: int,
        reads: Dict[str, Any],
    ) -> None:
        self.spec = spec
        self.txn_id = txn_id
        self.session_id = session_id
        self.attempts = attempts
        self.reads = reads

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return (
            f"CommittedTransaction({self.name!r}, txn={self.txn_id}, "
            f"attempts={self.attempts}, reads={self.reads!r})"
        )


@dataclass
class RunContext:
    """Everything an invariant check may look at after one run."""

    initial_data: Mapping[str, Any]
    final_snapshot: Mapping[str, Any]
    commits: List[CommittedTransaction]

    def commits_named(self, name: str) -> List[CommittedTransaction]:
        return [commit for commit in self.commits if commit.name == name]


class HistoryRecorder:
    """Collect :class:`CommittedTransaction` records via the kernel hook."""

    def __init__(self) -> None:
        self.commits: List[CommittedTransaction] = []

    def attach(self, kernel: EngineKernel) -> "HistoryRecorder":
        kernel.commit_sink = self._on_commit
        return self

    def _on_commit(self, session: Session) -> None:
        self.commits.append(
            CommittedTransaction(
                spec=session.spec,
                txn_id=session.txn_id,
                session_id=session.session_id,
                attempts=session.attempts,
                reads=dict(session.reads),
            )
        )

    def context(
        self,
        initial_data: Mapping[str, Any],
        final_snapshot: Mapping[str, Any],
    ) -> RunContext:
        return RunContext(
            initial_data=initial_data,
            final_snapshot=final_snapshot,
            commits=self.commits,
        )

    def digest(self, final_snapshot: Mapping[str, Any]) -> str:
        """A replay fingerprint of the committed history.

        Two runs of the same (scenario seed, engine seed, fault seed)
        cell must produce the same digest — the harness's byte-identical
        replay guarantee.  Built with :mod:`hashlib` rather than
        ``hash()`` so the fingerprint is stable across interpreter runs
        (PYTHONHASHSEED does not leak in).
        """
        parts: List[str] = []
        for commit in self.commits:
            reads = ",".join(f"{k}={commit.reads[k]!r}" for k in sorted(commit.reads))
            parts.append(f"{commit.name}#{commit.session_id}@{commit.attempts}({reads})")
        parts.append("|".join(f"{k}={final_snapshot[k]!r}" for k in sorted(final_snapshot)))
        return hashlib.sha256(";".join(parts).encode()).hexdigest()
