"""The seeded scenario fuzzer: adversarial workloads with oracles attached.

A :class:`Scenario` is a *self-judging* workload: a concrete batch of
transaction programs plus the invariants that any conforming execution
of them must preserve.  The fuzzer (:func:`build_scenario`) derives one
deterministically from a seed, drawing shapes that are known to pry
open protocol windows:

* **write-skew cliques** — the canonical local-vs-global gap: every
  per-key state looks fine while the global history is not one-copy
  serializable (plain SI admits it; everything stronger must not);
* **read-only audits racing transfers** — consistent-snapshot checks:
  a committed audit must observe the conserved total, never a torn one;
* **long scans over hot keys** — declared-read-only scans riding the
  kernel fast path while increments hammer the same keys (exercises
  snapshot leases and GC under fire);
* **skewed multi-key RMWs** — lost-update bait on zipf-hot keys;
* **uniform mixes** — the engine's stock workload, for baseline drift.

Roughly half of all seeds also carry a :class:`~repro.engine.faults.
FaultSpec`, so forced client aborts, delayed commits/validations and
key-biased stalls are injected — deterministically — into the same
scenarios; every invariant must hold regardless.

Invariants carry a **level**: ``"si"`` invariants (conservation, audit
totals, lost-update freedom) bind every registered protocol including
plain snapshot isolation, while ``"serializable"`` invariants (the
write-skew guard) bind only protocols whose guarantee promises a
serializable order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.faults import FaultSpec
from repro.engine.operations import Operation, TransactionSpec, read_op, update_op
from repro.engine.workloads import (
    WorkloadConfig,
    _zipf_chooser,
    banking_transfer,
    uniform_workload,
)
from repro.harness.recorder import RunContext

#: invariant levels, weakest binding first
SI_LEVEL = "si"
SERIALIZABLE_LEVEL = "serializable"


@dataclass(frozen=True)
class Invariant:
    """One post-run check: returns ``None`` if satisfied, else a detail."""

    name: str
    level: str
    check: Callable[[RunContext], Optional[str]]

    def __post_init__(self) -> None:
        if self.level not in (SI_LEVEL, SERIALIZABLE_LEVEL):
            raise ValueError(f"unknown invariant level {self.level!r}")


@dataclass(frozen=True)
class Scenario:
    """A seeded adversarial workload plus its conformance invariants."""

    name: str
    seed: int
    initial_data: Dict[str, Any]
    specs: Tuple[TransactionSpec, ...]
    invariants: Tuple[Invariant, ...]
    fault_spec: Optional[FaultSpec] = None

    def generator(self) -> Callable[[random.Random], TransactionSpec]:
        """The scenario as a simulator workload: cycle the spec list.

        Each call returns a fresh cycling closure, so two simulators
        over the same scenario replay the same transaction sequence.
        """
        specs = self.specs
        state = {"next": 0}

        def generate(rng: random.Random) -> TransactionSpec:
            index = state["next"]
            state["next"] = (index + 1) % len(specs)
            return specs[index]

        return generate

    def with_specs(self, specs: Sequence[TransactionSpec]) -> "Scenario":
        """A copy over a reduced spec list (the shrinker's move)."""
        return replace(self, specs=tuple(specs))

    def describe(self) -> str:
        """Pretty-print the transaction programs, one per line."""
        lines = []
        for index, spec in enumerate(self.specs):
            ops = " ".join(str(op) for op in spec.operations)
            suffix = " [read-only]" if spec.is_read_only else ""
            lines.append(f"  [{index}] {spec.name}: {ops}{suffix}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# shared invariants
# ----------------------------------------------------------------------


def counter_consistency(keys: Sequence[str]) -> Invariant:
    """Lost-update detection for increment-only scenarios.

    Valid only when **every** write in the scenario is a ``+1``
    increment: the final value of each key must equal its initial value
    plus the number of committed increment operations on it.  A lost
    update (two increments racing, one overwritten) shows up as a final
    value below the committed count.
    """

    def check(ctx: RunContext) -> Optional[str]:
        expected: Dict[str, Any] = {key: ctx.initial_data[key] for key in keys}
        for commit in ctx.commits:
            for op in commit.spec.operations:
                if op.writes and op.key in expected:
                    expected[op.key] += 1
        lost = {
            key: (ctx.final_snapshot[key], expected[key])
            for key in keys
            if ctx.final_snapshot[key] != expected[key]
        }
        if lost:
            detail = ", ".join(
                f"{key}: final={final} expected={want}"
                for key, (final, want) in sorted(lost.items())
            )
            return f"lost/spurious updates: {detail}"
        return None

    return Invariant("counter-consistency", SI_LEVEL, check)


def conservation(keys: Sequence[str]) -> Invariant:
    """The sum over ``keys`` is conserved (transfers move, never mint)."""

    def check(ctx: RunContext) -> Optional[str]:
        initial_total = sum(ctx.initial_data[key] for key in keys)
        final_total = sum(ctx.final_snapshot[key] for key in keys)
        if final_total != initial_total:
            return f"total drifted: initial={initial_total} final={final_total}"
        return None

    return Invariant("conservation", SI_LEVEL, check)


def audit_totals(audit_name: str, keys: Sequence[str]) -> Invariant:
    """Every committed audit observed the conserved total.

    This is the per-key-fine/globally-broken detector: an audit that
    reads mid-transfer sees a total off by the in-flight amount even
    though each individual balance is plausible.
    """

    def check(ctx: RunContext) -> Optional[str]:
        expected = sum(ctx.initial_data[key] for key in keys)
        for commit in ctx.commits_named(audit_name):
            observed = sum(commit.reads[key] for key in keys)
            if observed != expected:
                return (
                    f"audit T{commit.txn_id} observed total {observed}, "
                    f"expected {expected} (reads: {commit.reads!r})"
                )
        return None

    return Invariant("audit-totals", SI_LEVEL, check)


def write_skew_guard(clique: Sequence[str]) -> Invariant:
    """At least one member of an on-call clique stays on call.

    Serial executions can never empty the clique (each leaver re-checks
    that another member remains); only a write-skew interleaving can.
    Bound at the ``serializable`` level — plain SI admits this by design.
    """

    def check(ctx: RunContext) -> Optional[str]:
        total = sum(ctx.final_snapshot[key] for key in clique)
        if total < 1:
            values = {key: ctx.final_snapshot[key] for key in clique}
            return f"clique emptied by write skew: {values!r}"
        return None

    return Invariant(f"write-skew-guard[{clique[0]}..]", SERIALIZABLE_LEVEL, check)


# ----------------------------------------------------------------------
# scenario families
# ----------------------------------------------------------------------


def _transfers_vs_audits(rng: random.Random, size: int) -> Tuple[Dict[str, Any], List[TransactionSpec], List[Invariant]]:
    """Read-only audits racing conditional transfers over few accounts."""
    num_accounts = rng.randrange(4, 8)
    accounts = [f"acct{i}" for i in range(num_accounts)]
    initial = {name: 100 for name in accounts}
    specs: List[TransactionSpec] = []
    for _ in range(size):
        if rng.random() < 0.35:
            specs.append(
                TransactionSpec(
                    [read_op(name) for name in accounts],
                    name="audit-ro",
                    read_only=True,
                )
            )
            continue
        source, target = rng.sample(accounts, 2)
        amount = rng.randrange(5, 40)
        specs.append(banking_transfer(source, target, amount))
    invariants = [conservation(accounts), audit_totals("audit-ro", accounts)]
    return initial, specs, invariants


def _write_skew_cliques(rng: random.Random, size: int) -> Tuple[Dict[str, Any], List[TransactionSpec], List[Invariant]]:
    """On-call cliques: each member may stand down only if others remain."""
    num_cliques = rng.randrange(1, 3)
    clique_size = rng.randrange(2, 4)
    initial: Dict[str, Any] = {}
    cliques: List[List[str]] = []
    for c in range(num_cliques):
        keys = [f"oncall{c}:{i}" for i in range(clique_size)]
        cliques.append(keys)
        for key in keys:
            initial[key] = 1
    specs: List[TransactionSpec] = []
    invariants: List[Invariant] = [write_skew_guard(keys) for keys in cliques]
    for _ in range(size):
        keys = cliques[rng.randrange(num_cliques)]
        if rng.random() < 0.2:
            specs.append(
                TransactionSpec(
                    [read_op(key) for key in keys], name="ws-audit", read_only=True
                )
            )
            continue
        own = keys[rng.randrange(len(keys))]

        def stand_down(reads: Dict[str, Any], _own=own, _keys=tuple(keys)) -> Any:
            others = sum(reads[key] for key in _keys) - reads[_own]
            return 0 if others >= 1 else reads[_own]

        specs.append(
            TransactionSpec(
                [read_op(key) for key in keys] + [update_op(own, stand_down)],
                name="stand-down",
            )
        )
    return initial, specs, invariants


def _hot_scan_increments(rng: random.Random, size: int) -> Tuple[Dict[str, Any], List[TransactionSpec], List[Invariant]]:
    """Long declared-read-only scans racing zipf-hot increments."""
    num_keys = rng.randrange(8, 14)
    keys = [f"k{i}" for i in range(num_keys)]
    initial = {key: 0 for key in keys}
    choose = _zipf_chooser(keys, theta=1.1)
    scan_length = min(num_keys, rng.randrange(6, 10))
    specs: List[TransactionSpec] = []
    for _ in range(size):
        if rng.random() < 0.4:
            start = rng.randrange(num_keys)
            specs.append(
                TransactionSpec(
                    [read_op(keys[(start + i) % num_keys]) for i in range(scan_length)],
                    name="hot-scan",
                    read_only=True,
                )
            )
        else:
            ops: List[Operation] = []
            for _ in range(rng.randrange(2, 5)):
                key = choose(rng)
                ops.append(update_op(key, lambda reads, _k=key: reads[_k] + 1))
            specs.append(TransactionSpec(ops, name="hot-rmw"))
    return initial, specs, [counter_consistency(keys)]


def _skewed_rmw(rng: random.Random, size: int) -> Tuple[Dict[str, Any], List[TransactionSpec], List[Invariant]]:
    """Multi-key read-modify-writes concentrated on a zipf hot set."""
    num_keys = rng.randrange(6, 12)
    keys = [f"k{i}" for i in range(num_keys)]
    initial = {key: 0 for key in keys}
    choose = _zipf_chooser(keys, theta=1.3)
    specs: List[TransactionSpec] = []
    for _ in range(size):
        touched: List[str] = []
        for _ in range(rng.randrange(2, 5)):
            key = choose(rng)
            if key not in touched:
                touched.append(key)
        ops: List[Operation] = []
        for key in touched:
            ops.append(update_op(key, lambda reads, _k=key: reads[_k] + 1))
        specs.append(TransactionSpec(ops, name="skewed-rmw"))
    return initial, specs, [counter_consistency(keys)]


def _uniform_mix(rng: random.Random, size: int) -> Tuple[Dict[str, Any], List[TransactionSpec], List[Invariant]]:
    """The engine's stock uniform mix (all writes are +1 increments)."""
    config = WorkloadConfig(
        num_keys=rng.randrange(6, 16),
        operations_per_transaction=rng.randrange(2, 5),
        read_fraction=rng.choice([0.3, 0.5, 0.7]),
    )
    initial, specs = uniform_workload(
        num_transactions=size, config=config, seed=rng.randrange(1 << 30)
    )
    return initial, specs, [counter_consistency(list(initial))]


_FAMILIES: Dict[str, Callable[[random.Random, int], Tuple[Dict[str, Any], List[TransactionSpec], List[Invariant]]]] = {
    "transfers-vs-audits": _transfers_vs_audits,
    "write-skew": _write_skew_cliques,
    "hot-scan": _hot_scan_increments,
    "skewed-rmw": _skewed_rmw,
    "uniform-mix": _uniform_mix,
}


def scenario_families() -> Tuple[str, ...]:
    """The fuzzer's scenario family names."""
    return tuple(_FAMILIES)


def build_scenario(
    seed: int,
    quick: bool = False,
    family: Optional[str] = None,
    with_faults: Optional[bool] = None,
) -> Scenario:
    """Derive a scenario deterministically from ``seed``.

    ``family`` pins the shape (default: seed-chosen); ``with_faults``
    pins fault injection (default: roughly half of all seeds inject).
    Both draws are consumed from the RNG stream whether or not they are
    pinned, so pinning a seed's *natural* choices reproduces the exact
    scenario — that is what makes a counterexample's replay command
    (``--family X --faults on``) byte-faithful.
    """
    rng = random.Random(seed)
    names = list(_FAMILIES)
    drawn_family = names[rng.randrange(len(names))]
    chosen = family if family is not None else drawn_family
    if chosen not in _FAMILIES:
        known = ", ".join(_FAMILIES)
        raise ValueError(f"unknown scenario family {chosen!r}; known: {known}")
    size = rng.randrange(10, 16) if quick else rng.randrange(18, 28)
    initial, specs, invariants = _FAMILIES[chosen](rng, size)

    drawn_inject = rng.random() < 0.5
    inject = drawn_inject if with_faults is None else with_faults
    fault_spec: Optional[FaultSpec] = None
    if inject:
        keys = sorted(initial)
        biased = frozenset(rng.sample(keys, max(1, len(keys) // 4)))
        fault_spec = FaultSpec(
            abort_probability=rng.uniform(0.0, 0.04),
            stall_probability=rng.uniform(0.0, 0.06),
            commit_stall_probability=rng.uniform(0.0, 0.06),
            biased_keys=biased,
            max_injections=64,
            seed=rng.randrange(1 << 30),
        )

    return Scenario(
        name=chosen,
        seed=seed,
        initial_data=initial,
        specs=tuple(specs),
        invariants=tuple(invariants),
        fault_spec=fault_spec,
    )


# ----------------------------------------------------------------------
# distributed scenarios: cross-shard 2PC cells (repro.dist)
# ----------------------------------------------------------------------

#: the chaos plans the distributed conformance matrix sweeps
DIST_PLANS = ("none", "loss", "crash", "partition")


@dataclass(frozen=True)
class DistScenario:
    """A seeded cross-shard workload plus its chaos configuration.

    The distributed sibling of :class:`Scenario`: the specs span shards
    (so they exercise the 2PC path), and instead of an engine
    ``FaultSpec`` it carries the network-level chaos — a
    :class:`~repro.engine.faults.NetworkFaultSpec`, coordinator
    :class:`~repro.dist.recovery.CrashSpec` injections, and (when
    ``replicas > 1``) replica-level
    :class:`~repro.dist.replication.ReplicaCrashSpec` injections.
    Oracles live in :func:`repro.harness.oracles.evaluate_dist_run`
    rather than as per-scenario invariants: every distributed run is
    judged by the same five chaos oracles (conservation, atomicity,
    replay consistency, orphan locks, abort taxonomy), plus the four
    replication oracles when the shards are replica groups.
    """

    name: str
    seed: int
    plan: str
    initial_data: Dict[str, Any]
    specs: Tuple[TransactionSpec, ...]
    num_shards: int
    network_faults: Optional[Any] = None
    crash_specs: Tuple[Any, ...] = ()
    replicas: int = 1
    replica_crashes: Tuple[Any, ...] = ()

    def describe(self) -> str:
        lines = [
            f"  shards={self.num_shards} replicas={self.replicas} "
            f"plan={self.plan} faults={self.network_faults!r} "
            f"crashes={list(self.crash_specs)} "
            f"replica-crashes={list(self.replica_crashes)}"
        ]
        for index, spec in enumerate(self.specs):
            ops = " ".join(str(op) for op in spec.operations)
            lines.append(f"  [{index}] {spec.name}: {ops}")
        return "\n".join(lines)


def build_dist_scenario(
    seed: int, plan: str = "none", quick: bool = False, replicas: int = 1
) -> DistScenario:
    """Derive one distributed chaos cell deterministically from a seed.

    ``plan`` picks the chaos family: ``"none"`` is the faultless
    baseline, ``"loss"`` adds seeded message loss + duplication (and on
    some seeds a partition window), ``"crash"`` injects one or two
    coordinator crashes at seed-chosen :data:`~repro.dist.recovery.
    CRASH_POINTS` transitions, and ``"partition"`` opens a partition
    window around a shard.  Everything — topology size, batch size,
    fault probabilities, crash transitions — is drawn from one
    ``random.Random(seed)``, so a cell is replayed exactly by its
    ``(seed, plan, quick, replicas)`` tuple.

    ``replicas > 1`` turns every shard into a Paxos replica group and
    re-aims the chaos at the replication layer: the ``crash`` plan adds
    leader crashes at :data:`~repro.dist.replication.REPL_CRASH_POINTS`
    transitions, and the ``partition`` plan isolates a seed-chosen
    subset of one shard's replicas (sometimes the minority, sometimes
    the majority-with-a-quorum side).  Replication-specific draws come
    from a *forked* RNG so the workload and the unreplicated chaos are
    byte-identical to the ``replicas=1`` cell of the same seed.
    """
    from repro.dist.recovery import CRASH_POINTS, CrashSpec
    from repro.dist.replication import REPL_CRASH_POINTS, ReplicaCrashSpec
    from repro.engine.faults import NetworkFaultSpec, PartitionWindow
    from repro.engine.workloads import cross_shard_transfer_workload

    if plan not in DIST_PLANS:
        raise ValueError(f"plan must be one of {DIST_PLANS}, got {plan!r}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    rng = random.Random(seed * 9176 + 11)
    num_shards = rng.choice((2, 3, 4))
    accounts_per_shard = 3 if quick else rng.choice((3, 4, 5))
    num_transactions = (6 if quick else rng.choice((10, 14, 18)))
    initial, specs = cross_shard_transfer_workload(
        num_shards=num_shards,
        accounts_per_shard=accounts_per_shard,
        num_transactions=num_transactions,
        cross_fraction=0.8,
        seed=rng.randrange(1 << 30),
    )
    # replication chaos draws come from a fork so the primary stream
    # (and with it every replicas=1 cell) stays byte-identical
    repl_rng = random.Random(seed * 7919 + 101)
    network_faults = None
    crash_specs: Tuple[Any, ...] = ()
    replica_crashes: Tuple[Any, ...] = ()
    if plan == "loss":
        partitions = ()
        if rng.random() < 0.4:
            start = rng.uniform(0.0, 20.0)
            shard = f"shard{rng.randrange(num_shards)}"
            if replicas > 1:
                # the unreplicated node name does not exist in a
                # replicated topology — isolate one of its replicas
                shard = f"{shard}.r{repl_rng.randrange(replicas)}"
            partitions = (
                PartitionWindow(start, start + rng.uniform(5.0, 15.0), frozenset({shard})),
            )
        network_faults = NetworkFaultSpec(
            loss_probability=rng.uniform(0.05, 0.2),
            duplicate_probability=rng.uniform(0.0, 0.1),
            partitions=partitions,
            seed=rng.randrange(1 << 30),
        )
    elif plan == "crash":
        count = 1 + (rng.random() < 0.3)
        picked = set()
        specs_list = []
        for _ in range(count):
            transition = rng.choice(CRASH_POINTS)
            txn_index = rng.randrange(num_transactions)
            if (transition, txn_index) in picked:
                continue
            picked.add((transition, txn_index))
            specs_list.append(
                CrashSpec(transition, txn_index=txn_index, restart_delay=rng.uniform(2.0, 10.0))
            )
        crash_specs = tuple(specs_list)
        if replicas > 1:
            # the replicated crash plan aims at shard leaders too: one or
            # two leader crashes at 2PC-visible replication transitions
            repl_count = 1 + (repl_rng.random() < 0.5)
            repl_picked = set()
            repl_list = []
            for _ in range(repl_count):
                shard = f"shard{repl_rng.randrange(num_shards)}"
                transition = repl_rng.choice(REPL_CRASH_POINTS)
                txn_index = repl_rng.randrange(max(1, num_transactions // 2))
                if (shard, transition) in repl_picked:
                    continue
                repl_picked.add((shard, transition))
                repl_list.append(
                    ReplicaCrashSpec(
                        shard=shard,
                        transition=transition,
                        txn_index=txn_index,
                        restart_delay=repl_rng.uniform(8.0, 16.0),
                    )
                )
            replica_crashes = tuple(repl_list)
    elif plan == "partition":
        start = rng.uniform(5.0, 25.0)
        duration = rng.uniform(15.0, 40.0)
        shard_index = rng.randrange(num_shards)
        if replicas > 1:
            # isolate a seed-chosen subset of one shard's replicas —
            # sometimes the minority (group keeps quorum), sometimes
            # everything but one (the survivor must shed, not hang)
            cut = repl_rng.randrange(1, replicas)
            members = repl_rng.sample(range(replicas), cut)
            isolated = frozenset(
                f"shard{shard_index}.r{member}" for member in sorted(members)
            )
        else:
            isolated = frozenset({f"shard{shard_index}"})
        network_faults = NetworkFaultSpec(
            partitions=(PartitionWindow(start, start + duration, isolated),),
        )
    return DistScenario(
        name=f"cross-shard-transfers/{plan}",
        seed=seed,
        plan=plan,
        initial_data=initial,
        specs=tuple(specs),
        num_shards=num_shards,
        network_faults=network_faults,
        crash_specs=crash_specs,
        replicas=replicas,
        replica_crashes=replica_crashes,
    )
