"""CLI for the conformance harness: ``python -m repro.harness``.

Examples
--------
Quick differential sweep (the CI soak job)::

    python -m repro.harness --seed 0..9 --protocol all --quick

Replay one failing cell from a counterexample's recipe line::

    python -m repro.harness --seed 7 --protocol serializable-si \
        --mode executor --wait-policy event

Prove the oracles can catch a seeded bug (exits 0 on detection)::

    python -m repro.harness --mutate ssi-pivot

``REPRO_BENCH_QUICK=1`` implies ``--quick``; ``--report PATH`` writes
the rendered counterexample (or an all-clear summary) to a file, which
the CI job uploads as an artifact on failure.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.engine.protocols.registry import PROTOCOL_ENTRIES
from repro.harness.runner import (
    MODES,
    WAIT_POLICIES,
    mutation_smoke,
    run_dist_seeds,
    run_seeds,
)
from repro.harness.scenarios import DIST_PLANS, scenario_families


def parse_seeds(text: str) -> List[int]:
    """Accept ``7``, ``0..19`` (inclusive), or ``1,4,9``."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if ".." in part:
            lo, hi = part.split("..", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        elif part:
            seeds.append(int(part))
    if not seeds:
        raise argparse.ArgumentTypeError(f"no seeds in {text!r}")
    return seeds


def _parse_axis(value: str, both: Sequence[str], axis: str) -> Sequence[str]:
    if value == "both":
        return tuple(both)
    if value not in both:
        raise argparse.ArgumentTypeError(f"{axis} must be 'both' or one of {both}")
    return (value,)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Cross-protocol conformance: differential fuzzing with shared oracles.",
    )
    parser.add_argument(
        "--seed", type=parse_seeds, default=parse_seeds("0..4"),
        help="seed, inclusive range 'A..B', or comma list (default 0..4)",
    )
    parser.add_argument(
        "--protocol", default="all",
        help="'all' or comma-separated registered names "
             f"({', '.join(PROTOCOL_ENTRIES)})",
    )
    parser.add_argument("--mode", default="both", help="both | executor | simulator")
    parser.add_argument("--wait-policy", default="both", help="both | event | polling")
    parser.add_argument(
        "--family", default=None, choices=scenario_families(),
        help="pin the scenario family (default: seed-chosen)",
    )
    parser.add_argument(
        "--faults", default="auto", choices=["auto", "on", "off"],
        help="pin fault injection (default 'auto': seed-chosen)",
    )
    parser.add_argument(
        "--scheduler", default="run-queue", choices=["run-queue", "round-scan"],
        help="executor scheduling loop: the run queue (default) or the "
             "legacy round scan (differential baseline)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller scenarios and simulations (implied by REPRO_BENCH_QUICK=1)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the counterexample (or all-clear summary) to PATH",
    )
    parser.add_argument(
        "--mutate", default=None, choices=["ssi-pivot"],
        help="run the mutation smoke: seed a known bug and demand detection",
    )
    parser.add_argument(
        "--dist", action="store_true",
        help="run the distributed chaos matrix instead (cross-shard 2PC "
             "cells under message loss, partitions, coordinator and "
             "replica crashes)",
    )
    parser.add_argument(
        "--plan", default=None, choices=DIST_PLANS,
        help="with --dist: pin one chaos plan (default: all of "
             f"{', '.join(DIST_PLANS)})",
    )
    parser.add_argument(
        "--replication", default="both", choices=["both", "on", "off"],
        help="with --dist: run shards as Paxos replica groups ('on'), "
             "as single participants ('off'), or both (default)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    quick = args.quick or os.environ.get("REPRO_BENCH_QUICK") == "1"

    if args.dist:
        return _main_dist(args, quick)

    modes = _parse_axis(args.mode, MODES, "--mode")
    wait_policies = _parse_axis(args.wait_policy, WAIT_POLICIES, "--wait-policy")

    if args.mutate:
        counterexample = mutation_smoke(seeds=args.seed, quick=quick)
        if counterexample is None:
            print("mutation smoke FAILED: seeded ssi-pivot bug was not detected")
            return 1
        print("mutation smoke ok: seeded ssi-pivot bug detected and shrunk")
        print(counterexample.render())
        if args.report:
            with open(args.report, "w") as handle:
                handle.write(counterexample.render() + "\n")
            _write_trace(args.report, [counterexample])
        return 0

    protocols = None if args.protocol == "all" else [
        name.strip() for name in args.protocol.split(",") if name.strip()
    ]
    with_faults = {"auto": None, "on": True, "off": False}[args.faults]
    reports = run_seeds(
        args.seed,
        protocols=protocols,
        modes=modes,
        wait_policies=wait_policies,
        quick=quick,
        family=args.family,
        with_faults=with_faults,
        scheduler=args.scheduler,
    )

    failed = [report for report in reports if not report.ok]
    for report in reports:
        print(report.summary())
    cells = sum(len(report.outcomes) for report in reports)
    print(
        f"{len(reports)} seed(s), {cells} cell(s): "
        f"{'all conforming' if not failed else f'{len(failed)} seed(s) VIOLATING'}"
    )

    body: List[str] = []
    for report in failed:
        if report.counterexample is not None:
            body.append(report.counterexample.render())
        if not report.replay_ok:
            body.append(
                f"seed {report.seed}: replay mismatch — the same cell produced "
                f"two different history digests (nondeterminism bug)"
            )
    if body:
        print()
        print("\n\n".join(body))
    if args.report:
        with open(args.report, "w") as handle:
            if body:
                handle.write("\n\n".join(body) + "\n")
            else:
                handle.write(
                    "all conforming: "
                    + ", ".join(report.summary() for report in reports)
                    + "\n"
                )
        _write_trace(
            args.report,
            [r.counterexample for r in failed if r.counterexample is not None],
        )
    return 1 if failed else 0


def _main_dist(args, quick: bool) -> int:
    """The distributed chaos sweep: seeds × plans × replication cells."""
    plans = (args.plan,) if args.plan else None
    reports = run_dist_seeds(
        args.seed, plans=plans, quick=quick, replication=args.replication
    )
    failed = [report for report in reports if not report.ok]
    for report in reports:
        print(report.summary())
    cells = sum(len(report.outcomes) for report in reports)
    print(
        f"{len(reports)} seed(s), {cells} dist cell(s): "
        f"{'all conforming' if not failed else f'{len(failed)} seed(s) VIOLATING'}"
    )
    body = [report.render_failures() for report in failed]
    if body:
        print()
        print("\n\n".join(body))
    if args.report:
        with open(args.report, "w") as handle:
            if body:
                handle.write("\n\n".join(body) + "\n")
            else:
                handle.write(
                    "all conforming: "
                    + ", ".join(report.summary() for report in reports)
                    + "\n"
                )
    return 1 if failed else 0


def _write_trace(report_path: str, counterexamples) -> None:
    """Save each counterexample's engine trace next to the report file.

    ``<report>.trace.jsonl`` (first counterexample) is the convention the
    CI soak job globs for artifacts; extras get a ``.N`` suffix.  The
    trace is analysable with ``python -m repro.obs report``.
    """
    for index, counterexample in enumerate(counterexamples):
        if counterexample.trace_jsonl is None:
            continue
        suffix = "" if index == 0 else f".{index}"
        path = f"{report_path}.trace{suffix}.jsonl"
        with open(path, "w") as handle:
            handle.write(counterexample.trace_jsonl)
        print(f"counterexample trace -> {path}")


if __name__ == "__main__":
    sys.exit(main())
