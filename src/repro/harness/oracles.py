"""The shared oracle stack: serializability checkers plus invariants.

One committed history, several judges:

* **conflict-graph** — the single-version certificate: the committed
  conflict graph (reads at grant positions, writes at commit positions)
  must be acyclic;
* **lifted-mvsg** — the agreement guard: the same single-version history
  *lifted* into a multi-version one (every read is attributed to the
  committed writer whose install it actually observed, version order =
  commit order) must pass the MVSG check too.  Conflict-serializable
  single-version histories are one-copy serializable under this lifting,
  so a disagreement between the two checkers is itself a bug — in a
  protocol or in an oracle;
* **mvsg** — the multi-version certificate over the protocol's actual
  reads-from log and version orders (:mod:`repro.analysis.mvsg`);
* the scenario's **invariants**, filtered by the protocol's guarantee.

Verdicts carry a ``required`` flag: plain snapshot isolation runs the
MVSG oracle too, but only advisorily — write skew is admitted by design,
and the differential runner must not call a designed-in anomaly a
conformance failure.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.mvsg import MVHistory, explain_mvsg_cycle, one_copy_serializable
from repro.engine.mvstore import VersionedRead
from repro.engine.protocols.base import ConcurrencyControl
from repro.engine.protocols.registry import (
    ONE_COPY_SERIALIZABLE,
    SERIALIZABLE,
    SNAPSHOT_ISOLATION,
)
from repro.harness.recorder import RunContext
from repro.harness.scenarios import SERIALIZABLE_LEVEL, Scenario


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's judgement of one run."""

    oracle: str
    ok: bool
    required: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else ("VIOLATION" if self.required else "advisory-fail")
        text = f"{self.oracle}: {status}"
        if self.detail and not self.ok:
            text += f" — {self.detail}"
        return text


# ----------------------------------------------------------------------
# lifting a single-version history into MVSG form
# ----------------------------------------------------------------------


def lift_single_version_history(protocol: ConcurrencyControl) -> MVHistory:
    """The committed single-version history as a multi-version one.

    Writes take effect at commit (the engine buffers them), so the
    version order of each key is the committed writers ordered by commit
    position, and a read at log position ``s`` observed the version of
    the last writer whose commit position precedes ``s`` — or its own
    buffered write (read-your-writes), or the initial version.  Both
    positions come from the protocol's shared sequence counter, so they
    are directly comparable.
    """
    committed = protocol.committed
    commit_positions = protocol.commit_positions

    # per key: committed writers sorted by commit position
    writers_by_key: Dict[str, List[Tuple[int, int]]] = {}
    seen_writes: Set[Tuple[int, str]] = set()
    for record in protocol.committed_log():
        if record.kind != "write":
            continue
        marker = (record.txn_id, record.key)
        if marker in seen_writes:
            continue
        seen_writes.add(marker)
        writers_by_key.setdefault(record.key, []).append(
            (commit_positions[record.txn_id], record.txn_id)
        )
    for entries in writers_by_key.values():
        entries.sort()

    reads: List[VersionedRead] = []
    own_writes: Set[Tuple[int, str]] = set()
    for record in protocol.log:
        if record.kind == "write":
            own_writes.add((record.txn_id, record.key))
            continue
        if record.txn_id not in committed:
            continue
        if (record.txn_id, record.key) in own_writes:
            # read-your-writes: attribute to the reader itself (the MVSG
            # builder skips self-edges)
            reads.append(VersionedRead(record.txn_id, record.key, record.txn_id))
            continue
        entries = writers_by_key.get(record.key, [])
        index = bisect_left(entries, (record.sequence, -1))
        if index == 0:
            writer: Optional[int] = None
        else:
            writer = entries[index - 1][1]
        reads.append(VersionedRead(record.txn_id, record.key, writer))

    version_orders = {
        key: tuple(txn for _, txn in entries)
        for key, entries in writers_by_key.items()
    }
    return MVHistory(
        committed=frozenset(committed),
        reads=tuple(reads),
        version_orders=version_orders,
    )


# ----------------------------------------------------------------------
# cycle pretty-printing
# ----------------------------------------------------------------------


def explain_conflict_cycle(protocol: ConcurrencyControl) -> Optional[str]:
    """Render a conflict-graph cycle with a witness key per edge."""
    graph = protocol.committed_conflict_graph()
    cycle = graph.find_cycle()
    if cycle is None:
        return None

    # rebuild each key's committed timeline (reads at grant positions,
    # writes at commit positions) to find one witnessing conflict per edge
    per_key: Dict[str, List[Tuple[int, int, bool]]] = {}
    seen_writes: Set[Tuple[int, str]] = set()
    for record in protocol.committed_log():
        if record.kind == "read":
            position, is_write = record.sequence, False
        else:
            marker = (record.txn_id, record.key)
            if marker in seen_writes:
                continue
            seen_writes.add(marker)
            position = protocol.commit_positions.get(record.txn_id, record.sequence)
            is_write = True
        per_key.setdefault(record.key, []).append((position, record.txn_id, is_write))

    def witness(u: int, v: int) -> str:
        for key, events in per_key.items():
            u_events = [(p, w) for p, t, w in events if t == u]
            v_events = [(p, w) for p, t, w in events if t == v]
            for u_pos, u_write in u_events:
                for v_pos, v_write in v_events:
                    if u_pos < v_pos and (u_write or v_write):
                        kinds = ("w" if u_write else "r") + ("w" if v_write else "r")
                        return f"{kinds} on {key!r}"
        return "conflict"

    edges = [
        f"T{u} -[{witness(u, v)}]-> T{v}" for u, v in zip(cycle, cycle[1:])
    ]
    return "cycle: " + "; ".join(edges)


def _mvsg_detail(history: MVHistory) -> str:
    cycle = explain_mvsg_cycle(history)
    if cycle is None:
        return ""
    return "mvsg cycle: " + " -> ".join(f"T{txn}" for txn in cycle)


# ----------------------------------------------------------------------
# the stack
# ----------------------------------------------------------------------


def invariant_verdicts(
    scenario: Scenario, ctx: RunContext, guarantee: str
) -> List[OracleVerdict]:
    """Judge the scenario invariants appropriate to a guarantee level."""
    verdicts = []
    for invariant in scenario.invariants:
        required = not (
            invariant.level == SERIALIZABLE_LEVEL and guarantee == SNAPSHOT_ISOLATION
        )
        detail = invariant.check(ctx)
        verdicts.append(
            OracleVerdict(
                oracle=f"invariant:{invariant.name}",
                ok=detail is None,
                required=required,
                detail=detail or "",
            )
        )
    return verdicts


def evaluate_run(
    protocol: ConcurrencyControl,
    scenario: Scenario,
    ctx: RunContext,
    guarantee: str,
) -> List[OracleVerdict]:
    """Run the full oracle stack over one finished execution."""
    verdicts: List[OracleVerdict] = []
    if guarantee == SERIALIZABLE:
        acyclic = not protocol.committed_conflict_graph().has_cycle()
        verdicts.append(
            OracleVerdict(
                "conflict-graph",
                acyclic,
                required=True,
                detail="" if acyclic else (explain_conflict_cycle(protocol) or ""),
            )
        )
        lifted = lift_single_version_history(protocol)
        lifted_ok = one_copy_serializable(lifted)
        verdicts.append(
            OracleVerdict(
                "lifted-mvsg",
                lifted_ok,
                required=True,
                detail="" if lifted_ok else _mvsg_detail(lifted),
            )
        )
    else:
        history = MVHistory.from_protocol(protocol)
        mvsg_ok = one_copy_serializable(history)
        verdicts.append(
            OracleVerdict(
                "mvsg",
                mvsg_ok,
                required=guarantee == ONE_COPY_SERIALIZABLE,
                detail="" if mvsg_ok else _mvsg_detail(history),
            )
        )
    if getattr(protocol, "deterministic", False):
        verdicts.extend(deterministic_verdicts(protocol))
    verdicts.extend(invariant_verdicts(scenario, ctx, guarantee))
    return verdicts


def deterministic_verdicts(protocol: ConcurrencyControl) -> List[OracleVerdict]:
    """The deterministic-protocol oracles (Calvin-style epoch scheduling).

    Two properties, both *required* under every plan:

    * **det-epoch-order** — commit order equals sequence (epoch) order:
      walking the committed transactions by commit position, their
      sequencer tickets' sequence numbers must be strictly increasing.
      The fixed pre-order is the protocol's entire claim; a single
      inversion means the commit gate leaked.
    * **det-no-protocol-aborts** — the protocol itself never aborts:
      no deadlock victims, no validation failures.  ``stats["aborts"]``
      counts only protocol-issued ABORT decisions (kernel-injected
      fault aborts bypass it), so this holds even under fault plans;
      reconnaissance aborts cannot occur in harness runs because the
      kernel declares exact footprints from the specs.
    """
    tickets = protocol.sequencer.tickets
    order = sorted(protocol.commit_positions.items(), key=lambda item: item[1])
    seqs = [
        (txn, tickets[txn].seq) for txn, _ in order if txn in tickets
    ]
    inversion = ""
    for (prev_txn, prev_seq), (txn, seq) in zip(seqs, seqs[1:]):
        if seq < prev_seq:
            inversion = (
                f"T{txn} (seq {seq}) committed after T{prev_txn} "
                f"(seq {prev_seq})"
            )
            break
    aborts = protocol.stats["aborts"]
    return [
        OracleVerdict(
            "det-epoch-order", not inversion, required=True, detail=inversion
        ),
        OracleVerdict(
            "det-no-protocol-aborts",
            aborts == 0,
            required=True,
            detail="" if aborts == 0 else (
                f"deterministic protocol issued {aborts} abort decision(s); "
                "expected zero (no deadlocks, no validation)"
            ),
        ),
    ]


# ----------------------------------------------------------------------
# distributed-run oracles (repro.dist 2PC cells)
# ----------------------------------------------------------------------


def evaluate_dist_run(scenario, report) -> Tuple[OracleVerdict, ...]:
    """Judge one distributed 2PC run against the five chaos oracles.

    Every oracle is *required* regardless of plan: the whole point of
    the chaos matrix is that loss, duplication, partitions and
    coordinator crashes must never cost atomicity or conservation —
    only throughput.

    1. **dist-conservation** — cross-shard transfers move money, never
       create it: the merged final snapshot sums to the initial sum.
    2. **dist-atomicity** — all-or-nothing per transaction: a committed
       transaction's writes are applied on every shard holding a slice
       of its write set; a presumed-abort transaction is applied
       nowhere.
    3. **dist-replay** — the decision log is a serialization order:
       replaying the committed write sets in log order over the initial
       data reproduces the final snapshot exactly.
    4. **dist-locks** — no orphans: at quiescence no participant holds
       a prepare lock or an undecided prepared transaction.
    5. **dist-taxonomy** — every aborted client attempt carries a
       machine-readable ``2pc-*`` reason code.
    """
    from repro.dist.recovery import COMMIT as DIST_COMMIT
    from repro.engine.reasons import TPC_ABORT_CODES

    verdicts: List[OracleVerdict] = []

    expected_total = sum(scenario.initial_data.values())
    actual_total = sum(report.final_snapshot.values())
    verdicts.append(
        OracleVerdict(
            "dist-conservation",
            actual_total == expected_total,
            required=True,
            detail=f"sum(balances) = {actual_total}, expected {expected_total}",
        )
    )

    atomicity_detail = ""
    log_state = report.coordinator.log.replay()
    for txn_id in sorted(log_state):
        shards, decision, _ended, _index = log_state[txn_id]
        applied_on = sorted(
            name
            for name, participant in report.participants.items()
            if txn_id in participant.applied
        )
        if decision == DIST_COMMIT:
            # a commit needs every shard's YES vote, so every shard of
            # the transaction must have prepared — and therefore must
            # have applied its slice (possibly empty) by quiescence
            missing = [
                name for name in shards if txn_id not in report.participants[name].applied
            ]
            aborted_on = sorted(
                name
                for name, participant in report.participants.items()
                if participant.outcomes.get(txn_id) == "abort"
            )
            if aborted_on:
                atomicity_detail = (
                    f"T{txn_id} committed but {aborted_on} recorded abort"
                )
                break
            if missing:
                atomicity_detail = f"T{txn_id} committed but {missing} never applied"
                break
        else:
            if applied_on:
                atomicity_detail = (
                    f"T{txn_id} presumed aborted but applied on {applied_on}"
                )
                break
    verdicts.append(
        OracleVerdict(
            "dist-atomicity", not atomicity_detail, required=True, detail=atomicity_detail
        )
    )

    replayed = dict(scenario.initial_data)
    for _txn_id, writes in report.committed:
        replayed.update(writes)
    replay_detail = ""
    if replayed != report.final_snapshot:
        diff = sorted(
            key
            for key in set(replayed) | set(report.final_snapshot)
            if replayed.get(key) != report.final_snapshot.get(key)
        )
        replay_detail = (
            f"replaying the decision log diverges from the final state on {diff[:5]}"
        )
    verdicts.append(
        OracleVerdict("dist-replay", not replay_detail, required=True, detail=replay_detail)
    )

    lock_detail = ""
    for name in sorted(report.participants):
        participant = report.participants[name]
        if participant.locks or participant.in_doubt:
            lock_detail = (
                f"{name} still holds locks={sorted(participant.locks)} "
                f"in-doubt={sorted(participant.in_doubt)} at quiescence"
            )
            break
    verdicts.append(
        OracleVerdict("dist-locks", not lock_detail, required=True, detail=lock_detail)
    )

    taxonomy_detail = ""
    for record in report.abort_records:
        if record.code not in TPC_ABORT_CODES:
            taxonomy_detail = (
                f"aborted attempt (spec {record.spec_index}, attempt "
                f"{record.attempt}) carries code {record.code!r}, "
                f"not a 2pc-* taxonomy code"
            )
            break
    verdicts.append(
        OracleVerdict(
            "dist-taxonomy", not taxonomy_detail, required=True, detail=taxonomy_detail
        )
    )
    if getattr(report, "groups", None):
        verdicts.extend(replication_verdicts(scenario, report))
    return tuple(verdicts)


# ----------------------------------------------------------------------
# replication oracles (Paxos-replicated shards, repro.dist.replication)
# ----------------------------------------------------------------------


def _replay_shard_log(initial, prefix):
    """An independent mini-interpreter for a shard's chosen 2PC log.

    Deliberately *not* the production apply path: it re-derives the
    final key/value state from the committed log prefix with its own
    version bookkeeping, so a bug in :meth:`ReplicatedParticipant.
    apply_command` cannot vouch for itself.
    """
    values = dict(initial)
    versions = {key: 0 for key in initial}
    prepared: Dict[int, Dict] = {}
    locks: Dict[str, int] = {}
    outcomes: Dict[int, str] = {}
    for _term, command in prefix:
        kind = command[0]
        if kind == "noop":
            continue
        if kind == "prepare":
            _, txn_id, reads, writes = command
            if txn_id in outcomes or txn_id in prepared:
                continue  # duplicate chosen entry: first application decided
            footprint = set(reads) | set(writes)
            conflicted = any(
                locks.get(key) not in (None, txn_id) for key in footprint
            )
            stale = any(
                versions.get(key, 0) != version for key, version in reads.items()
            )
            if conflicted or stale:
                outcomes[txn_id] = "abort"
                continue
            prepared[txn_id] = dict(writes)
            for key in footprint:
                locks[key] = txn_id
        elif kind == "decide":
            _, txn_id, outcome = command
            writes = prepared.pop(txn_id, None)
            for key in [k for k, owner in locks.items() if owner == txn_id]:
                del locks[key]
            if writes is not None:
                if outcome == "commit":
                    for key in sorted(writes):
                        values[key] = writes[key]
                        versions[key] = versions.get(key, 0) + 1
                outcomes[txn_id] = outcome
            else:
                outcomes.setdefault(txn_id, outcome)
    return values


def replication_verdicts(scenario, report) -> List[OracleVerdict]:
    """The four replica-group oracles, judged per shard group.

    1. **repl-log-safety** — chosen-prefix agreement: for every pair of
       replicas in a group, their logs agree entry-for-entry up to the
       shorter commit index.  This is the consensus safety property;
       a divergence means two replicas chose different values for the
       same slot.
    2. **repl-lease-uniqueness** — at most one replica ever became
       leader in any given term (from the union of every replica's
       durable ``leader_stints``), and no replica's durable vote
       record grants two different candidates in one term.
    3. **repl-state-agreement** — an independent replay of the
       authoritative replica's committed log prefix over the shard's
       initial slice reproduces its store exactly, and every live
       replica that has applied as much as the authoritative one holds
       a byte-identical snapshot.
    4. **repl-quorum-liveness** — progress was not silently lost: the
       run committed at least one transaction, and under the faultless
       plan no attempt was ever aborted with ``repl-no-quorum`` (a
       quorum-loss report without a fault injection is a false alarm).
    """
    from repro.engine.reasons import ABORT_REPL_NO_QUORUM

    verdicts: List[OracleVerdict] = []

    safety_detail = ""
    for shard in sorted(report.groups):
        group = report.groups[shard]
        replicas = group.replicas
        for left_index in range(len(replicas)):
            for right_index in range(left_index + 1, len(replicas)):
                left, right = replicas[left_index], replicas[right_index]
                agreed = min(left.commit_index, right.commit_index)
                for slot in range(agreed):
                    if left.log[slot] != right.log[slot]:
                        safety_detail = (
                            f"{shard}: {left.name} and {right.name} disagree "
                            f"at committed slot {slot}: "
                            f"{left.log[slot]!r} vs {right.log[slot]!r}"
                        )
                        break
                if safety_detail:
                    break
            if safety_detail:
                break
        if safety_detail:
            break
    verdicts.append(
        OracleVerdict(
            "repl-log-safety", not safety_detail, required=True, detail=safety_detail
        )
    )

    lease_detail = ""
    for shard in sorted(report.groups):
        group = report.groups[shard]
        leaders_by_term: Dict[int, Set[str]] = {}
        for rep in group.replicas:
            for stint in rep.leader_stints:
                leaders_by_term.setdefault(stint["term"], set()).add(stint["replica"])
        for term in sorted(leaders_by_term):
            if len(leaders_by_term[term]) > 1:
                lease_detail = (
                    f"{shard}: term {term} had leaders "
                    f"{sorted(leaders_by_term[term])}"
                )
                break
        if lease_detail:
            break
        for rep in group.replicas:
            grants_by_term: Dict[int, Set[str]] = {}
            for term, candidate in rep.vote_grants:
                grants_by_term.setdefault(term, set()).add(candidate)
            double = [t for t, cands in grants_by_term.items() if len(cands) > 1]
            if double:
                term = min(double)
                lease_detail = (
                    f"{shard}: {rep.name} granted term {term} to "
                    f"{sorted(grants_by_term[term])}"
                )
                break
        if lease_detail:
            break
    verdicts.append(
        OracleVerdict(
            "repl-lease-uniqueness",
            not lease_detail,
            required=True,
            detail=lease_detail,
        )
    )

    agreement_detail = ""
    for shard in sorted(report.groups):
        group = report.groups[shard]
        authority = group.authoritative
        replayed = _replay_shard_log(
            authority.initial_data, authority.log[: authority.last_applied]
        )
        snapshot = authority.store.snapshot()
        if replayed != snapshot:
            diff = sorted(
                key
                for key in set(replayed) | set(snapshot)
                if replayed.get(key) != snapshot.get(key)
            )
            agreement_detail = (
                f"{shard}: independent log replay diverges from "
                f"{authority.name}'s store on {diff[:5]}"
            )
            break
        for rep in group.live:
            if rep.last_applied == authority.last_applied and (
                rep.store.snapshot() != snapshot
            ):
                agreement_detail = (
                    f"{shard}: {rep.name} applied the same prefix as "
                    f"{authority.name} but holds a different snapshot"
                )
                break
        if agreement_detail:
            break
    verdicts.append(
        OracleVerdict(
            "repl-state-agreement",
            not agreement_detail,
            required=True,
            detail=agreement_detail,
        )
    )

    liveness_detail = ""
    if report.commit_count < 1:
        liveness_detail = "no transaction committed (replication stalled the run)"
    elif scenario.plan == "none":
        false_alarms = [
            record
            for record in report.abort_records
            if record.code == ABORT_REPL_NO_QUORUM
        ]
        if false_alarms:
            record = false_alarms[0]
            liveness_detail = (
                f"faultless plan reported quorum loss: spec "
                f"{record.spec_index} attempt {record.attempt} aborted "
                f"with {ABORT_REPL_NO_QUORUM!r}"
            )
    verdicts.append(
        OracleVerdict(
            "repl-quorum-liveness",
            not liveness_detail,
            required=True,
            detail=liveness_detail,
        )
    )
    return verdicts
