"""Lightweight directed-graph utilities.

The theory side needs precedence (conflict) graphs and their cycles; the
engine side needs serialization graphs and wait-for graphs with dynamic
node/edge removal.  A tiny dependency-free digraph keeps those uses
uniform and easy to test.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable


class DiGraph:
    """A simple directed graph with hashable nodes.

    Supports the operations the reproduction needs: edge insertion and
    removal, cycle detection, topological sorting, reachability, and
    extraction of one witness cycle (useful for deadlock-victim choice and
    for explaining non-serializability).
    """

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add a node (a no-op if it already exists)."""
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, source: Node, target: Node) -> None:
        """Add a directed edge ``source -> target`` (nodes auto-created)."""
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def remove_node(self, node: Node) -> None:
        """Remove a node and all edges incident to it (no-op if absent)."""
        if node not in self._succ:
            return
        for target in self._succ.pop(node):
            self._pred[target].discard(node)
        for source in self._pred.pop(node):
            self._succ[source].discard(node)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove an edge if present."""
        if source in self._succ:
            self._succ[source].discard(target)
        if target in self._pred:
            self._pred[target].discard(source)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> List[Node]:
        return list(self._succ)

    def edges(self) -> List[Tuple[Node, Node]]:
        return [(u, v) for u, targets in self._succ.items() for v in targets]

    def successors(self, node: Node) -> Set[Node]:
        return set(self._succ.get(node, set()))

    def predecessors(self, node: Node) -> Set[Node]:
        return set(self._pred.get(node, set()))

    def has_edge(self, source: Node, target: Node) -> bool:
        return target in self._succ.get(source, set())

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, set()))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, set()))

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def has_cycle(self) -> bool:
        """Whether the graph contains a directed cycle."""
        return self.find_cycle() is not None

    def find_cycle(self) -> Optional[List[Node]]:
        """Return one directed cycle as a node list, or ``None`` if acyclic.

        The returned list ``[v_0, v_1, ..., v_k]`` satisfies
        ``v_0 == v_k`` and every consecutive pair is an edge.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Node, int] = {node: WHITE for node in self._succ}
        parent: Dict[Node, Optional[Node]] = {}

        for root in self._succ:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(self._succ[root]))]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if color[child] == GRAY:
                        # found a back edge node -> child: rebuild the cycle
                        cycle = [node]
                        current = node
                        while current != child:
                            current = parent[current]
                            cycle.append(current)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def topological_sort(self) -> List[Node]:
        """Kahn's algorithm; raises :class:`ValueError` if the graph has a cycle."""
        in_degree = {node: len(self._pred[node]) for node in self._succ}
        queue = deque(sorted((n for n, d in in_degree.items() if d == 0), key=repr))
        order: List[Node] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for target in sorted(self._succ[node], key=repr):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    queue.append(target)
        if len(order) != len(self._succ):
            raise ValueError("graph contains a cycle; no topological order exists")
        return order

    def all_topological_sorts(self, limit: Optional[int] = None) -> List[List[Node]]:
        """All topological orders (up to ``limit``); empty if the graph is cyclic.

        The enumeration backtracks with an explicit stack of choice
        iterators (one per prefix position) rather than recursion, so
        graphs with thousands of nodes — e.g. large conflict graphs —
        never hit Python's recursion limit.
        """
        if self.has_cycle():
            return []
        total = len(self._succ)
        if total == 0:
            return [[]]  # the empty graph has exactly one (empty) order
        in_degree = {node: len(self._pred[node]) for node in self._succ}
        results: List[List[Node]] = []
        order: List[Node] = []
        placed: Set[Node] = set()

        def available() -> Iterator[Node]:
            return iter(
                sorted(
                    (n for n, d in in_degree.items() if d == 0 and n not in placed),
                    key=repr,
                )
            )

        def apply(node: Node) -> None:
            order.append(node)
            placed.add(node)
            for target in self._succ[node]:
                in_degree[target] -= 1

        def undo() -> None:
            node = order.pop()
            placed.discard(node)
            for target in self._succ[node]:
                in_degree[target] += 1

        # stack[i] iterates the candidates for prefix position i;
        # invariant at loop top: len(order) == len(stack) - 1
        stack: List[Iterator[Node]] = [available()]
        while stack:
            if limit is not None and len(results) >= limit:
                break
            node = next(stack[-1], None)
            if node is None:
                stack.pop()
                if order:
                    undo()
                continue
            apply(node)
            if len(order) == total:
                results.append(list(order))
                undo()
            else:
                stack.append(available())
        return results

    def reachable_from(self, node: Node) -> Set[Node]:
        """The set of nodes reachable from ``node`` (excluding ``node`` unless on a cycle)."""
        seen: Set[Node] = set()
        frontier = list(self._succ.get(node, set()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succ.get(current, set()))
        return seen

    def is_connected_undirected(self) -> bool:
        """Whether the underlying undirected graph is connected (empty graph counts)."""
        if not self._succ:
            return True
        nodes = list(self._succ)
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in self._succ[current] | self._pred[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(nodes)

    def copy(self) -> "DiGraph":
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone


class WaitForGraph(DiGraph):
    """A wait-for graph for deadlock detection in the lock manager.

    Nodes are transaction identifiers; an edge ``A -> B`` means A waits
    for a lock held by B.  Deadlock exists iff the graph has a cycle.
    """

    def add_wait(self, waiter: Node, holder: Node) -> None:
        """Record that ``waiter`` is blocked on a lock held by ``holder``."""
        if waiter == holder:
            return
        self.add_edge(waiter, holder)

    def remove_transaction(self, txn: Node) -> None:
        """Forget a transaction entirely (on commit or abort)."""
        self.remove_node(txn)

    def clear_waits(self, waiter: Node) -> None:
        """Remove the waiter's outgoing edges only (its lock request was granted).

        Edges *into* the waiter — other transactions blocked on locks it
        still holds — must survive, otherwise later deadlock cycles would
        go undetected.
        """
        for holder in list(self.successors(waiter)):
            self.remove_edge(waiter, holder)

    def cycle_through(self, start: Node) -> Optional[List[Node]]:
        """A directed cycle through ``start``, or ``None``.

        Deadlock detection calls this once per new wait edge: any cycle
        a ``waiter -> holder`` edge closes necessarily passes through the
        waiter, so a reachability search from the waiter back to itself
        is complete for the just-added edges — and costs O(reachable
        subgraph) instead of the whole-graph scan of :meth:`find_cycle`,
        which dominated engine profiles at 1,000 clients (every blocked
        request re-walked every parked transaction).

        Returns the same ``[v_0, ..., v_k]`` shape as :meth:`find_cycle`
        (``v_0 == v_k == start``).
        """
        if start not in self._succ:
            return None
        succ = self._succ
        stack: List[Tuple[Node, Iterator[Node]]] = [(start, iter(succ[start]))]
        path: List[Node] = [start]
        visited = {start}
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child == start:
                    path.append(start)
                    return path
                if child not in visited:
                    visited.add(child)
                    stack.append((child, iter(succ.get(child, ()))))
                    path.append(child)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                path.pop()
        return None

    def deadlocked_transactions(self, through: Optional[Node] = None) -> List[Node]:
        """Transactions involved in some deadlock cycle (empty list if none).

        With ``through`` set, only cycles containing that transaction are
        considered — the right question after adding its wait edges, and
        far cheaper than scanning the whole graph (see
        :meth:`cycle_through`).
        """
        if through is not None:
            cycle = self.cycle_through(through)
        else:
            cycle = self.find_cycle()
        if cycle is None:
            return []
        return list(dict.fromkeys(cycle[:-1]))
