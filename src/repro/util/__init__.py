"""Small shared utilities (graphs, statistics helpers) used across subpackages."""

from repro.util.graphs import DiGraph, WaitForGraph

__all__ = ["DiGraph", "WaitForGraph"]
