"""repro — a reproduction of Kung & Papadimitriou (SIGMOD 1979).

*An Optimality Theory of Concurrency Control for Databases* introduced
the information/performance framework for schedulers: a scheduler's
performance is its *fixpoint set* (the request streams it passes without
delay), its cost is the *information* it uses, and for each level of
information there is a well-defined optimal scheduler (serial,
serialization, weak serialization, ...).  Section 5 analyses locking —
two-phase locking, its 2PL' improvement, and the geometry of progress
spaces — through the same lens.

The package is organised as:

* :mod:`repro.core` — the transaction-system model, schedules, Herbrand
  semantics, serializability theory, information levels, schedulers and
  the optimality theorems.
* :mod:`repro.locking` — locking policies (2PL, 2PL', tree locking), the
  lock-respecting scheduler and the geometry of locking.
* :mod:`repro.engine` — an executable multi-user concurrency-control
  engine (strict 2PL, serialization-graph testing, timestamp ordering,
  optimistic validation) plus workload generation and a discrete-event
  simulator, used to measure the performance consequences the paper
  argues analytically.
* :mod:`repro.analysis` — exhaustive schedule classification, fixpoint
  counting, delay-free probabilities and the experiment report helpers.

Quickstart::

    from repro import banking_system, SerialScheduler, SerializationScheduler
    from repro.core.optimality import certify

    instance = banking_system()
    print(certify(SerializationScheduler(instance)).summary())
"""

from repro.core import (
    ConflictSerializationScheduler,
    InformationLevel,
    IntegrityConstraint,
    Interpretation,
    MaximumInformation,
    MaximumInformationScheduler,
    MinimumInformation,
    Schedule,
    Scheduler,
    SemanticInformation,
    SerialScheduler,
    SerializationScheduler,
    Step,
    StepRef,
    SyntacticInformation,
    SystemState,
    Transaction,
    TransactionSystem,
    WeakSerializationScheduler,
    all_schedules,
    all_serial_schedules,
    count_schedules,
    execute_schedule,
    execute_serial,
    is_conflict_serializable,
    is_serial,
    is_serializable,
    is_weakly_serializable,
)
from repro.core.examples import (
    banking_system,
    banking_transaction_system,
    counter_pair_system,
    figure1_history,
    figure1_system,
    figure1_transaction_system,
    figure2_system,
    figure2_transaction,
)
from repro.core.instance import SystemInstance
from repro.core.optimality import (
    OptimalityReport,
    certify,
    is_optimal,
    minimum_information_adversary,
    optimal_fixpoint_set,
    performance_partial_order,
    theorem1_upper_bound,
)
from repro.locking import (
    LockRespectingScheduler,
    LockedTransactionSystem,
    NoLockingPolicy,
    ProgressSpace,
    TreeLockingPolicy,
    TwoPhaseLockingPolicy,
    TwoPhasePrimePolicy,
    policy_performance,
    progress_space,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "Step",
    "StepRef",
    "Transaction",
    "TransactionSystem",
    "SystemInstance",
    "Interpretation",
    "IntegrityConstraint",
    "SystemState",
    "Schedule",
    # schedules & execution
    "all_schedules",
    "all_serial_schedules",
    "count_schedules",
    "is_serial",
    "execute_schedule",
    "execute_serial",
    # serializability
    "is_serializable",
    "is_weakly_serializable",
    "is_conflict_serializable",
    # information & schedulers
    "InformationLevel",
    "MinimumInformation",
    "SyntacticInformation",
    "SemanticInformation",
    "MaximumInformation",
    "Scheduler",
    "SerialScheduler",
    "SerializationScheduler",
    "ConflictSerializationScheduler",
    "WeakSerializationScheduler",
    "MaximumInformationScheduler",
    # optimality
    "theorem1_upper_bound",
    "optimal_fixpoint_set",
    "certify",
    "is_optimal",
    "OptimalityReport",
    "minimum_information_adversary",
    "performance_partial_order",
    # paper examples
    "banking_system",
    "banking_transaction_system",
    "figure1_system",
    "figure1_transaction_system",
    "figure1_history",
    "figure2_system",
    "figure2_transaction",
    "counter_pair_system",
    # locking
    "LockedTransactionSystem",
    "TwoPhaseLockingPolicy",
    "TwoPhasePrimePolicy",
    "NoLockingPolicy",
    "TreeLockingPolicy",
    "LockRespectingScheduler",
    "policy_performance",
    "ProgressSpace",
    "progress_space",
]
