"""The performance hierarchy: exhaustive classification of all schedules.

The core prediction of the optimality theory is a chain of inclusions
between the fixpoint sets of the optimal schedulers at increasing levels
of information::

    serial  ⊆  SR(T)  ⊆  WSR(T)  ⊆  C(T)  ⊆  H

with the locking-policy output sets squeezed between ``serial`` and
``SR(T)``.  This module enumerates every schedule of a small system,
classifies it against every notion the library implements, counts the
classes, and renders the comparison table (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.information import STANDARD_LEVELS
from repro.core.instance import SystemInstance
from repro.core.schedules import Schedule, all_schedules, count_schedules, is_serial
from repro.core.serializability import (
    is_conflict_serializable,
    is_serializable,
    is_view_serializable,
    is_weakly_serializable,
)


@dataclass(frozen=True)
class ScheduleClassCounts:
    """How many schedules of ``H`` fall into each class."""

    total: int
    serial: int
    conflict_serializable: int
    view_serializable: int
    herbrand_serializable: int
    weakly_serializable: int
    correct: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "serial": self.serial,
            "conflict_serializable": self.conflict_serializable,
            "view_serializable": self.view_serializable,
            "herbrand_serializable": self.herbrand_serializable,
            "weakly_serializable": self.weakly_serializable,
            "correct": self.correct,
        }

    def inclusions_hold(self) -> bool:
        """The paper's chain of inclusions, as counts."""
        return (
            self.serial
            <= self.conflict_serializable
            <= self.herbrand_serializable
            <= self.weakly_serializable
            <= self.correct
            <= self.total
        )


@dataclass(frozen=True)
class HierarchyRow:
    """One scheduler/level row of the hierarchy table."""

    name: str
    fixpoint_size: int
    total: int

    @property
    def fraction(self) -> float:
        return self.fixpoint_size / self.total if self.total else 0.0


def classify_all_schedules(
    instance: SystemInstance,
    max_concatenation_length: Optional[int] = None,
) -> ScheduleClassCounts:
    """Classify every schedule of the instance (small formats only)."""
    system = instance.system
    counts = {
        "serial": 0,
        "conflict": 0,
        "view": 0,
        "herbrand": 0,
        "weak": 0,
        "correct": 0,
    }
    total = 0
    for schedule in all_schedules(system):
        total += 1
        if is_serial(system, schedule):
            counts["serial"] += 1
        if is_conflict_serializable(system, schedule):
            counts["conflict"] += 1
        if is_view_serializable(system, schedule):
            counts["view"] += 1
        if is_serializable(system, schedule):
            counts["herbrand"] += 1
        if is_weakly_serializable(
            system,
            instance.interpretation,
            schedule,
            instance.consistent_states,
            max_concatenation_length,
        ):
            counts["weak"] += 1
        if instance.is_correct_schedule(schedule):
            counts["correct"] += 1
    return ScheduleClassCounts(
        total=total,
        serial=counts["serial"],
        conflict_serializable=counts["conflict"],
        view_serializable=counts["view"],
        herbrand_serializable=counts["herbrand"],
        weakly_serializable=counts["weak"],
        correct=counts["correct"],
    )


def fixpoint_hierarchy(instance: SystemInstance) -> List[HierarchyRow]:
    """Fixpoint-set sizes of the optimal scheduler at each standard information level."""
    total = count_schedules(instance.system)
    rows = []
    for level in STANDARD_LEVELS:
        fixpoint = level.optimal_fixpoint_set(instance)
        rows.append(HierarchyRow(name=level.name, fixpoint_size=len(fixpoint), total=total))
    return rows


def hierarchy_table(instance: SystemInstance) -> str:
    """The E10 table: |P| and |P|/|H| per information level."""
    rows = fixpoint_hierarchy(instance)
    return format_table(
        ["information level", "|P|", "|H|", "|P| / |H|"],
        [
            (row.name, row.fixpoint_size, row.total, f"{row.fraction:.4f}")
            for row in rows
        ],
    )


def scheduler_fixpoint_sizes(schedulers: Sequence) -> List[HierarchyRow]:
    """Fixpoint sizes of concrete scheduler objects (exhaustive enumeration)."""
    rows = []
    for scheduler in schedulers:
        total = count_schedules(scheduler.system)
        rows.append(
            HierarchyRow(
                name=scheduler.name,
                fixpoint_size=len(scheduler.fixpoint_set()),
                total=total,
            )
        )
    return rows
