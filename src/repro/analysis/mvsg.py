"""Multi-version serialization graph (MVSG) checking.

The engine's single-version protocols are checked against the paper's
theory through the conflict graph of their committed histories.  That
check is **wrong** for multi-version schedules: a reader served from an
old version appears *after* the superseding writer in the log, so the
conflict graph draws the edge writer → reader, while in the one-copy
equivalent serial order the reader must come *first*.  The right tool is
Bernstein & Goodman's multi-version serialization graph: given the
reads-from relation of the execution and, per key, the order in which
versions were installed, build

* a node per committed transaction;
* for every read ``r_j(x_i)`` (``T_j`` read the version of ``x`` written
  by ``T_i``): an edge ``T_i -> T_j`` (reads-from);
* for every read ``r_j(x_i)`` and every other committed writer ``T_k``
  of ``x``: if ``T_k``'s version precedes ``T_i``'s in the version
  order, the edge ``T_k -> T_i`` (the superseded writer serialises
  before the one that was read); otherwise the edge ``T_j -> T_k`` (the
  reader serialises before the writer that later superseded what it
  read).

The committed history is **one-copy serializable (1SR)** with respect to
the version order the protocol actually produced iff this graph is
acyclic.  This is the bridge back to the paper: multi-version protocols
enlarge the set of admissible schedules beyond the conflict-serializable
single-version ones, and the MVSG is the certificate that they stayed
within the correct (1SR) class while doing so.

The multi-version protocols (:class:`~repro.engine.protocols.mvto.
MultiVersionTimestampOrdering`, :class:`~repro.engine.protocols.
snapshot_isolation.SnapshotIsolation`) log the inputs as they run —
``mv_reads`` and ``committed_version_orders()`` — so
:meth:`MVHistory.from_protocol` captures a finished execution in one
call.  Note that plain snapshot isolation *can* fail this check (write
skew is admitted by design); serializable SI and MVTO cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.engine.mvstore import VersionedRead
from repro.util.graphs import DiGraph

#: position assigned to the initial (writer-less) version of every key;
#: real versions are ordered after it.
_INITIAL_POSITION = -1


@dataclass(frozen=True)
class MVHistory:
    """A committed multi-version execution, ready for MVSG checking.

    Parameters
    ----------
    committed:
        The committed transaction identifiers.
    reads:
        Reads-from observations (``writer is None`` = initial version).
        Reads by or from transactions outside ``committed`` are ignored
        by the checker — aborted work never happened.
    version_orders:
        Per key, the committed writers in version order (oldest first),
        *excluding* the initial version.
    """

    committed: FrozenSet[int]
    reads: Tuple[VersionedRead, ...]
    version_orders: Mapping[str, Tuple[int, ...]]

    @classmethod
    def from_protocol(cls, protocol) -> "MVHistory":
        """Capture the committed history of a multi-version protocol.

        Uses ``mvsg_transactions()`` when the protocol provides it, so
        kernel fast-path readers — which never enter the protocol's
        ``committed`` set — are certified alongside ordinary commits.
        """
        if hasattr(protocol, "mvsg_transactions"):
            committed = protocol.mvsg_transactions()
        else:
            committed = frozenset(protocol.committed)
        return cls(
            committed=committed,
            reads=tuple(protocol.mv_reads),
            version_orders=protocol.committed_version_orders(),
        )


def multiversion_serialization_graph(history: MVHistory) -> DiGraph:
    """Build the MVSG of a committed multi-version history."""
    committed = history.committed
    graph = DiGraph()
    for txn_id in committed:
        graph.add_node(txn_id)

    positions: Dict[str, Dict[int, int]] = {}
    writers_by_key: Dict[str, List[int]] = {}
    for key, order in history.version_orders.items():
        ordered = [txn for txn in order if txn in committed]
        positions[key] = {txn: index for index, txn in enumerate(ordered)}
        writers_by_key[key] = ordered

    for read in history.reads:
        reader = read.txn_id
        writer = read.writer
        if reader not in committed:
            continue
        if writer is not None and writer not in committed:
            # a committed reader observed an uncommitted/aborted version:
            # impossible under the engine's deferred-write protocols, but
            # a manually built history may contain it — treat the version
            # as absent rather than crash.
            continue
        if writer == reader:
            continue
        if writer is not None:
            graph.add_edge(writer, reader)
        key_positions = positions.get(read.key, {})
        read_position = (
            _INITIAL_POSITION if writer is None else key_positions.get(writer)
        )
        if read_position is None:
            continue
        for other in writers_by_key.get(read.key, ()):
            if other == writer or other == reader:
                continue
            if key_positions[other] < read_position:
                graph.add_edge(other, writer)
            else:
                graph.add_edge(reader, other)
    return graph


def one_copy_serializable(history: MVHistory) -> bool:
    """Whether the committed history is 1SR under its actual version order."""
    return not multiversion_serialization_graph(history).has_cycle()


def explain_mvsg_cycle(history: MVHistory) -> Optional[List[int]]:
    """A witness cycle of committed transactions, or ``None`` if 1SR.

    Useful in tests and reports: for a write-skew history the cycle is
    the pair of transactions that each read what the other wrote.
    """
    return multiversion_serialization_graph(history).find_cycle()
