"""Locking-policy comparison (experiments E6, E9 and the Section 5.5 conclusions).

For each locking policy we measure, on a concrete transaction system:

* the number of lock-feasible schedules of ``L(T)`` (the LRS fixpoint),
* the number of *distinct projected* schedules of ``T`` the policy passes
  without delay (the Section 5.2 performance measure),
* whether every projected schedule is (Herbrand) serializable — i.e.
  whether the policy is correct on this system,
* whether the policy's locked transactions are two-phase / well-formed,
* deadlock possibility (for two-transaction systems, via the geometry).

:func:`compare_locking_policies` computes these side by side so the
benchmarks can show, e.g., that 2PL' strictly dominates 2PL while both
stay correct, and that dropping locks entirely admits incorrect schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.reporting import format_table
from repro.core.schedules import count_schedules
from repro.core.serializability import is_serializable
from repro.core.transactions import TransactionSystem
from repro.locking.geometry import ProgressSpace
from repro.locking.lock_manager import lock_feasible_schedules, policy_output_schedules
from repro.locking.policies import LockingPolicy, is_two_phase, is_well_formed, is_well_nested


@dataclass(frozen=True)
class LockingPolicyReport:
    """The measured behaviour of one locking policy on one system."""

    policy_name: str
    system_name: str
    total_schedules: int
    lock_feasible_schedules: int
    projected_schedules: int
    all_projected_serializable: bool
    separable: bool
    two_phase: bool
    well_nested: bool
    can_deadlock: Optional[bool]

    @property
    def performance_fraction(self) -> float:
        """Projected delay-free schedules as a fraction of ``|H(T)|``."""
        return (
            self.projected_schedules / self.total_schedules
            if self.total_schedules
            else 0.0
        )

    def as_row(self) -> tuple:
        return (
            self.policy_name,
            self.lock_feasible_schedules,
            self.projected_schedules,
            self.total_schedules,
            f"{self.performance_fraction:.3f}",
            "yes" if self.all_projected_serializable else "NO",
            "yes" if self.two_phase else "no",
            "-" if self.can_deadlock is None else ("yes" if self.can_deadlock else "no"),
        )


def analyse_policy(
    policy: LockingPolicy, system: TransactionSystem
) -> LockingPolicyReport:
    """Measure one policy on one system (exhaustive; small systems only)."""
    locked = policy(system)
    feasible = lock_feasible_schedules(locked)
    projected = policy_output_schedules(locked)
    all_serializable = all(is_serializable(system, s) for s in projected)
    two_phase = all(is_two_phase(txn) for txn in locked)
    well_nested = all(is_well_nested(txn) for txn in locked)
    can_deadlock: Optional[bool] = None
    if len(locked) == 2:
        can_deadlock = ProgressSpace.from_locked_system(locked).has_deadlock()
    return LockingPolicyReport(
        policy_name=policy.name,
        system_name=system.name,
        total_schedules=count_schedules(system),
        lock_feasible_schedules=len(feasible),
        projected_schedules=len(projected),
        all_projected_serializable=all_serializable,
        separable=policy.separable,
        two_phase=two_phase,
        well_nested=well_nested,
        can_deadlock=can_deadlock,
    )


def compare_locking_policies(
    policies: Sequence[LockingPolicy], system: TransactionSystem
) -> List[LockingPolicyReport]:
    """Measure several policies on the same system."""
    return [analyse_policy(policy, system) for policy in policies]


def policy_dominates(
    better: LockingPolicy, worse: LockingPolicy, system: TransactionSystem
) -> bool:
    """Whether ``better`` passes a strict superset of ``worse``'s delay-free schedules."""
    better_set = policy_output_schedules(better(system))
    worse_set = policy_output_schedules(worse(system))
    return worse_set < better_set


def locking_report_table(reports: Sequence[LockingPolicyReport]) -> str:
    """Render policy reports as the E9 comparison table."""
    return format_table(
        [
            "policy",
            "|feasible L(T)|",
            "|projected P|",
            "|H(T)|",
            "P/|H|",
            "serializable",
            "two-phase",
            "deadlock",
        ],
        [report.as_row() for report in reports],
    )
