"""Analysis tools: exhaustive classification, counting and experiment tables.

These are the routines the benchmarks and EXPERIMENTS.md are generated
from: classify every schedule of a small system into the paper's classes
(serial / conflict-serializable / SR / WSR / correct), compute fixpoint
sizes and the Section 6 delay-free probability ``|P| / |H|``, compare
locking policies, and format everything as plain-text tables.
"""

from repro.analysis.hierarchy import (
    HierarchyRow,
    ScheduleClassCounts,
    classify_all_schedules,
    fixpoint_hierarchy,
    hierarchy_table,
)
from repro.analysis.counting import (
    delay_free_probability,
    scheduler_delay_statistics,
    expected_displacement,
)
from repro.analysis.locking_analysis import (
    LockingPolicyReport,
    compare_locking_policies,
    locking_report_table,
)
from repro.analysis.mvsg import (
    MVHistory,
    explain_mvsg_cycle,
    multiversion_serialization_graph,
    one_copy_serializable,
)
from repro.analysis.reporting import format_table

__all__ = [
    "MVHistory",
    "explain_mvsg_cycle",
    "multiversion_serialization_graph",
    "one_copy_serializable",
    "HierarchyRow",
    "ScheduleClassCounts",
    "classify_all_schedules",
    "fixpoint_hierarchy",
    "hierarchy_table",
    "delay_free_probability",
    "scheduler_delay_statistics",
    "expected_displacement",
    "LockingPolicyReport",
    "compare_locking_policies",
    "locking_report_table",
    "format_table",
]
