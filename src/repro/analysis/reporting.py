"""Tiny plain-text table formatter shared by the analysis reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format headers + rows as an aligned plain-text table.

    Numbers are rendered with :func:`str`; floats should be pre-formatted
    by the caller if specific precision is wanted.
    """
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but there are {columns} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render([str(h) for h in headers])]
    lines.append(render(["-" * w for w in widths]))
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)
