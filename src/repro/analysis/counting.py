"""Section 6 counting: delay-free probabilities and displacement statistics.

The paper justifies the fixpoint-set measure by noting that, if all
request histories are equally likely, the probability that no transaction
step has to wait is ``|P| / |H|``, and that richer fixpoint sets also make
it easier (cheaper) to rearrange histories that are not in ``P``.  This
module computes both quantities exactly for small systems:

* :func:`delay_free_probability` — ``|P| / |H|`` for a scheduler,
* :func:`expected_displacement` — the expected number of requests a
  scheduler displaces when the history is drawn uniformly from ``H``
  (0 contribution for fixpoint histories), which is the "ease of
  rearrangement" proxy,
* :func:`scheduler_delay_statistics` — both of the above plus the
  fixpoint size, for a list of schedulers, as table-ready rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.core.schedules import all_schedules, count_schedules, random_schedule
from repro.core.schedulers import Scheduler


@dataclass(frozen=True)
class DelayStatistics:
    """Delay-related statistics of a single scheduler."""

    name: str
    fixpoint_size: int
    history_count: int
    delay_free_probability: float
    expected_displacement: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.fixpoint_size,
            self.history_count,
            f"{self.delay_free_probability:.4f}",
            f"{self.expected_displacement:.3f}",
        )


def delay_free_probability(scheduler: Scheduler) -> float:
    """``|P| / |H|`` — the probability a uniformly random history passes undelayed."""
    total = count_schedules(scheduler.system)
    return len(scheduler.fixpoint_set()) / total if total else 0.0


def expected_displacement(
    scheduler: Scheduler,
    sample_size: Optional[int] = None,
    seed: int = 0,
) -> float:
    """Expected number of displaced requests for a uniformly random history.

    With ``sample_size=None`` the expectation is exact (every history is
    enumerated); otherwise it is a Monte-Carlo estimate over
    ``sample_size`` uniform samples, which is what the larger-format
    benchmarks use.
    """
    if sample_size is None:
        histories = list(all_schedules(scheduler.system))
    else:
        rng = random.Random(seed)
        histories = [
            random_schedule(scheduler.system, rng) for _ in range(sample_size)
        ]
    if not histories:
        return 0.0
    return sum(scheduler.delay_count(h) for h in histories) / len(histories)


def scheduler_delay_statistics(
    schedulers: Sequence[Scheduler],
    sample_size: Optional[int] = None,
    seed: int = 0,
) -> List[DelayStatistics]:
    """Delay statistics for several schedulers over the same system."""
    stats = []
    for scheduler in schedulers:
        stats.append(
            DelayStatistics(
                name=scheduler.name,
                fixpoint_size=len(scheduler.fixpoint_set()),
                history_count=count_schedules(scheduler.system),
                delay_free_probability=delay_free_probability(scheduler),
                expected_displacement=expected_displacement(
                    scheduler, sample_size=sample_size, seed=seed
                ),
            )
        )
    return stats


def delay_statistics_table(
    schedulers: Sequence[Scheduler],
    sample_size: Optional[int] = None,
    seed: int = 0,
) -> str:
    """The E11 table: fixpoint size, delay-free probability and displacement."""
    stats = scheduler_delay_statistics(schedulers, sample_size=sample_size, seed=seed)
    return format_table(
        ["scheduler", "|P|", "|H|", "P(no delay)", "E[displaced requests]"],
        [s.as_row() for s in stats],
    )
