"""Information levels for schedulers (Section 3.3).

A *level of information* about a transaction system ``T`` is a set ``I``
of transaction systems containing ``T``: the scheduler knows only that
the system it handles lies somewhere in ``I``.  Equivalently, ``I`` is
induced by a *projection* operator ``I(·)``; the level is then
``{T' : I(T') = I(T)}``.

The four levels the paper analyses are modelled here as classes:

========================  =============================================
:class:`MinimumInformation`    only the format ``(m_1, ..., m_n)``
:class:`SyntacticInformation`  the full syntax (variables per step)
:class:`SemanticInformation`   syntax + interpretations, but *not* the
                               integrity constraints
:class:`MaximumInformation`    the complete instance, ``I = {T}``
========================  =============================================

Each level knows how to (a) decide whether two instances are
indistinguishable at that level, (b) compute the *optimal fixpoint set*
for that level on a concrete instance — using the characterisations
proved in Section 4 (serial schedules, ``SR(T)``, ``WSR(T)``, ``C(T)``)
— and (c) compare itself to other levels (``refines``), realising the
partial order on scheduler sophistication.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.instance import SystemInstance
from repro.core.schedules import Schedule, all_serial_schedules
from repro.core.serializability import (
    serializable_schedules,
    weakly_serializable_schedules,
)
from repro.core.transactions import TransactionSystem


class InformationLevel(abc.ABC):
    """Abstract information level: a projection of transaction-system instances."""

    #: Short identifier used in reports and comparisons.
    name: str = "abstract"

    #: Sophistication rank; higher means more information.  Used only for
    #: the built-in linear hierarchy of the paper's four levels.
    rank: int = -1

    @abc.abstractmethod
    def projection(self, instance: SystemInstance) -> object:
        """The information extracted from an instance at this level, ``I(T)``.

        Two instances are indistinguishable at this level iff their
        projections compare equal.
        """

    @abc.abstractmethod
    def optimal_fixpoint_set(self, instance: SystemInstance) -> List[Schedule]:
        """The fixpoint set of the optimal scheduler for this level on ``instance``.

        This realises ``∩_{T' ∈ I} C(T')`` via the paper's Section 4
        characterisations, which are exact.
        """

    def indistinguishable(self, a: SystemInstance, b: SystemInstance) -> bool:
        """Whether two instances present the same information at this level."""
        return self.projection(a) == self.projection(b)

    def refines(self, other: "InformationLevel") -> bool:
        """Whether this level carries at least as much information as ``other``.

        In the paper's notation, level ``I`` refines ``I'`` when
        ``I ⊆ I'`` — the more sophisticated scheduler's uncertainty set is
        smaller.  For the built-in linear hierarchy this is a rank
        comparison.
        """
        return self.rank >= other.rank

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class MinimumInformation(InformationLevel):
    """Only the format of the system is known (Section 4.1, "Minimum information")."""

    name = "minimum"
    rank = 0

    def projection(self, instance: SystemInstance) -> Tuple[int, ...]:
        return instance.system.format

    def optimal_fixpoint_set(self, instance: SystemInstance) -> List[Schedule]:
        """Theorem 2: only the serial schedules can be passed without delay."""
        return all_serial_schedules(instance.system)


class SyntacticInformation(InformationLevel):
    """Complete syntactic information (Section 4.2)."""

    name = "syntactic"
    rank = 1

    def projection(self, instance: SystemInstance) -> Tuple:
        system = instance.system
        return tuple(
            tuple(
                (step.variable, step.is_read_only, step.is_blind_write)
                for step in txn.steps
            )
            for txn in system.transactions
        )

    def optimal_fixpoint_set(self, instance: SystemInstance) -> List[Schedule]:
        """Theorem 3: the optimal fixpoint set is ``SR(T)`` (Herbrand serializability)."""
        return serializable_schedules(instance.system)


class SemanticInformation(InformationLevel):
    """All information except the integrity constraints (Section 4.3)."""

    name = "semantic"
    rank = 2

    def __init__(self, max_concatenation_length: Optional[int] = None) -> None:
        self.max_concatenation_length = max_concatenation_length

    def projection(self, instance: SystemInstance) -> Tuple:
        # Interpretations are Python callables and cannot be compared
        # structurally in general; the projection therefore pairs the
        # syntax with the identity of the interpretation object.  Two
        # instances share a level iff they share syntax and interpretation
        # (which is how the optimality experiments construct them).
        syntax = SyntacticInformation().projection(instance)
        return (syntax, id(instance.interpretation.step_functions))

    def optimal_fixpoint_set(self, instance: SystemInstance) -> List[Schedule]:
        """Theorem 4: the optimal fixpoint set is ``WSR(T)``."""
        return weakly_serializable_schedules(
            instance.system,
            instance.interpretation,
            instance.consistent_states,
            self.max_concatenation_length,
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.max_concatenation_length
            == other.max_concatenation_length  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self), self.max_concatenation_length))


class MaximumInformation(InformationLevel):
    """Complete information: ``I = {T}`` (Section 4.1, "Maximum information")."""

    name = "maximum"
    rank = 3

    def projection(self, instance: SystemInstance) -> object:
        return instance

    def optimal_fixpoint_set(self, instance: SystemInstance) -> List[Schedule]:
        """The optimal fixpoint set is all of ``C(T)``."""
        return instance.correct_schedules()


#: The paper's four levels in increasing order of information.
STANDARD_LEVELS: Tuple[InformationLevel, ...] = (
    MinimumInformation(),
    SyntacticInformation(),
    SemanticInformation(),
    MaximumInformation(),
)


def level_hierarchy(instance: SystemInstance) -> List[Tuple[str, List[Schedule]]]:
    """The optimal fixpoint set at each standard level, in increasing-information order.

    Theorem 1's corollary predicts the sets are nested:
    ``serial ⊆ SR(T) ⊆ WSR(T) ⊆ C(T)``.
    """
    return [
        (level.name, level.optimal_fixpoint_set(instance))
        for level in STANDARD_LEVELS
    ]
