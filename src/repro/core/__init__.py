"""Core model and theory from Kung & Papadimitriou (SIGMOD 1979).

This package implements the paper's primary contribution:

* the transaction-system model (syntax, semantics, integrity constraints)
  of Section 2 (:mod:`repro.core.transactions`, :mod:`repro.core.semantics`),
* schedules/histories and their enumeration (:mod:`repro.core.schedules`),
* Herbrand semantics and serializability theory, including weak
  serializability (:mod:`repro.core.herbrand`,
  :mod:`repro.core.serializability`),
* the information-based model for schedulers, fixpoint sets, and the
  optimality theorems of Sections 3-4 (:mod:`repro.core.information`,
  :mod:`repro.core.schedulers`, :mod:`repro.core.optimality`).
"""

from repro.core.transactions import (
    Step,
    Transaction,
    TransactionSystem,
    StepRef,
)
from repro.core.semantics import (
    Interpretation,
    IntegrityConstraint,
    SystemState,
    execute_schedule,
    execute_serial,
)
from repro.core.schedules import (
    Schedule,
    all_schedules,
    all_serial_schedules,
    is_legal,
    is_serial,
    count_schedules,
)
from repro.core.herbrand import (
    HerbrandTerm,
    HerbrandState,
    herbrand_execute,
    herbrand_final_state,
)
from repro.core.serializability import (
    is_serializable,
    is_weakly_serializable,
    is_conflict_serializable,
    is_view_serializable,
    serializable_schedules,
    weakly_serializable_schedules,
    conflict_graph,
    equivalent_serial_orders,
)
from repro.core.information import (
    InformationLevel,
    MinimumInformation,
    SyntacticInformation,
    SemanticInformation,
    MaximumInformation,
)
from repro.core.schedulers import (
    Scheduler,
    SerialScheduler,
    SerializationScheduler,
    WeakSerializationScheduler,
    MaximumInformationScheduler,
    ConflictSerializationScheduler,
    fixpoint_set,
    is_correct_scheduler,
)
from repro.core.optimality import (
    theorem1_upper_bound,
    optimal_fixpoint_set,
    is_optimal,
    OptimalityReport,
    minimum_information_adversary,
    performance_partial_order,
)

__all__ = [
    "Step",
    "Transaction",
    "TransactionSystem",
    "StepRef",
    "Interpretation",
    "IntegrityConstraint",
    "SystemState",
    "execute_schedule",
    "execute_serial",
    "Schedule",
    "all_schedules",
    "all_serial_schedules",
    "is_legal",
    "is_serial",
    "count_schedules",
    "HerbrandTerm",
    "HerbrandState",
    "herbrand_execute",
    "herbrand_final_state",
    "is_serializable",
    "is_weakly_serializable",
    "is_conflict_serializable",
    "is_view_serializable",
    "serializable_schedules",
    "weakly_serializable_schedules",
    "conflict_graph",
    "equivalent_serial_orders",
    "InformationLevel",
    "MinimumInformation",
    "SyntacticInformation",
    "SemanticInformation",
    "MaximumInformation",
    "Scheduler",
    "SerialScheduler",
    "SerializationScheduler",
    "WeakSerializationScheduler",
    "MaximumInformationScheduler",
    "ConflictSerializationScheduler",
    "fixpoint_set",
    "is_correct_scheduler",
    "theorem1_upper_bound",
    "optimal_fixpoint_set",
    "is_optimal",
    "OptimalityReport",
    "minimum_information_adversary",
    "performance_partial_order",
]
