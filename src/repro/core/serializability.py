"""Serializability theory: SR(T), WSR(T), conflict and view serializability.

The paper works with two serializability notions plus the classical
refinements that later literature standardised:

* **(Herbrand / final-state) serializability** ``SR(T)`` (Section 4.2):
  a schedule is serializable if its execution results equal those of some
  serial schedule *under the Herbrand semantics*.  By Herbrand's theorem
  this means equality under every interpretation, so SR(T) depends only
  on the syntax of ``T``.
* **weak serializability** ``WSR(T)`` (Section 4.3): a schedule is weakly
  serializable if, from any starting state, its execution ends in a state
  achievable by *some concatenation of serial transaction executions,
  possibly with repetitions and omissions*, from that same state.  This
  uses the concrete interpretations (semantic information) but not the
  integrity constraints, and ``SR(T) ⊆ WSR(T)``.
* **conflict serializability** and **view serializability** — the
  standard syntactic approximations.  Conflict serializability is the
  notion enforced by the practical schedulers in :mod:`repro.engine`;
  it implies Herbrand serializability for the general read-modify-write
  step shape of the paper's model.

This module provides decision procedures for all four, set enumeration
over small formats, and conflict-graph construction.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.herbrand import herbrand_final_state
from repro.core.schedules import (
    Schedule,
    all_schedules,
    serial_schedule,
    validate_schedule,
)
from repro.core.semantics import Interpretation, execute_schedule, execute_serial
from repro.core.transactions import StepRef, TransactionSystem
from repro.util.graphs import DiGraph

# ----------------------------------------------------------------------
# Herbrand (final-state) serializability: SR(T)
# ----------------------------------------------------------------------


def equivalent_serial_orders(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> List[Tuple[int, ...]]:
    """All serial orders whose Herbrand final state equals the schedule's.

    An empty list means the schedule is not (Herbrand) serializable.
    """
    schedule = validate_schedule(system, schedule)
    target = herbrand_final_state(system, schedule)
    orders: List[Tuple[int, ...]] = []
    for order in itertools.permutations(range(1, system.num_transactions + 1)):
        serial = serial_schedule(system.format, list(order))
        if herbrand_final_state(system, serial) == target:
            orders.append(tuple(order))
    return orders


def is_serializable(system: TransactionSystem, schedule: Sequence[StepRef]) -> bool:
    """Membership in ``SR(T)``: Herbrand-equivalence to some serial schedule."""
    return bool(equivalent_serial_orders(system, schedule))


def serializable_schedules(system: TransactionSystem) -> List[Schedule]:
    """Enumerate ``SR(T)`` exhaustively (small formats only)."""
    return [h for h in all_schedules(system) if is_serializable(system, h)]


# ----------------------------------------------------------------------
# Conflict serializability
# ----------------------------------------------------------------------


def conflict_graph(system: TransactionSystem, schedule: Sequence[StepRef]) -> DiGraph:
    """The precedence (conflict) graph of a schedule.

    Nodes are transaction indices; there is an edge ``i -> k`` if some
    step of ``T_i`` precedes and conflicts with some step of ``T_k`` in
    the schedule.  Two steps conflict when they access the same variable
    and at least one writes it.
    """
    schedule = validate_schedule(system, schedule)
    graph = DiGraph()
    for i in range(1, system.num_transactions + 1):
        graph.add_node(i)
    for a_pos, a in enumerate(schedule):
        step_a = system.step(a)
        for b in schedule[a_pos + 1 :]:
            if a.transaction == b.transaction:
                continue
            step_b = system.step(b)
            if step_a.variable != step_b.variable:
                continue
            if step_a.writes() or step_b.writes():
                graph.add_edge(a.transaction, b.transaction)
    return graph


def is_conflict_serializable(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> bool:
    """Whether the schedule's conflict graph is acyclic."""
    return not conflict_graph(system, schedule).has_cycle()


def conflict_equivalent_serial_orders(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> List[Tuple[int, ...]]:
    """All serial orders consistent with the conflict graph (topological sorts)."""
    graph = conflict_graph(system, schedule)
    return [tuple(order) for order in graph.all_topological_sorts()]


def conflict_serializable_schedules(system: TransactionSystem) -> List[Schedule]:
    """Enumerate the conflict-serializable schedules (small formats only)."""
    return [h for h in all_schedules(system) if is_conflict_serializable(system, h)]


# ----------------------------------------------------------------------
# View serializability
# ----------------------------------------------------------------------


def _reads_from(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> Dict[StepRef, Optional[StepRef]]:
    """For each reading step, the writing step it reads from (``None`` = initial value)."""
    last_writer: Dict[str, Optional[StepRef]] = {v: None for v in system.variables()}
    result: Dict[StepRef, Optional[StepRef]] = {}
    for ref in schedule:
        step = system.step(ref)
        if step.reads():
            result[ref] = last_writer[step.variable]
        if step.writes():
            last_writer[step.variable] = ref
    return result


def _final_writers(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> Dict[str, Optional[StepRef]]:
    """The last step writing each variable (``None`` if never written)."""
    last_writer: Dict[str, Optional[StepRef]] = {v: None for v in system.variables()}
    for ref in schedule:
        step = system.step(ref)
        if step.writes():
            last_writer[step.variable] = ref
    return last_writer


def view_equivalent(
    system: TransactionSystem,
    schedule_a: Sequence[StepRef],
    schedule_b: Sequence[StepRef],
) -> bool:
    """Whether two schedules are view equivalent (same reads-from and final writers)."""
    return _reads_from(system, schedule_a) == _reads_from(system, schedule_b) and (
        _final_writers(system, schedule_a) == _final_writers(system, schedule_b)
    )


def is_view_serializable(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> bool:
    """Whether the schedule is view equivalent to some serial schedule."""
    schedule = validate_schedule(system, schedule)
    for order in itertools.permutations(range(1, system.num_transactions + 1)):
        serial = serial_schedule(system.format, list(order))
        if view_equivalent(system, schedule, serial):
            return True
    return False


def view_serializable_schedules(system: TransactionSystem) -> List[Schedule]:
    """Enumerate the view-serializable schedules (small formats only)."""
    return [h for h in all_schedules(system) if is_view_serializable(system, h)]


# ----------------------------------------------------------------------
# Semantic (final-state under a concrete interpretation) serializability
# ----------------------------------------------------------------------


def is_state_serializable(
    system: TransactionSystem,
    interpretation: Interpretation,
    schedule: Sequence[StepRef],
    initial_states: Optional[Iterable[Mapping[str, object]]] = None,
) -> bool:
    """Final-state serializability under a *concrete* interpretation.

    The schedule must produce, from every supplied initial state, the same
    global final state as some serial schedule run from that state.  The
    witnessing serial order is allowed to differ per initial state (the
    paper's Figure 1 example only needs a single, shared order, but the
    weaker requirement matches "produces the same state as *a* serial
    history").
    """
    schedule = validate_schedule(system, schedule)
    if initial_states is None:
        initial_states = [interpretation.initial_globals]
    orders = list(itertools.permutations(range(1, system.num_transactions + 1)))
    for initial in initial_states:
        final = execute_schedule(system, interpretation, schedule, initial).globals_
        if not any(
            execute_serial(system, interpretation, list(order), initial).globals_
            == final
            for order in orders
        ):
            return False
    return True


# ----------------------------------------------------------------------
# Weak serializability: WSR(T)
# ----------------------------------------------------------------------


def _transaction_sequences(
    num_transactions: int, max_length: int
) -> Iterable[Tuple[int, ...]]:
    """All transaction-index sequences (with repetitions and omissions) up to a length."""
    indices = range(1, num_transactions + 1)
    for length in range(max_length + 1):
        yield from itertools.product(indices, repeat=length)


def is_weakly_serializable(
    system: TransactionSystem,
    interpretation: Interpretation,
    schedule: Sequence[StepRef],
    initial_states: Optional[Iterable[Mapping[str, object]]] = None,
    max_concatenation_length: Optional[int] = None,
) -> bool:
    """Membership in ``WSR(T)`` (Section 4.3), checked on a family of initial states.

    A schedule is weakly serializable if, starting from any state, it ends
    in a state achievable by some concatenation of serial transaction
    executions (repetitions and omissions allowed) from that same state.
    The quantification over all states is approximated by the supplied
    ``initial_states``; concatenations are searched up to
    ``max_concatenation_length`` (default ``num_transactions + 2``, which
    is exact for the paper's examples and generous for small systems).
    """
    schedule = validate_schedule(system, schedule)
    if initial_states is None:
        initial_states = [interpretation.initial_globals]
    if max_concatenation_length is None:
        max_concatenation_length = system.num_transactions + 2

    sequences = list(
        _transaction_sequences(system.num_transactions, max_concatenation_length)
    )
    for initial in initial_states:
        final = execute_schedule(system, interpretation, schedule, initial).globals_
        achievable = False
        for sequence in sequences:
            result = execute_serial(
                system,
                interpretation,
                list(sequence),
                initial,
                allow_repetitions=True,
            ).globals_
            if result == final:
                achievable = True
                break
        if not achievable:
            return False
    return True


def weakly_serializable_schedules(
    system: TransactionSystem,
    interpretation: Interpretation,
    initial_states: Optional[Iterable[Mapping[str, object]]] = None,
    max_concatenation_length: Optional[int] = None,
) -> List[Schedule]:
    """Enumerate ``WSR(T)`` over all schedules (small formats only)."""
    if initial_states is not None:
        initial_states = list(initial_states)
    return [
        h
        for h in all_schedules(system)
        if is_weakly_serializable(
            system, interpretation, h, initial_states, max_concatenation_length
        )
    ]


# ----------------------------------------------------------------------
# Relationships / sanity
# ----------------------------------------------------------------------


def classification(
    system: TransactionSystem,
    schedule: Sequence[StepRef],
    interpretation: Optional[Interpretation] = None,
    initial_states: Optional[Iterable[Mapping[str, object]]] = None,
) -> Dict[str, bool]:
    """Classify one schedule against every notion this module implements.

    Returns a dict with keys ``serial``, ``conflict_serializable``,
    ``view_serializable``, ``herbrand_serializable`` and — when an
    interpretation is supplied — ``state_serializable`` and
    ``weakly_serializable``.
    """
    from repro.core.schedules import is_serial

    result = {
        "serial": is_serial(system, schedule),
        "conflict_serializable": is_conflict_serializable(system, schedule),
        "view_serializable": is_view_serializable(system, schedule),
        "herbrand_serializable": is_serializable(system, schedule),
    }
    if interpretation is not None:
        states = list(initial_states) if initial_states is not None else None
        result["state_serializable"] = is_state_serializable(
            system, interpretation, schedule, states
        )
        result["weakly_serializable"] = is_weakly_serializable(
            system, interpretation, schedule, states
        )
    return result
