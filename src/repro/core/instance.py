"""A full transaction-system *instance*: syntax + semantics + integrity constraints.

The paper's definitions deliberately separate the three components so the
adversary arguments can vary one while holding the others fixed.  For
executable work, however, it is convenient to bundle them: a
:class:`SystemInstance` is everything a maximum-information scheduler
would know about the system — the syntax, the concrete interpretations,
the integrity constraints, and a family of consistent initial states to
quantify over when checking correctness of schedules.

``C(T)``, the set of correct schedules, is defined relative to an
instance: a schedule is correct if executing it maps every consistent
state into a consistent state.  The quantification over all consistent
states is realised over the instance's ``consistent_states`` family
(exact for the finite families used in the experiments; a documented
approximation otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.schedules import Schedule, all_schedules, validate_schedule
from repro.core.semantics import (
    ALWAYS_CONSISTENT,
    IntegrityConstraint,
    Interpretation,
    preserves_consistency,
    transaction_is_correct,
)
from repro.core.transactions import StepRef, TransactionSystem


class BasicAssumptionError(ValueError):
    """Raised when an instance violates the paper's basic assumption.

    The basic assumption is that every transaction, run alone, preserves
    consistency.  Instances that break it make the whole framework vacuous,
    so construction fails loudly.
    """


@dataclass(frozen=True)
class SystemInstance:
    """A transaction system together with its semantics and integrity constraints.

    Parameters
    ----------
    system:
        The syntactic transaction system.
    interpretation:
        Concrete interpretations of every step and the default initial
        global state.
    constraint:
        The integrity constraints; defaults to the trivially true
        constraint.
    consistent_states:
        A finite family of consistent global states over which
        "preserves consistency from any consistent state" is checked.
        Defaults to the interpretation's initial state.
    check_basic_assumption:
        When true (default), construction verifies that every transaction
        individually preserves consistency on the supplied states.
    """

    system: TransactionSystem
    interpretation: Interpretation
    constraint: IntegrityConstraint = ALWAYS_CONSISTENT
    consistent_states: Tuple[Mapping[str, Any], ...] = ()
    check_basic_assumption: bool = True

    def __post_init__(self) -> None:
        if self.interpretation.system is not self.system and not (
            self.interpretation.system.format == self.system.format
        ):
            raise ValueError("interpretation does not match the system's format")
        states = self.consistent_states or (self.interpretation.initial_globals,)
        # normalise to a tuple of plain dicts
        object.__setattr__(
            self, "consistent_states", tuple(dict(s) for s in states)
        )
        for state in self.consistent_states:
            if not self.constraint.holds(state):
                raise ValueError(
                    f"supplied state {state!r} does not satisfy the integrity constraints"
                )
        if self.check_basic_assumption:
            for i in range(1, self.system.num_transactions + 1):
                if not transaction_is_correct(
                    self.system,
                    self.interpretation,
                    self.constraint,
                    i,
                    self.consistent_states,
                ):
                    raise BasicAssumptionError(
                        f"transaction T{i} does not preserve consistency when run alone"
                    )

    # ------------------------------------------------------------------
    # correctness of schedules: C(T)
    # ------------------------------------------------------------------
    def is_correct_schedule(self, schedule: Sequence[StepRef]) -> bool:
        """Whether the schedule preserves consistency from every consistent state."""
        schedule = validate_schedule(self.system, schedule)
        return preserves_consistency(
            self.system,
            self.interpretation,
            self.constraint,
            schedule,
            self.consistent_states,
        )

    def correct_schedules(self) -> List[Schedule]:
        """Enumerate ``C(T)`` (small formats only)."""
        return [h for h in all_schedules(self.system) if self.is_correct_schedule(h)]

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def format(self) -> Tuple[int, ...]:
        return self.system.format

    def with_constraint(
        self,
        constraint: IntegrityConstraint,
        consistent_states: Optional[Iterable[Mapping[str, Any]]] = None,
        check_basic_assumption: bool = True,
    ) -> "SystemInstance":
        """A copy of the instance with different integrity constraints."""
        return SystemInstance(
            system=self.system,
            interpretation=self.interpretation,
            constraint=constraint,
            consistent_states=tuple(consistent_states or ()),
            check_basic_assumption=check_basic_assumption,
        )

    def with_interpretation(
        self,
        interpretation: Interpretation,
        constraint: Optional[IntegrityConstraint] = None,
        consistent_states: Optional[Iterable[Mapping[str, Any]]] = None,
        check_basic_assumption: bool = True,
    ) -> "SystemInstance":
        """A copy of the instance with a different interpretation (same syntax)."""
        return SystemInstance(
            system=self.system,
            interpretation=interpretation,
            constraint=constraint if constraint is not None else self.constraint,
            consistent_states=tuple(consistent_states or ()),
            check_basic_assumption=check_basic_assumption,
        )
