"""Transaction-system semantics (Section 2 of the paper, "Semantics").

The semantics of a transaction system consist of three ingredients:

* a *domain* ``D(v)`` for every global variable ``v``,
* an *interpretation* ``phi_ij`` of every function symbol ``f_ij`` — a
  function of the local variables ``t_i1, ..., t_ij`` declared so far,
* the *integrity constraints* ``IC``, a predicate over the global state.

A *state* of the system is a triple ``(J, L, G)``:

* ``J`` — the program counters (next step index per transaction),
* ``L`` — the values of all declared local variables,
* ``G`` — the values of all global variables.

Executing an eligible step ``T_ij`` updates the state by::

    j_i  <- j_i + 1
    t_ij <- x_ij
    x_ij <- phi_ij(t_i1, ..., t_ij)

This module provides a concrete executable realisation of that machinery:
:class:`Interpretation` bundles the ``phi_ij`` with an initial global
state; :class:`IntegrityConstraint` wraps the consistency predicate;
:func:`execute_schedule` runs any legal schedule; and
:func:`execute_serial` runs a serial order of whole transactions.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.transactions import StepRef, TransactionSystem, TransactionSystemError

#: The signature of a step interpretation phi_ij: it receives the values of
#: the local variables t_i1, ..., t_ij (in order) and returns the new value
#: of x_ij.
StepFunction = Callable[..., Any]

#: The signature of an integrity-constraint predicate: it receives the
#: global state (a mapping from variable name to value) and returns a bool.
ConstraintPredicate = Callable[[Mapping[str, Any]], bool]


class SemanticsError(ValueError):
    """Raised when semantics are inconsistent with the system's syntax."""


class IllegalExecutionError(RuntimeError):
    """Raised when a step that is not eligible is executed."""


@dataclass
class SystemState:
    """A state ``(J, L, G)`` of a transaction system.

    ``program_counters`` holds, for each transaction (1-based index key),
    the index of the *next* step to execute; a counter of ``m_i + 1``
    means the transaction has terminated.  ``locals_`` maps
    ``(i, j)`` to the value of local variable ``t_ij`` once declared.
    ``globals_`` maps variable names to their current values.
    """

    program_counters: Dict[int, int]
    locals_: Dict[Tuple[int, int], Any]
    globals_: Dict[str, Any]

    @classmethod
    def initial(
        cls, system: TransactionSystem, initial_globals: Mapping[str, Any]
    ) -> "SystemState":
        """The state before any step has executed."""
        missing = system.variables() - set(initial_globals)
        if missing:
            raise SemanticsError(
                f"initial global state missing variables: {sorted(missing)}"
            )
        return cls(
            program_counters={i: 1 for i in range(1, system.num_transactions + 1)},
            locals_={},
            globals_=dict(initial_globals),
        )

    def copy(self) -> "SystemState":
        """A deep copy of the state (values are copied with :func:`copy.deepcopy`)."""
        return SystemState(
            program_counters=dict(self.program_counters),
            locals_=dict(self.locals_),
            globals_=copy.deepcopy(self.globals_),
        )

    def is_terminated(self, system: TransactionSystem) -> bool:
        """Whether every transaction has executed all of its steps."""
        return all(
            self.program_counters[i] == len(system[i - 1]) + 1
            for i in range(1, system.num_transactions + 1)
        )

    def eligible_steps(self, system: TransactionSystem) -> List[StepRef]:
        """The steps currently eligible for execution (one per live transaction)."""
        refs = []
        for i in range(1, system.num_transactions + 1):
            j = self.program_counters[i]
            if j <= len(system[i - 1]):
                refs.append(StepRef(i, j))
        return refs


@dataclass(frozen=True)
class Interpretation:
    """Interpretations ``phi_ij`` for every step, plus the initial global state.

    Parameters
    ----------
    system:
        The transaction system whose function symbols are being
        interpreted.
    step_functions:
        Mapping from :class:`StepRef` to a callable receiving the values
        of ``t_i1, ..., t_ij`` (i.e. ``j`` positional arguments) and
        returning the new value of ``x_ij``.  Steps omitted from the
        mapping default to the identity on their own local variable
        (a pure read).
    initial_globals:
        The initial values of the global variables.
    name:
        Optional descriptive name.
    """

    system: TransactionSystem
    step_functions: Mapping[StepRef, StepFunction]
    initial_globals: Mapping[str, Any]
    name: str = "interpretation"

    def __post_init__(self) -> None:
        for ref in self.step_functions:
            if not self.system.contains_ref(ref):
                raise SemanticsError(f"interpretation given for unknown step {ref}")
        missing = self.system.variables() - set(self.initial_globals)
        if missing:
            raise SemanticsError(
                f"initial global state missing variables: {sorted(missing)}"
            )

    def function_for(self, ref: StepRef) -> StepFunction:
        """The interpretation of ``f_ij``; identity-on-``t_ij`` if unspecified."""
        if ref in self.step_functions:
            return self.step_functions[ref]
        return lambda *locals_values: locals_values[-1]

    def initial_state(self) -> SystemState:
        """The initial system state under this interpretation."""
        return SystemState.initial(self.system, self.initial_globals)


@dataclass(frozen=True)
class IntegrityConstraint:
    """The integrity constraints ``IC`` of a transaction system.

    Wraps a predicate over the global state.  A state ``(J, L, G)`` is
    *consistent* iff ``predicate(G)`` holds.
    """

    predicate: ConstraintPredicate
    description: str = ""

    def holds(self, globals_: Mapping[str, Any]) -> bool:
        """Whether the global state satisfies the constraints."""
        return bool(self.predicate(globals_))

    def __call__(self, globals_: Mapping[str, Any]) -> bool:
        return self.holds(globals_)


#: The trivial integrity constraint satisfied by every state.
ALWAYS_CONSISTENT = IntegrityConstraint(lambda _globals: True, "True")


def execute_step(
    system: TransactionSystem,
    interpretation: Interpretation,
    state: SystemState,
    ref: StepRef,
) -> SystemState:
    """Execute one step in-place semantics on a *copy* of ``state``.

    Raises :class:`IllegalExecutionError` if the step is not the next step
    of its transaction.
    """
    step = system.step(ref)
    i, j = ref.transaction, ref.step
    if state.program_counters.get(i) != j:
        raise IllegalExecutionError(
            f"step {ref} is not eligible: program counter for T{i} is "
            f"{state.program_counters.get(i)}"
        )
    new_state = state.copy()
    # t_ij <- x_ij
    new_state.locals_[(i, j)] = new_state.globals_[step.variable]
    # x_ij <- phi_ij(t_i1, ..., t_ij)
    local_values = [new_state.locals_[(i, k)] for k in range(1, j + 1)]
    phi = interpretation.function_for(ref)
    new_state.globals_[step.variable] = phi(*local_values)
    # j_i <- j_i + 1
    new_state.program_counters[i] = j + 1
    return new_state


def execute_schedule(
    system: TransactionSystem,
    interpretation: Interpretation,
    schedule: Sequence[StepRef],
    initial_globals: Optional[Mapping[str, Any]] = None,
) -> SystemState:
    """Execute a sequence of steps from the initial state and return the final state.

    The sequence must be a *legal* schedule prefix: steps of each
    transaction must appear in order (this is enforced step by step by
    :func:`execute_step`).  The sequence need not be complete.
    """
    if initial_globals is None:
        state = interpretation.initial_state()
    else:
        state = SystemState.initial(system, initial_globals)
    for ref in schedule:
        state = execute_step(system, interpretation, state, ref)
    return state


def execute_serial(
    system: TransactionSystem,
    interpretation: Interpretation,
    order: Sequence[int],
    initial_globals: Optional[Mapping[str, Any]] = None,
    allow_repetitions: bool = False,
) -> SystemState:
    """Execute whole transactions serially in the given 1-based order.

    ``order`` lists transaction indices; each listed transaction runs all
    of its steps to completion before the next starts.  With
    ``allow_repetitions`` the same transaction may appear several times or
    not at all — the notion needed for *weak serializability*
    (Section 4.3), where schedules are compared against concatenations of
    serial executions "possibly with repetitions and omissions".
    """
    if not allow_repetitions:
        if sorted(order) != list(range(1, system.num_transactions + 1)):
            raise SemanticsError(
                "a serial order must be a permutation of all transaction indices; "
                "pass allow_repetitions=True for weak-serializability semantics"
            )
    if initial_globals is None:
        globals_ = dict(interpretation.initial_globals)
    else:
        globals_ = dict(initial_globals)

    # Each serial execution of a transaction starts with fresh local
    # variables; repetitions re-run the transaction from scratch.
    state = SystemState(
        program_counters={i: 1 for i in range(1, system.num_transactions + 1)},
        locals_={},
        globals_=globals_,
    )
    for index in order:
        if not 1 <= index <= system.num_transactions:
            raise SemanticsError(f"no transaction with index {index}")
        txn = system[index - 1]
        # reset this transaction's counter and locals so it can re-run
        state.program_counters[index] = 1
        for j in range(1, len(txn) + 1):
            state.locals_.pop((index, j), None)
        for j in range(1, len(txn) + 1):
            state = execute_step(system, interpretation, state, StepRef(index, j))
    return state


def final_globals(
    system: TransactionSystem,
    interpretation: Interpretation,
    schedule: Sequence[StepRef],
    initial_globals: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The global-variable values after executing ``schedule``."""
    return dict(
        execute_schedule(system, interpretation, schedule, initial_globals).globals_
    )


def preserves_consistency(
    system: TransactionSystem,
    interpretation: Interpretation,
    constraint: IntegrityConstraint,
    schedule: Sequence[StepRef],
    initial_globals_candidates: Optional[Iterable[Mapping[str, Any]]] = None,
) -> bool:
    """Whether executing ``schedule`` maps consistent states to consistent states.

    The paper defines correctness of a schedule as preservation of
    consistency from *any* consistent initial state.  In general that set
    is infinite; callers supply a finite family of candidate initial
    states to check against.  When ``initial_globals_candidates`` is
    ``None`` only the interpretation's own initial state is checked
    (and it is skipped if it is not consistent).
    """
    if initial_globals_candidates is None:
        initial_globals_candidates = [interpretation.initial_globals]
    for initial in initial_globals_candidates:
        if not constraint.holds(initial):
            continue
        final = final_globals(system, interpretation, schedule, initial)
        if not constraint.holds(final):
            return False
    return True


def transaction_is_correct(
    system: TransactionSystem,
    interpretation: Interpretation,
    constraint: IntegrityConstraint,
    transaction_index: int,
    initial_globals_candidates: Optional[Iterable[Mapping[str, Any]]] = None,
) -> bool:
    """Whether a single transaction preserves consistency when run alone.

    This is the paper's *basic assumption*: every transaction in a
    transaction system is individually correct.  The helper lets tests
    and examples validate that their constructed systems actually satisfy
    the assumption on the supplied consistent states.
    """
    if initial_globals_candidates is None:
        initial_globals_candidates = [interpretation.initial_globals]
    txn = system[transaction_index - 1]
    schedule = [StepRef(transaction_index, j) for j in range(1, len(txn) + 1)]
    return preserves_consistency(
        system, interpretation, constraint, schedule, initial_globals_candidates
    )
