"""Schedules (histories) of a transaction system (Section 3.1).

A *schedule* (also called a *log* or a *history*) of a transaction system
``T`` is a permutation ``pi`` of the set of steps of ``T`` such that
``pi(T_ij) < pi(T_ik)`` whenever ``j < k`` — i.e. an interleaving of the
transactions that respects each transaction's internal step order.

The set of all schedules of ``T`` is denoted ``H(T)``; since it depends
only on the *format* of ``T`` we usually write ``H``.  The *serial*
schedules are those in which each transaction runs to completion before
the next begins.

This module represents a schedule as a tuple of :class:`StepRef` and
provides legality/seriality predicates, serial-schedule construction,
exhaustive enumeration of ``H`` (feasible for the small formats used by
the theory experiments), counting via the multinomial coefficient, prefix
utilities, and the elementary *adjacent-swap* transformation used by the
homotopy view of serializability (Section 5.3).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.transactions import StepRef, TransactionSystem

#: A schedule is an ordered tuple of step references covering every step
#: of the system exactly once, in a per-transaction-order-respecting way.
Schedule = Tuple[StepRef, ...]

#: A format is the tuple (m_1, ..., m_n) of transaction lengths.
Format = Tuple[int, ...]


class ScheduleError(ValueError):
    """Raised when an object is not a valid schedule of the given system."""


def _format_of(system_or_format: Union[TransactionSystem, Sequence[int]]) -> Format:
    if isinstance(system_or_format, TransactionSystem):
        return system_or_format.format
    fmt = tuple(int(m) for m in system_or_format)
    if not fmt or any(m < 1 for m in fmt):
        raise ScheduleError(f"invalid format {fmt}: lengths must be positive")
    return fmt


def schedule_from_pairs(pairs: Iterable[Tuple[int, int]]) -> Schedule:
    """Build a schedule from ``(transaction, step)`` integer pairs (1-based)."""
    return tuple(StepRef(i, j) for i, j in pairs)


def is_legal(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    sequence: Sequence[StepRef],
    require_complete: bool = True,
) -> bool:
    """Whether ``sequence`` is a (prefix of a) schedule of the given format.

    A legal sequence contains each step at most once and presents the
    steps of every transaction in increasing step order with no gaps.
    With ``require_complete=True`` (the default) the sequence must contain
    *every* step of the format, i.e. be a full schedule in ``H``.
    """
    fmt = _format_of(system_or_format)
    n = len(fmt)
    next_expected = [1] * n
    for ref in sequence:
        i = ref.transaction
        if not 1 <= i <= n:
            return False
        if ref.step > fmt[i - 1]:
            return False
        if ref.step != next_expected[i - 1]:
            return False
        next_expected[i - 1] += 1
    if require_complete:
        return all(next_expected[i] == fmt[i] + 1 for i in range(n))
    return True


def validate_schedule(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    sequence: Sequence[StepRef],
) -> Schedule:
    """Validate and normalise a full schedule, raising :class:`ScheduleError` if invalid."""
    if not is_legal(system_or_format, sequence, require_complete=True):
        raise ScheduleError(f"not a legal complete schedule: {list(map(str, sequence))}")
    return tuple(sequence)


def is_serial(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    schedule: Sequence[StepRef],
) -> bool:
    """Whether the schedule is serial (each transaction runs contiguously)."""
    if not is_legal(system_or_format, schedule, require_complete=True):
        return False
    fmt = _format_of(system_or_format)
    position = 0
    while position < len(schedule):
        txn = schedule[position].transaction
        length = fmt[txn - 1]
        block = schedule[position : position + length]
        if any(ref.transaction != txn for ref in block):
            return False
        position += length
    return True


def serial_schedule(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    order: Sequence[int],
) -> Schedule:
    """The serial schedule running whole transactions in the given 1-based order."""
    fmt = _format_of(system_or_format)
    if sorted(order) != list(range(1, len(fmt) + 1)):
        raise ScheduleError(
            f"serial order {order} is not a permutation of 1..{len(fmt)}"
        )
    refs: List[StepRef] = []
    for i in order:
        refs.extend(StepRef(i, j) for j in range(1, fmt[i - 1] + 1))
    return tuple(refs)


def serial_order_of(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    schedule: Sequence[StepRef],
) -> List[int]:
    """The transaction order of a serial schedule (raises if not serial)."""
    if not is_serial(system_or_format, schedule):
        raise ScheduleError("schedule is not serial")
    order: List[int] = []
    for ref in schedule:
        if not order or order[-1] != ref.transaction:
            order.append(ref.transaction)
    return order


def all_serial_schedules(
    system_or_format: Union[TransactionSystem, Sequence[int]],
) -> List[Schedule]:
    """All ``n!`` serial schedules of the system."""
    fmt = _format_of(system_or_format)
    n = len(fmt)
    return [
        serial_schedule(fmt, order)
        for order in itertools.permutations(range(1, n + 1))
    ]


def all_schedules(
    system_or_format: Union[TransactionSystem, Sequence[int]],
) -> Iterator[Schedule]:
    """Lazily enumerate every schedule in ``H`` for the given format.

    The number of schedules is the multinomial coefficient
    ``M! / (m_1! ... m_n!)`` where ``M = sum(m_i)``; enumeration is only
    feasible for small formats (the theory experiments use formats with
    ``M`` up to roughly 12).
    """
    fmt = _format_of(system_or_format)
    n = len(fmt)

    def extend(counters: Tuple[int, ...], prefix: Tuple[StepRef, ...]) -> Iterator[Schedule]:
        if all(counters[i] == fmt[i] for i in range(n)):
            yield prefix
            return
        for i in range(n):
            if counters[i] < fmt[i]:
                new_counters = counters[:i] + (counters[i] + 1,) + counters[i + 1 :]
                yield from extend(
                    new_counters, prefix + (StepRef(i + 1, counters[i] + 1),)
                )

    yield from extend(tuple(0 for _ in fmt), ())


def count_schedules(
    system_or_format: Union[TransactionSystem, Sequence[int]],
) -> int:
    """``|H|`` — the number of schedules, via the multinomial coefficient."""
    fmt = _format_of(system_or_format)
    total = math.factorial(sum(fmt))
    for m in fmt:
        total //= math.factorial(m)
    return total


def count_serial_schedules(
    system_or_format: Union[TransactionSystem, Sequence[int]],
) -> int:
    """The number of serial schedules, ``n!``."""
    fmt = _format_of(system_or_format)
    return math.factorial(len(fmt))


def random_schedule(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    rng: Optional[random.Random] = None,
) -> Schedule:
    """Sample a schedule uniformly at random from ``H``.

    Uniformity follows from interleaving by repeatedly drawing the next
    transaction with probability proportional to its number of remaining
    steps (the standard riffle-shuffle argument for multiset
    permutations).
    """
    fmt = _format_of(system_or_format)
    rng = rng or random.Random()
    remaining = list(fmt)
    counters = [0] * len(fmt)
    refs: List[StepRef] = []
    total = sum(remaining)
    while total > 0:
        pick = rng.randrange(total)
        for i, r in enumerate(remaining):
            if pick < r:
                counters[i] += 1
                remaining[i] -= 1
                refs.append(StepRef(i + 1, counters[i]))
                break
            pick -= r
        total -= 1
    return tuple(refs)


def adjacent_swaps(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    schedule: Sequence[StepRef],
) -> List[Schedule]:
    """All schedules reachable by one *elementary transformation* (Section 5.3).

    An elementary transformation interchanges two neighbouring steps that
    belong to different transactions; swapping steps of the same
    transaction would violate legality and is never produced.
    """
    schedule = validate_schedule(system_or_format, schedule)
    results: List[Schedule] = []
    for k in range(len(schedule) - 1):
        a, b = schedule[k], schedule[k + 1]
        if a.transaction == b.transaction:
            continue
        swapped = list(schedule)
        swapped[k], swapped[k + 1] = b, a
        results.append(tuple(swapped))
    return results


def projection(
    schedule: Sequence[StepRef], transaction: int
) -> Tuple[StepRef, ...]:
    """The subsequence of ``schedule`` consisting of one transaction's steps."""
    return tuple(ref for ref in schedule if ref.transaction == transaction)


def positions(schedule: Sequence[StepRef]) -> Dict[StepRef, int]:
    """Map each step to its 0-based position in the schedule."""
    return {ref: k for k, ref in enumerate(schedule)}


def interleaving_degree(
    system_or_format: Union[TransactionSystem, Sequence[int]],
    schedule: Sequence[StepRef],
) -> int:
    """The number of transaction switches in the schedule.

    A serial schedule of ``n`` transactions has exactly ``n - 1``
    switches; larger values indicate finer interleaving.  Used by the
    analysis package to stratify schedules by "how concurrent" they are.
    """
    schedule = validate_schedule(system_or_format, schedule)
    return sum(
        1
        for a, b in zip(schedule, schedule[1:])
        if a.transaction != b.transaction
    )
