"""Schedulers and fixpoint sets (Sections 3.2-3.3, 4).

A *scheduler* for a transaction system ``T`` is a mapping
``S : H -> C(T)`` from arbitrary schedules (streams of arriving requests)
to correct schedules.  A scheduler is *correct* if every schedule it
produces is correct.  Its *performance* is measured by its fixpoint set

    ``P = { h in H : S(h) = h }``

— the request streams it passes without introducing any delay.

This module provides:

* the :class:`Scheduler` base class with the ``P``/correctness machinery,
* the concrete schedulers the paper proves optimal at each information
  level — :class:`SerialScheduler` (Theorem 2),
  :class:`SerializationScheduler` (Theorem 3),
  :class:`WeakSerializationScheduler` (Theorem 4) and
  :class:`MaximumInformationScheduler` — plus
  :class:`ConflictSerializationScheduler`, the practical approximation of
  serialization used by real systems and by the online engine,
* helpers :func:`fixpoint_set` and :func:`is_correct_scheduler` for
  exhaustively validating schedulers over small formats.

Every non-fixpoint history is rescheduled to the serial schedule that
runs transactions in order of their first request in the history: this
target is always correct (basic assumption) and models the paper's
"delay some requests until later-arriving ones have run".
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.information import (
    InformationLevel,
    MaximumInformation,
    MinimumInformation,
    SemanticInformation,
    SyntacticInformation,
)
from repro.core.instance import SystemInstance
from repro.core.schedules import (
    Schedule,
    all_schedules,
    is_serial,
    serial_schedule,
    validate_schedule,
)
from repro.core.serializability import (
    is_conflict_serializable,
    is_serializable,
    is_weakly_serializable,
)
from repro.core.transactions import StepRef, TransactionSystem


def first_appearance_serial_order(
    system: TransactionSystem, history: Sequence[StepRef]
) -> List[int]:
    """The serial order that runs transactions by first appearance in ``history``."""
    seen: List[int] = []
    for ref in history:
        if ref.transaction not in seen:
            seen.append(ref.transaction)
    for i in range(1, system.num_transactions + 1):
        if i not in seen:
            seen.append(i)
    return seen


class Scheduler(abc.ABC):
    """Base class: a mapping from histories to correct schedules.

    Subclasses implement :meth:`accepts`, the membership predicate of the
    intended fixpoint set.  The default :meth:`schedule` passes accepted
    histories unchanged and rewrites everything else into the
    first-appearance serial schedule.
    """

    #: The information level this scheduler is designed for (used by the
    #: optimality analysis; informational otherwise).
    information_level: InformationLevel = MaximumInformation()

    def __init__(self, instance: SystemInstance) -> None:
        self.instance = instance
        self.system = instance.system

    # ------------------------------------------------------------------
    # the scheduler mapping
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def accepts(self, history: Sequence[StepRef]) -> bool:
        """Whether the history belongs to this scheduler's fixpoint set."""

    def schedule(self, history: Sequence[StepRef]) -> Schedule:
        """Map an arriving history to the schedule actually executed."""
        history = validate_schedule(self.system, history)
        if self.accepts(history):
            return history
        return self.reschedule(history)

    def reschedule(self, history: Sequence[StepRef]) -> Schedule:
        """The correct schedule substituted for a rejected history."""
        order = first_appearance_serial_order(self.system, history)
        return serial_schedule(self.system.format, order)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def fixpoint_set(self) -> List[Schedule]:
        """Enumerate the fixpoint set ``P`` (small formats only)."""
        return [h for h in all_schedules(self.system) if self.schedule(h) == h]

    def is_correct(self) -> bool:
        """Exhaustively verify ``S(H) ⊆ C(T)`` for this scheduler (small formats only)."""
        return all(
            self.instance.is_correct_schedule(self.schedule(h))
            for h in all_schedules(self.system)
        )

    def delay_count(self, history: Sequence[StepRef]) -> int:
        """How many requests are displaced when this history is scheduled.

        Zero for fixpoint histories.  For a rescheduled history this is
        the number of steps whose position changes — a simple proxy for
        the waiting the scheduler imposes (Section 6).
        """
        produced = self.schedule(history)
        return sum(1 for a, b in zip(history, produced) if a != b)

    @property
    def name(self) -> str:
        return type(self).__name__


class SerialScheduler(Scheduler):
    """The serial scheduler: optimal at minimum information (Theorem 2).

    Its fixpoint set is exactly the set of serial schedules; every other
    history is delayed into a serial execution.
    """

    information_level = MinimumInformation()

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return is_serial(self.system, history)


class SerializationScheduler(Scheduler):
    """The serialization scheduler: optimal at complete syntactic information (Theorem 3).

    Its fixpoint set is ``SR(T)`` — histories whose Herbrand execution
    results coincide with those of some serial schedule.
    """

    information_level = SyntacticInformation()

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return is_serializable(self.system, history)


class ConflictSerializationScheduler(Scheduler):
    """A scheduler whose fixpoint set is the conflict-serializable histories.

    Conflict serializability is the practically enforceable subset of
    ``SR(T)``; this scheduler is correct but in general *not* optimal for
    syntactic information, which is exactly the gap the optimality theory
    makes visible (it is used as a baseline in the hierarchy benchmarks).
    """

    information_level = SyntacticInformation()

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return is_conflict_serializable(self.system, history)


class WeakSerializationScheduler(Scheduler):
    """The weak-serialization scheduler: optimal with all information but the ICs (Theorem 4).

    Its fixpoint set is ``WSR(T)``; the membership test uses the
    instance's concrete interpretation and consistent-state family.
    """

    def __init__(
        self,
        instance: SystemInstance,
        max_concatenation_length: Optional[int] = None,
    ) -> None:
        super().__init__(instance)
        self.max_concatenation_length = max_concatenation_length
        self.information_level = SemanticInformation(max_concatenation_length)

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return is_weakly_serializable(
            self.system,
            self.instance.interpretation,
            history,
            self.instance.consistent_states,
            self.max_concatenation_length,
        )


class MaximumInformationScheduler(Scheduler):
    """The scheduler with complete information: fixpoint set ``C(T)``.

    Realisable "in principle at least" (Section 4.1); here it is realised
    by checking consistency preservation over the instance's
    consistent-state family.
    """

    information_level = MaximumInformation()

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return self.instance.is_correct_schedule(history)


class FixedSetScheduler(Scheduler):
    """A scheduler defined directly by an arbitrary target fixpoint set.

    Used by the optimality machinery and by tests to construct candidate
    schedulers (e.g. hypothetical "better than optimal" schedulers, which
    Theorem 1 then shows must be incorrect).
    """

    def __init__(self, instance: SystemInstance, accepted: Iterable[Schedule]) -> None:
        super().__init__(instance)
        self._accepted: Set[Schedule] = {tuple(h) for h in accepted}

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return tuple(history) in self._accepted


def fixpoint_set(scheduler: Scheduler) -> List[Schedule]:
    """The fixpoint set of a scheduler (exhaustive; small formats only)."""
    return scheduler.fixpoint_set()


def is_correct_scheduler(scheduler: Scheduler) -> bool:
    """Exhaustively verify correctness of a scheduler on its instance."""
    return scheduler.is_correct()
