"""Transaction-system syntax (Section 2 of the paper).

A *transaction system* ``T`` is a finite set of transactions
``{T_1, ..., T_n}``; each transaction ``T_i`` is a finite, straight-line
sequence of *steps* ``T_i1, ..., T_im_i``.  The n-tuple ``(m_1, ..., m_n)``
is the *format* of the system.

A step ``T_ij`` is the indivisible execution of::

    t_ij <- x_ij
    x_ij <- f_ij(t_i1, ..., t_ij)

i.e. it reads one global variable ``x_ij`` into a fresh local variable
``t_ij`` and then overwrites ``x_ij`` with a value computed from *all*
local variables declared so far in the same transaction.  The function
symbol ``f_ij`` carries no meaning at the syntactic level; interpretations
are supplied separately (see :mod:`repro.core.semantics`).

Two special shapes the paper calls out:

* if ``f_ij`` is the identity on ``t_ij`` the step is a *read* step;
* if ``f_ij`` does not depend on ``t_ij`` the step is a *write* step.

This module is purely syntactic: it knows variable names, formats and
step identities, but nothing about domains, interpretations or integrity
constraints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class TransactionSystemError(ValueError):
    """Raised when a transaction system is malformed."""


@dataclass(frozen=True)
class StepRef:
    """A reference to step ``T_ij``: transaction index ``i``, step index ``j``.

    Both indices are **1-based**, matching the paper's notation: the first
    step of the first transaction is ``StepRef(1, 1)``.
    """

    transaction: int
    step: int

    def __post_init__(self) -> None:
        if self.transaction < 1:
            raise TransactionSystemError(
                f"transaction index must be >= 1, got {self.transaction}"
            )
        if self.step < 1:
            raise TransactionSystemError(f"step index must be >= 1, got {self.step}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"T{self.transaction},{self.step}"

    def __repr__(self) -> str:
        return f"StepRef({self.transaction}, {self.step})"

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(transaction, step)`` as a plain tuple."""
        return (self.transaction, self.step)


@dataclass(frozen=True)
class Step:
    """The syntax of a single transaction step ``T_ij``.

    Parameters
    ----------
    variable:
        The name of the global variable ``x_ij`` accessed by this step.
    function_symbol:
        The (uninterpreted) function symbol ``f_ij``.  If ``None``, a
        canonical name ``f{i}{j}`` is assigned when the step is attached
        to a transaction.
    is_read_only:
        Syntactic annotation: the step only reads ``x_ij`` (its ``f_ij``
        is the identity on ``t_ij``).  Purely advisory; used by conflict
        analysis to avoid counting read-read conflicts.
    is_blind_write:
        Syntactic annotation: ``f_ij`` does not depend on ``t_ij`` (the
        step overwrites ``x_ij`` without looking at it).
    """

    variable: str
    function_symbol: Optional[str] = None
    is_read_only: bool = False
    is_blind_write: bool = False

    def __post_init__(self) -> None:
        if not self.variable:
            raise TransactionSystemError("step variable name must be non-empty")
        if self.is_read_only and self.is_blind_write:
            raise TransactionSystemError(
                "a step cannot be both read-only and a blind write"
            )

    def reads(self) -> bool:
        """Whether the step semantically reads its variable.

        Every step syntactically copies ``x_ij`` into ``t_ij``, but a
        blind write never uses the value, so for conflict purposes it does
        not read.
        """
        return not self.is_blind_write

    def writes(self) -> bool:
        """Whether the step semantically writes its variable."""
        return not self.is_read_only


@dataclass(frozen=True)
class Transaction:
    """A straight-line transaction: a finite sequence of :class:`Step`.

    Parameters
    ----------
    steps:
        The ordered steps of the transaction.
    name:
        Optional human-readable name (defaults to ``T{i}`` when attached
        to a system).
    """

    steps: Tuple[Step, ...]
    name: Optional[str] = None

    def __init__(self, steps: Iterable[Step], name: Optional[str] = None) -> None:
        object.__setattr__(self, "steps", tuple(steps))
        object.__setattr__(self, "name", name)
        if not self.steps:
            raise TransactionSystemError("a transaction must have at least one step")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Step:
        return self.steps[index]

    @property
    def variables(self) -> Tuple[str, ...]:
        """The sequence ``(x_i1, ..., x_im_i)`` of variables accessed, in order."""
        return tuple(step.variable for step in self.steps)

    def variable_set(self) -> frozenset:
        """The set of distinct global variables touched by this transaction."""
        return frozenset(self.variables)

    def rename_variables(self, mapping: Dict[str, str]) -> "Transaction":
        """Return a copy of the transaction with variables renamed.

        Variables not present in ``mapping`` are left unchanged.  This is
        the *local renaming* operation used in Section 5.4 to characterise
        unstructured variables.
        """
        new_steps = tuple(
            Step(
                variable=mapping.get(step.variable, step.variable),
                function_symbol=step.function_symbol,
                is_read_only=step.is_read_only,
                is_blind_write=step.is_blind_write,
            )
            for step in self.steps
        )
        return Transaction(new_steps, name=self.name)


def read_step(variable: str) -> Step:
    """Convenience constructor for a pure read step on ``variable``."""
    return Step(variable=variable, is_read_only=True)


def write_step(variable: str) -> Step:
    """Convenience constructor for a blind write step on ``variable``."""
    return Step(variable=variable, is_blind_write=True)


def update_step(variable: str, function_symbol: Optional[str] = None) -> Step:
    """Convenience constructor for a read-modify-write step on ``variable``."""
    return Step(variable=variable, function_symbol=function_symbol)


@dataclass(frozen=True)
class TransactionSystem:
    """A transaction system: syntax only (Section 2, "Syntax").

    The semantics (interpretations of the ``f_ij`` and the integrity
    constraints) live in :class:`repro.core.semantics.Interpretation` and
    :class:`repro.core.semantics.IntegrityConstraint`, so that different
    semantics can be paired with the same syntax — which is exactly the
    manoeuvre the paper's adversary arguments perform.
    """

    transactions: Tuple[Transaction, ...]
    name: str = "T"

    def __init__(
        self, transactions: Iterable[Transaction], name: str = "T"
    ) -> None:
        object.__setattr__(self, "transactions", tuple(transactions))
        object.__setattr__(self, "name", name)
        if not self.transactions:
            raise TransactionSystemError(
                "a transaction system must contain at least one transaction"
            )

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    @property
    def format(self) -> Tuple[int, ...]:
        """The format ``(m_1, ..., m_n)`` of the system."""
        return tuple(len(t) for t in self.transactions)

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)

    @property
    def total_steps(self) -> int:
        """Total number of steps ``M = m_1 + ... + m_n``."""
        return sum(self.format)

    def variables(self) -> frozenset:
        """The set ``V`` of global variable names used by the system."""
        return frozenset(
            step.variable for txn in self.transactions for step in txn.steps
        )

    # ------------------------------------------------------------------
    # step addressing
    # ------------------------------------------------------------------
    def step(self, ref: StepRef) -> Step:
        """Return the step ``T_ij`` addressed by ``ref`` (1-based)."""
        self._validate_ref(ref)
        return self.transactions[ref.transaction - 1].steps[ref.step - 1]

    def step_refs(self) -> List[StepRef]:
        """All step references, ordered by transaction then step index."""
        return [
            StepRef(i + 1, j + 1)
            for i, txn in enumerate(self.transactions)
            for j in range(len(txn))
        ]

    def transaction_of(self, ref: StepRef) -> Transaction:
        """Return the transaction containing the referenced step."""
        self._validate_ref(ref)
        return self.transactions[ref.transaction - 1]

    def _validate_ref(self, ref: StepRef) -> None:
        if ref.transaction > len(self.transactions):
            raise TransactionSystemError(
                f"no transaction {ref.transaction} in a system of "
                f"{len(self.transactions)} transactions"
            )
        if ref.step > len(self.transactions[ref.transaction - 1]):
            raise TransactionSystemError(
                f"transaction {ref.transaction} has "
                f"{len(self.transactions[ref.transaction - 1])} steps, "
                f"no step {ref.step}"
            )

    def contains_ref(self, ref: StepRef) -> bool:
        """Whether ``ref`` addresses a step of this system."""
        return (
            1 <= ref.transaction <= len(self.transactions)
            and 1 <= ref.step <= len(self.transactions[ref.transaction - 1])
        )

    # ------------------------------------------------------------------
    # syntactic comparison & transformation
    # ------------------------------------------------------------------
    def same_syntax(self, other: "TransactionSystem") -> bool:
        """Whether two systems have identical syntax.

        Identical syntax means the same format and the same variable
        accessed at every step (function symbols are part of the syntax
        only through their arity / position, which is determined by the
        format, so they are not compared).
        """
        if self.format != other.format:
            return False
        for mine, theirs in zip(self.transactions, other.transactions):
            if mine.variables != theirs.variables:
                return False
            for a, b in zip(mine.steps, theirs.steps):
                if a.is_read_only != b.is_read_only:
                    return False
                if a.is_blind_write != b.is_blind_write:
                    return False
        return True

    def same_format(self, other: "TransactionSystem") -> bool:
        """Whether two systems have the same format (minimum information)."""
        return self.format == other.format

    def rename_variables(self, mapping: Dict[str, str]) -> "TransactionSystem":
        """Globally rename variables throughout the system."""
        return TransactionSystem(
            (t.rename_variables(mapping) for t in self.transactions),
            name=self.name,
        )

    def canonical_function_symbols(self) -> Dict[StepRef, str]:
        """Map each step to its canonical function symbol name ``f{i}{j}``.

        When a :class:`Step` carries an explicit ``function_symbol`` it is
        kept; otherwise the canonical name is used.  Two distinct steps
        never share a canonical name.
        """
        symbols: Dict[StepRef, str] = {}
        for ref in self.step_refs():
            step = self.step(ref)
            symbols[ref] = step.function_symbol or f"f{ref.transaction}_{ref.step}"
        return symbols

    # ------------------------------------------------------------------
    # introspection helpers used by locking & conflict analysis
    # ------------------------------------------------------------------
    def steps_accessing(self, variable: str) -> List[StepRef]:
        """All step references that access the given variable."""
        return [ref for ref in self.step_refs() if self.step(ref).variable == variable]

    def transactions_accessing(self, variable: str) -> List[int]:
        """1-based indices of transactions that access ``variable``."""
        result = []
        for i, txn in enumerate(self.transactions, start=1):
            if variable in txn.variable_set():
                result.append(i)
        return result

    def conflicting_pairs(self) -> List[Tuple[StepRef, StepRef]]:
        """All unordered pairs of steps from *different* transactions that conflict.

        Two steps conflict when they access the same variable and at least
        one of them writes it.
        """
        pairs: List[Tuple[StepRef, StepRef]] = []
        refs = self.step_refs()
        for a, b in itertools.combinations(refs, 2):
            if a.transaction == b.transaction:
                continue
            sa, sb = self.step(a), self.step(b)
            if sa.variable != sb.variable:
                continue
            if sa.writes() or sb.writes():
                pairs.append((a, b))
        return pairs

    def describe(self) -> str:
        """A human-readable multi-line description of the system."""
        lines = [f"TransactionSystem {self.name!r} with format {self.format}"]
        for i, txn in enumerate(self.transactions, start=1):
            label = txn.name or f"T{i}"
            lines.append(f"  {label}:")
            for j, step in enumerate(txn.steps, start=1):
                kind = "read" if step.is_read_only else (
                    "write" if step.is_blind_write else "update"
                )
                lines.append(f"    T{i},{j}: {kind} {step.variable}")
        return "\n".join(lines)


def make_system(
    *variable_sequences: Sequence[str], name: str = "T"
) -> TransactionSystem:
    """Build a transaction system of read-modify-write steps from variable names.

    ``make_system(["x", "y"], ["y"])`` creates two transactions: the first
    with update steps on ``x`` then ``y``, the second with a single update
    step on ``y``.  This is the most common way the paper writes down
    example systems, where every step is of the general
    read-modify-write form.
    """
    transactions = [
        Transaction([update_step(v) for v in seq], name=f"T{i}")
        for i, seq in enumerate(variable_sequences, start=1)
    ]
    return TransactionSystem(transactions, name=name)
