"""The worked examples of the paper, as ready-made instances.

* :func:`banking_system` — the Section 2 example: three transactions over
  accounts ``A`` and ``B``, an audit sum ``S`` and a counter ``C``, with
  integrity constraint ``A >= 0 and B >= 0 and A + B == S - 50 * C``.
* :func:`figure1_system` — the Figure 1 system used to motivate weak
  serializability: ``T1 = (x <- x+1, x <- 2x)`` and ``T2 = (x <- x+1)``.
* :func:`figure2_transaction` / :func:`figure2_system` — the four-step
  transaction on ``x, y, x, z`` that Figures 2 and 5 lock with 2PL and
  2PL' respectively (paired with a second transaction so locking has
  something to protect against).

These are used throughout the tests, examples and benchmarks, and are
exported from :mod:`repro` for downstream users.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.core.instance import SystemInstance
from repro.core.semantics import IntegrityConstraint, Interpretation
from repro.core.transactions import (
    StepRef,
    Transaction,
    TransactionSystem,
    update_step,
)

# ----------------------------------------------------------------------
# Section 2: the banking example
# ----------------------------------------------------------------------


def banking_transaction_system() -> TransactionSystem:
    """The syntax of the Section 2 banking example (format ``(3, 2, 4)``).

    * ``T1`` accesses ``A, B, A`` — transfer $100 from A to B if A has
      enough funds and B's balance is below $100.
    * ``T2`` accesses ``B, C`` — withdraw $50 from B (if funded) and bump
      the counter ``C``.
    * ``T3`` accesses ``A, B, S, C`` — audit: compute ``S = A + B`` and
      reset ``C`` to 0.
    """
    t1 = Transaction(
        [update_step("A"), update_step("B"), update_step("A")], name="T1-transfer"
    )
    t2 = Transaction([update_step("B"), update_step("C")], name="T2-withdraw")
    t3 = Transaction(
        [update_step("A"), update_step("B"), update_step("S"), update_step("C")],
        name="T3-audit",
    )
    return TransactionSystem([t1, t2, t3], name="banking")


def banking_interpretation(
    system: TransactionSystem,
    initial: Mapping[str, int] = None,
) -> Interpretation:
    """The concrete semantics ``phi_ij`` of the banking example.

    The interpretations follow the paper exactly:

    * ``phi_11 = t_11`` (read A),
      ``phi_12 = if t_11 >= 100 and t_12 < 100 then t_12 + 100 else t_12``,
      ``phi_13 = if t_11 >= 100 and t_12 < 100 then t_11 - 100 else t_11``
      (the paper leaves the A-debit step implicit in its phi listing; it is
      the step that makes T1 an atomic transfer, conditioned identically
      to the B-credit so the transfer happens entirely or not at all).
    * ``phi_21 = if t_21 >= 50 then t_21 - 50 else t_21``,
      ``phi_22 = if t_21 >= 50 then t_22 + 1 else t_22``.
    * ``phi_31 = t_31``, ``phi_32 = t_32``, ``phi_33 = t_31 + t_32``,
      ``phi_34 = 0``.
    """
    if initial is None:
        initial = {"A": 150, "B": 50, "S": 200, "C": 0}

    def phi_11(t11: int) -> int:
        return t11

    def phi_12(t11: int, t12: int) -> int:
        return t12 + 100 if t11 >= 100 and t12 < 100 else t12

    def phi_13(t11: int, t12: int, t13: int) -> int:
        return t11 - 100 if t11 >= 100 and t12 < 100 else t13

    def phi_21(t21: int) -> int:
        return t21 - 50 if t21 >= 50 else t21

    def phi_22(t21: int, t22: int) -> int:
        return t22 + 1 if t21 >= 50 else t22

    def phi_31(t31: int) -> int:
        return t31

    def phi_32(t31: int, t32: int) -> int:
        return t32

    def phi_33(t31: int, t32: int, t33: int) -> int:
        return t31 + t32

    def phi_34(t31: int, t32: int, t33: int, t34: int) -> int:
        return 0

    return Interpretation(
        system=system,
        step_functions={
            StepRef(1, 1): phi_11,
            StepRef(1, 2): phi_12,
            StepRef(1, 3): phi_13,
            StepRef(2, 1): phi_21,
            StepRef(2, 2): phi_22,
            StepRef(3, 1): phi_31,
            StepRef(3, 2): phi_32,
            StepRef(3, 3): phi_33,
            StepRef(3, 4): phi_34,
        },
        initial_globals=dict(initial),
        name="banking",
    )


def banking_constraint() -> IntegrityConstraint:
    """``A >= 0 and B >= 0 and A + B == S - 50 * C`` (Section 2)."""
    return IntegrityConstraint(
        lambda g: g["A"] >= 0 and g["B"] >= 0 and g["A"] + g["B"] == g["S"] - 50 * g["C"],
        "A >= 0 and B >= 0 and A + B = S - 50C",
    )


def banking_system(
    initial: Mapping[str, int] = None,
    extra_consistent_states: Tuple[Mapping[str, int], ...] = (),
) -> SystemInstance:
    """The complete Section 2 banking instance (syntax + semantics + ICs)."""
    system = banking_transaction_system()
    interpretation = banking_interpretation(system, initial)
    states = (dict(interpretation.initial_globals),) + tuple(
        dict(s) for s in extra_consistent_states
    )
    return SystemInstance(
        system=system,
        interpretation=interpretation,
        constraint=banking_constraint(),
        consistent_states=states,
    )


# ----------------------------------------------------------------------
# Figure 1: the weak-serializability example
# ----------------------------------------------------------------------


def figure1_transaction_system() -> TransactionSystem:
    """The Figure 1 syntax: ``T1`` touches ``x`` twice, ``T2`` touches ``x`` once."""
    t1 = Transaction([update_step("x"), update_step("x")], name="T1")
    t2 = Transaction([update_step("x")], name="T2")
    return TransactionSystem([t1, t2], name="figure1")


def figure1_interpretation(
    system: TransactionSystem, initial_x: int = 0
) -> Interpretation:
    """``T11: x <- x+1``, ``T12: x <- 2x``, ``T21: x <- x+1``."""

    def plus_one_first(t1: int) -> int:
        return t1 + 1

    def double(t1: int, t2: int) -> int:
        return 2 * t2

    def plus_one_second(t1: int) -> int:
        return t1 + 1

    return Interpretation(
        system=system,
        step_functions={
            StepRef(1, 1): plus_one_first,
            StepRef(1, 2): double,
            StepRef(2, 1): plus_one_second,
        },
        initial_globals={"x": initial_x},
        name="figure1",
    )


def figure1_system(
    initial_x: int = 0, extra_initial_values: Tuple[int, ...] = (1, 2, 5)
) -> SystemInstance:
    """The Figure 1 instance with trivially-true integrity constraints.

    The interesting history ``h = (T11, T21, T12)`` is *not*
    Herbrand-serializable but *is* weakly serializable (indeed
    state-equivalent to the serial history ``T2; T1``), which is what
    Theorem 4 is about.  Several initial values of ``x`` are included so
    the state-based checks quantify over more than one consistent state.
    """
    system = figure1_transaction_system()
    interpretation = figure1_interpretation(system, initial_x)
    states = ({"x": initial_x},) + tuple({"x": v} for v in extra_initial_values)
    return SystemInstance(
        system=system,
        interpretation=interpretation,
        consistent_states=states,
    )


def figure1_history() -> Tuple[StepRef, ...]:
    """The history ``h = (T11, T21, T12)`` discussed under Figure 1."""
    return (StepRef(1, 1), StepRef(2, 1), StepRef(1, 2))


# ----------------------------------------------------------------------
# Figure 2 / Figure 5: the transaction that 2PL and 2PL' lock
# ----------------------------------------------------------------------


def figure2_transaction() -> Transaction:
    """The four-step transaction ``x, y, x, z`` of Figure 2(a)."""
    return Transaction(
        [update_step("x"), update_step("y"), update_step("x"), update_step("z")],
        name="Ti",
    )


def figure2_system() -> TransactionSystem:
    """The Figure 2 transaction paired with a partner touching ``x`` and ``y``.

    The paper draws Figure 2 for a single transaction; pairing it with a
    second transaction gives the locking policies something to coordinate
    and is the system used by the 2PL-vs-2PL' experiments (E6, E9).
    """
    partner = Transaction([update_step("x"), update_step("y")], name="Tj")
    return TransactionSystem([figure2_transaction(), partner], name="figure2")


def counter_pair_system() -> TransactionSystem:
    """A minimal two-transaction, two-variable system (used by geometry examples).

    ``T1`` accesses ``x`` then ``y``; ``T2`` accesses ``y`` then ``x`` —
    the classic lock-ordering pattern that produces the deadlock region
    of Figure 3.
    """
    t1 = Transaction([update_step("x"), update_step("y")], name="T1")
    t2 = Transaction([update_step("y"), update_step("x")], name="T2")
    return TransactionSystem([t1, t2], name="counter-pair")
