"""Herbrand (symbolic) semantics for transaction systems (Section 4.2).

When only syntactic information is available, the paper supplements the
syntax with *Herbrand semantics*: the domain of every variable is the set
of symbolic terms over an alphabet containing the variable names and the
function symbols ``f_ij``, and the interpretation of ``f_ij`` applied to
terms ``a_1, ..., a_j`` is simply the term ``f_ij(a_1, ..., a_j)``.  In
other words, the Herbrand interpretation records the *entire history* of
how each global variable's value was computed.

By Herbrand's theorem, two step sequences that produce equal Herbrand
final states produce equal final states under *every* interpretation —
which is why final-state equality under Herbrand semantics is the right
notion of serializability for syntactic information (Theorem 3).

This module implements Herbrand terms, symbolic execution of schedules,
and the final-state comparison used to decide membership in ``SR(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.schedules import Schedule, serial_schedule
from repro.core.transactions import StepRef, TransactionSystem


@dataclass(frozen=True)
class HerbrandTerm:
    """A term of the Herbrand universe.

    A term is either an *initial-value symbol* for a global variable
    (``symbol`` set, ``arguments`` empty) or the application of a function
    symbol ``f_ij`` to previously computed terms.
    """

    symbol: str
    arguments: Tuple["HerbrandTerm", ...] = ()

    def __str__(self) -> str:
        if not self.arguments:
            return self.symbol
        inner = ", ".join(str(a) for a in self.arguments)
        return f"{self.symbol}({inner})"

    def __repr__(self) -> str:
        return f"HerbrandTerm({str(self)!r})"

    @property
    def is_initial(self) -> bool:
        """Whether the term is an initial-value symbol (a constant)."""
        return not self.arguments

    def depth(self) -> int:
        """The nesting depth of the term (initial symbols have depth 0)."""
        if not self.arguments:
            return 0
        return 1 + max(arg.depth() for arg in self.arguments)

    def size(self) -> int:
        """The number of symbol occurrences in the term."""
        return 1 + sum(arg.size() for arg in self.arguments)

    def symbols(self) -> frozenset:
        """All function/constant symbols occurring in the term."""
        result = {self.symbol}
        for arg in self.arguments:
            result |= arg.symbols()
        return frozenset(result)


def initial_term(variable: str) -> HerbrandTerm:
    """The initial-value symbol for a global variable."""
    return HerbrandTerm(symbol=variable)


#: A Herbrand state maps each global variable name to the symbolic term
#: describing its current value, and each declared local (i, j) to the
#: term it read.
@dataclass
class HerbrandState:
    """The symbolic counterpart of :class:`repro.core.semantics.SystemState`."""

    globals_: Dict[str, HerbrandTerm]
    locals_: Dict[Tuple[int, int], HerbrandTerm]

    @classmethod
    def initial(cls, system: TransactionSystem) -> "HerbrandState":
        """Every global variable holds its own initial-value symbol."""
        return cls(
            globals_={v: initial_term(v) for v in sorted(system.variables())},
            locals_={},
        )

    def copy(self) -> "HerbrandState":
        return HerbrandState(globals_=dict(self.globals_), locals_=dict(self.locals_))


def herbrand_execute(
    system: TransactionSystem,
    schedule: Sequence[StepRef],
    state: Optional[HerbrandState] = None,
) -> HerbrandState:
    """Symbolically execute a legal step sequence under Herbrand semantics.

    Each step ``T_ij`` on variable ``x`` records ``t_ij := current term of
    x`` and then sets ``x := f_ij(t_i1, ..., t_ij)``.  Read-only steps
    (identity interpretation) leave the global term unchanged — this is
    how syntactic read/write annotations refine the Herbrand analysis; a
    blind-write step produces a term that omits its own ``t_ij`` argument.
    """
    symbols = system.canonical_function_symbols()
    state = state.copy() if state is not None else HerbrandState.initial(system)
    for ref in schedule:
        step = system.step(ref)
        i, j = ref.transaction, ref.step
        current = state.globals_[step.variable]
        state.locals_[(i, j)] = current
        if step.is_read_only:
            # identity interpretation: the global value is untouched
            continue
        args = tuple(
            state.locals_[(i, k)]
            for k in range(1, j + 1)
            if not (step.is_blind_write and k == j)
        )
        state.globals_[step.variable] = HerbrandTerm(symbols[ref], args)
    return state


def herbrand_final_state(
    system: TransactionSystem, schedule: Sequence[StepRef]
) -> Dict[str, HerbrandTerm]:
    """The mapping variable -> final Herbrand term after the schedule."""
    return dict(herbrand_execute(system, schedule).globals_)


def herbrand_equivalent(
    system: TransactionSystem,
    schedule_a: Sequence[StepRef],
    schedule_b: Sequence[StepRef],
) -> bool:
    """Whether two schedules have identical Herbrand final states.

    By Herbrand's theorem this implies they are equivalent under every
    interpretation, i.e. *final-state equivalent*.
    """
    return herbrand_final_state(system, schedule_a) == herbrand_final_state(
        system, schedule_b
    )


def serial_herbrand_states(
    system: TransactionSystem,
) -> Dict[Tuple[int, ...], Dict[str, HerbrandTerm]]:
    """Final Herbrand states of all serial schedules, keyed by serial order."""
    import itertools

    result: Dict[Tuple[int, ...], Dict[str, HerbrandTerm]] = {}
    for order in itertools.permutations(range(1, system.num_transactions + 1)):
        sched = serial_schedule(system.format, list(order))
        result[tuple(order)] = herbrand_final_state(system, sched)
    return result
