"""The optimality theory: Theorem 1 and its consequences (Sections 3.3-4).

Theorem 1 states that for any correct scheduler operating at information
level ``I``, its fixpoint set must satisfy ``P ⊆ ∩_{T' ∈ I} C(T')``; the
scheduler achieving equality is the *optimal scheduler* for ``I``.  The
proof is an adversary argument: any history outside the bound can be made
incorrect by swapping in an indistinguishable transaction system.

This module turns that theory into executable artefacts:

* :func:`theorem1_upper_bound` — the bound ``∩_{T' ∈ I} C(T')`` at each of
  the paper's information levels, realised through the Section-4
  characterisations (serial / SR / WSR / C).
* :func:`minimum_information_adversary` — the Theorem 2 construction: for
  any *non-serial* history, a transaction system with the same format
  (``x+1`` / ``x-1`` with an interleaved ``2x`` and integrity constraint
  ``x = 0``) for which that history is incorrect.
* :func:`syntactic_information_adversary` — the Theorem 3 construction:
  for any history outside ``SR(T)``, a same-syntax system with Herbrand
  semantics and reachable-state integrity constraints for which the
  history is incorrect.
* :func:`is_optimal`, :class:`OptimalityReport` — certify a concrete
  scheduler against the bound for its level.
* :func:`performance_partial_order` — the partial order on schedulers by
  fixpoint-set inclusion, the performance side of the information /
  performance isomorphism.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.herbrand import HerbrandTerm, initial_term
from repro.core.information import InformationLevel, MinimumInformation
from repro.core.instance import SystemInstance
from repro.core.schedules import Schedule, all_schedules, is_serial, validate_schedule
from repro.core.schedulers import Scheduler
from repro.core.semantics import IntegrityConstraint, Interpretation
from repro.core.serializability import is_serializable
from repro.core.transactions import (
    Step,
    StepRef,
    Transaction,
    TransactionSystem,
    update_step,
)


# ----------------------------------------------------------------------
# Theorem 1: the information upper bound
# ----------------------------------------------------------------------


def theorem1_upper_bound(
    instance: SystemInstance, level: InformationLevel
) -> List[Schedule]:
    """The Theorem-1 bound ``∩_{T' ∈ I} C(T')`` for the given level on ``instance``.

    The intersection over the (generally infinite) level set is realised
    by the exact characterisations of Section 4: serial schedules at
    minimum information, ``SR(T)`` at syntactic information, ``WSR(T)``
    when everything but the integrity constraints is known, and ``C(T)``
    at maximum information.
    """
    return level.optimal_fixpoint_set(instance)


def optimal_fixpoint_set(
    instance: SystemInstance, level: InformationLevel
) -> List[Schedule]:
    """Alias of :func:`theorem1_upper_bound`: the optimal scheduler's fixpoint set."""
    return theorem1_upper_bound(instance, level)


def violates_theorem1(
    scheduler: Scheduler, level: InformationLevel
) -> List[Schedule]:
    """Histories in the scheduler's fixpoint set but outside the Theorem-1 bound.

    A *correct* scheduler must return an empty list; a non-empty list
    certifies (per the adversary argument) that the scheduler cannot be
    correct at that information level.
    """
    bound = {tuple(h) for h in theorem1_upper_bound(scheduler.instance, level)}
    return [h for h in scheduler.fixpoint_set() if tuple(h) not in bound]


# ----------------------------------------------------------------------
# Adversary constructions
# ----------------------------------------------------------------------


def _find_separated_steps(
    fmt: Sequence[int], history: Sequence[StepRef]
) -> Optional[Tuple[StepRef, StepRef, StepRef]]:
    """Find steps ``T_i,l``, ``T_j,*``, ``T_i,l+1`` occurring in this order.

    Any non-serial history contains two consecutive steps of some
    transaction separated by a step of a different transaction; returns
    the witnessing triple or ``None`` for serial histories.
    """
    position = {ref: k for k, ref in enumerate(history)}
    for i in range(1, len(fmt) + 1):
        for l in range(1, fmt[i - 1]):
            first = StepRef(i, l)
            second = StepRef(i, l + 1)
            for ref in history[position[first] + 1 : position[second]]:
                if ref.transaction != i:
                    return (first, ref, second)
    return None


def minimum_information_adversary(
    fmt: Sequence[int], history: Sequence[StepRef], variable: str = "x"
) -> SystemInstance:
    """The Theorem 2 adversary for a non-serial history of the given format.

    Builds a transaction system ``T'`` with the same format in which the
    separated pair of steps is interpreted as ``x <- x + 1`` and
    ``x <- x - 1``, the intervening foreign step as ``x <- 2x``, every
    other step as the identity, and the integrity constraint is
    ``x = 0``.  Each transaction alone preserves ``x = 0``, but the given
    history drives ``x`` to 1 — so the history is not in ``C(T')``.

    Raises :class:`ValueError` if the history is serial (no adversary
    exists: serial histories are correct for every system).
    """
    fmt = tuple(fmt)
    if is_serial(fmt, history):
        raise ValueError("no minimum-information adversary exists for a serial history")
    witness = _find_separated_steps(fmt, history)
    assert witness is not None  # non-serial guarantees a witness
    increment, doubler, decrement = witness

    transactions = [
        Transaction([update_step(variable) for _ in range(m)], name=f"T{i}")
        for i, m in enumerate(fmt, start=1)
    ]
    system = TransactionSystem(transactions, name="theorem2-adversary")

    def plus_one(*locals_values: int) -> int:
        return locals_values[-1] + 1

    def minus_one(*locals_values: int) -> int:
        return locals_values[-1] - 1

    def double(*locals_values: int) -> int:
        return locals_values[-1] * 2

    step_functions = {increment: plus_one, decrement: minus_one, doubler: double}
    interpretation = Interpretation(
        system=system,
        step_functions=step_functions,
        initial_globals={variable: 0},
        name="theorem2-adversary-semantics",
    )
    constraint = IntegrityConstraint(
        lambda g, _v=variable: g[_v] == 0, f"{variable} = 0"
    )
    return SystemInstance(
        system=system,
        interpretation=interpretation,
        constraint=constraint,
        consistent_states=({variable: 0},),
    )


def herbrand_concrete_interpretation(system: TransactionSystem) -> Interpretation:
    """A concrete :class:`Interpretation` realising the Herbrand semantics.

    Every global variable initially holds its own initial-value term, and
    every step function builds the term ``f_ij(t_i1, ..., t_ij)``.  Under
    this interpretation, concrete execution coincides with the symbolic
    execution of :mod:`repro.core.herbrand`.
    """
    symbols = system.canonical_function_symbols()
    step_functions = {}
    for ref in system.step_refs():
        step = system.step(ref)
        if step.is_read_only:
            continue  # identity default
        symbol = symbols[ref]

        def build_term(*args: HerbrandTerm, _symbol: str = symbol, _blind: bool = step.is_blind_write) -> HerbrandTerm:
            used = args[:-1] if _blind else args
            return HerbrandTerm(_symbol, tuple(used))

        step_functions[ref] = build_term
    initial = {v: initial_term(v) for v in system.variables()}
    return Interpretation(
        system=system,
        step_functions=step_functions,
        initial_globals=initial,
        name="herbrand",
    )


def reachable_herbrand_states(
    system: TransactionSystem,
    interpretation: Interpretation,
    max_concatenation_length: Optional[int] = None,
) -> Set[Tuple[Tuple[str, HerbrandTerm], ...]]:
    """Global states reachable from the initial state by serial concatenations.

    These are the integrity constraints of the Theorem 3 adversary:
    ``(a_1, ..., a_k) ∈ IC`` iff some concatenation of serial transaction
    executions (with repetitions and omissions) maps the initial values to
    ``(a_1, ..., a_k)``.  The concatenation length is bounded by
    ``max_concatenation_length`` (default ``n + 2``), which is exhaustive
    for the small systems used in the experiments.
    """
    from repro.core.semantics import execute_serial

    if max_concatenation_length is None:
        max_concatenation_length = system.num_transactions + 2
    states: Set[Tuple[Tuple[str, HerbrandTerm], ...]] = set()
    indices = range(1, system.num_transactions + 1)
    for length in range(max_concatenation_length + 1):
        for sequence in itertools.product(indices, repeat=length):
            final = execute_serial(
                system,
                interpretation,
                list(sequence),
                allow_repetitions=True,
            ).globals_
            states.add(tuple(sorted(final.items())))
    return states


def syntactic_information_adversary(
    system: TransactionSystem,
    history: Sequence[StepRef],
    max_concatenation_length: Optional[int] = None,
) -> SystemInstance:
    """The Theorem 3 adversary for a history outside ``SR(T)``.

    Builds an instance with the same syntax as ``system``, Herbrand
    semantics, and integrity constraints "the global state is reachable
    from the initial values by a concatenation of serial transaction
    executions".  All transactions are individually correct under this
    constraint, but any non-serializable history ends in an unreachable
    (hence inconsistent) state.

    Raises :class:`ValueError` if the history *is* Herbrand-serializable
    (then it is correct for every same-syntax system and no adversary
    exists).
    """
    history = validate_schedule(system, history)
    if is_serializable(system, history):
        raise ValueError(
            "no syntactic-information adversary exists for a serializable history"
        )
    interpretation = herbrand_concrete_interpretation(system)
    reachable = reachable_herbrand_states(
        system, interpretation, max_concatenation_length
    )

    def in_reachable(globals_: Mapping[str, object]) -> bool:
        return tuple(sorted(globals_.items())) in reachable

    constraint = IntegrityConstraint(
        in_reachable, "state reachable by serial concatenations"
    )
    return SystemInstance(
        system=system,
        interpretation=interpretation,
        constraint=constraint,
        consistent_states=(dict(interpretation.initial_globals),),
    )


# ----------------------------------------------------------------------
# Optimality certification & the performance partial order
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OptimalityReport:
    """The result of comparing a scheduler's fixpoint set against its level's bound."""

    scheduler_name: str
    level_name: str
    fixpoint_size: int
    bound_size: int
    is_correct: bool
    is_optimal: bool
    missing_from_fixpoint: Tuple[Schedule, ...]
    exceeding_bound: Tuple[Schedule, ...]

    def summary(self) -> str:
        """One line suitable for experiment logs."""
        status = "OPTIMAL" if self.is_optimal else (
            "correct, sub-optimal" if self.is_correct else "INCORRECT"
        )
        return (
            f"{self.scheduler_name} @ {self.level_name}: |P| = {self.fixpoint_size}, "
            f"bound = {self.bound_size} -> {status}"
        )


def certify(
    scheduler: Scheduler, level: Optional[InformationLevel] = None
) -> OptimalityReport:
    """Certify a scheduler against the Theorem-1 bound for a level.

    When ``level`` is omitted the scheduler's own declared
    ``information_level`` is used.
    """
    level = level or scheduler.information_level
    bound = [tuple(h) for h in theorem1_upper_bound(scheduler.instance, level)]
    bound_set = set(bound)
    fixpoint = [tuple(h) for h in scheduler.fixpoint_set()]
    fixpoint_set_ = set(fixpoint)
    exceeding = tuple(h for h in fixpoint if h not in bound_set)
    missing = tuple(h for h in bound if h not in fixpoint_set_)
    correct = scheduler.is_correct()
    return OptimalityReport(
        scheduler_name=scheduler.name,
        level_name=level.name,
        fixpoint_size=len(fixpoint),
        bound_size=len(bound),
        is_correct=correct,
        is_optimal=correct and not exceeding and not missing,
        missing_from_fixpoint=missing,
        exceeding_bound=exceeding,
    )


def is_optimal(
    scheduler: Scheduler, level: Optional[InformationLevel] = None
) -> bool:
    """Whether the scheduler is the optimal scheduler for the level."""
    return certify(scheduler, level).is_optimal


def performs_better(a: Scheduler, b: Scheduler) -> bool:
    """Whether ``a`` performs strictly better than ``b`` (fixpoint strict superset)."""
    pa = {tuple(h) for h in a.fixpoint_set()}
    pb = {tuple(h) for h in b.fixpoint_set()}
    return pb < pa


def performance_partial_order(
    schedulers: Sequence[Scheduler],
) -> Dict[Tuple[str, str], str]:
    """Pairwise comparison of schedulers by fixpoint-set inclusion.

    Returns a mapping from ``(name_a, name_b)`` to one of ``"better"``,
    ``"worse"``, ``"equal"`` or ``"incomparable"`` describing how ``a``'s
    fixpoint set relates to ``b``'s.
    """
    sets = {s.name: {tuple(h) for h in s.fixpoint_set()} for s in schedulers}
    result: Dict[Tuple[str, str], str] = {}
    for a, b in itertools.permutations(schedulers, 2):
        pa, pb = sets[a.name], sets[b.name]
        if pa == pb:
            relation = "equal"
        elif pb < pa:
            relation = "better"
        elif pa < pb:
            relation = "worse"
        else:
            relation = "incomparable"
        result[(a.name, b.name)] = relation
    return result
