"""Export a trace as Chrome trace-event JSON (viewable in Perfetto).

The format is the Trace Event Format's JSON-object flavour: a
``traceEvents`` array of "X" (complete) slices, "i" (instant) markers
and "M" (metadata) records, with microsecond timestamps.  Load the
output at https://ui.perfetto.dev or ``chrome://tracing``.

Mapping:

* each engine session becomes a track (``pid=1``, ``tid=session_id``)
  whose "X" slices are the :func:`~repro.obs.profile.phase_slices` of
  its lifetime — named by phase, coloured by Perfetto automatically;
* BEGIN / COMMIT / ABORT events become "i" instants on the session's
  track (aborts carry their taxonomy code in ``args``);
* wall-clock :class:`~repro.obs.trace.Span` records (parallel-runner
  IPC) land on a separate ``pid=2`` process so logical and wall time
  are never mixed on one track.

Logical timestamps (rounds / virtual time) are scaled by ``time_scale``
(default 1000, i.e. one logical unit renders as 1ms) purely for
readability — Perfetto needs non-degenerate slice widths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.obs import trace as ev
from repro.obs.profile import phase_slices
from repro.obs.trace import Span, TraceEvent

#: instant markers worth flagging on the timeline
_INSTANTS = {ev.BEGIN: "begin", ev.COMMIT: "commit", ev.ABORT: "abort"}


def chrome_trace(
    events: Iterable[TraceEvent],
    spans: Iterable[Span] = (),
    time_scale: float = 1000.0,
) -> Dict[str, Any]:
    """Render a trace as a Chrome trace-event JSON object."""
    event_list = list(events)
    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "engine"}},
    ]
    seen_sessions = set()

    for phase_slice in phase_slices(event_list):
        if phase_slice.session_id not in seen_sessions:
            seen_sessions.add(phase_slice.session_id)
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": phase_slice.session_id,
                    "name": "thread_name",
                    "args": {"name": f"session {phase_slice.session_id}"},
                }
            )
        args: Dict[str, Any] = {"attempt": phase_slice.attempt}
        if phase_slice.txn_id is not None:
            args["txn"] = phase_slice.txn_id
        if phase_slice.key is not None:
            args["key"] = phase_slice.key
        trace_events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": phase_slice.session_id,
                "ts": phase_slice.start * time_scale,
                # zero-duration slices are invisible; give them 1 tick
                "dur": max(phase_slice.duration * time_scale, 1.0),
                "name": phase_slice.phase,
                "args": args,
            }
        )

    for event in event_list:
        marker = _INSTANTS.get(event.etype)
        if marker is None:
            continue
        args = {"txn": event.txn_id, "attempt": event.attempt}
        if event.code is not None:
            args["code"] = event.code
        if event.detail:
            args["detail"] = event.detail
        trace_events.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": event.session_id,
                "ts": event.ts * time_scale,
                "s": "t",  # thread-scoped instant
                "name": marker,
                "args": args,
            }
        )

    span_list = list(spans)
    if span_list:
        trace_events.append(
            {
                "ph": "M",
                "pid": 2,
                "name": "process_name",
                "args": {"name": "parallel runner (wall clock)"},
            }
        )
        # wall-clock spans are in seconds; rebase to the earliest start
        # so the track begins near t=0 like the logical tracks
        t0 = min(span.start for span in span_list)
        for span in span_list:
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 2,
                    "tid": 0,
                    "ts": (span.start - t0) * 1e6,
                    "dur": max(span.duration * 1e6, 1.0),
                    "name": span.name,
                    "args": dict(span.meta),
                }
            )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
