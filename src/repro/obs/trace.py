"""Typed trace events and the tracer hooks the engine emits them through.

The tracing layer mirrors the metrics layer's shape exactly: the kernel
and the front-ends hold a :class:`Tracer` and call :meth:`Tracer.emit`
at every lifecycle transition; the default :class:`NullTracer` is a
no-op whose ``enabled`` flag lets emitters skip even the argument
packing (the kernel guards every emission behind one attribute check,
the same trick that makes :class:`~repro.engine.metrics.NullMetrics`
free).  Swapping in a :class:`TraceRecorder` captures the full stream.

**Determinism contract.**  Event timestamps are *logical*: the untimed
executor stamps its scheduler round, the simulator stamps virtual time.
No wall clock ever enters an event or its ordering, so the same seed
yields a byte-identical serialized trace, and the conformance harness
can attach a trace to every shrunk counterexample without perturbing
replay digests.  The only wall-clock measurements live in
:class:`Span` records (the :class:`~repro.engine.parallel.
ParallelShardRunner`'s pickle/submit/collect instrumentation) which are
kept in a separate stream and excluded from the determinism guarantee.

This module is deliberately stdlib-only — it imports nothing from
:mod:`repro.engine` — so the kernel can import it without creating an
import cycle (``kernel`` → ``obs.trace`` is a leaf edge).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

# ---------------------------------------------------------------------------
# event types: one constant per lifecycle transition the engine reports
# ---------------------------------------------------------------------------
BEGIN = "begin"          # transaction attempt started (txn id assigned)
READ = "read"            # data read granted
WRITE = "write"          # buffered write granted
BLOCK = "block"          # request must wait (key + blockers attached)
WAKE = "wake"            # a parked session's blocker resolved
VALIDATE = "validate"    # two-stage commit: validation stage passed
COMMIT = "commit"        # commit granted (writes installed)
ABORT = "abort"          # attempt aborted (taxonomy code attached)
RESTART = "restart"      # session reset for a fresh attempt

EVENT_TYPES = (BEGIN, READ, WRITE, BLOCK, WAKE, VALIDATE, COMMIT, ABORT, RESTART)

# distributed-layer events (repro.dist): kept in their own tuple so the
# single-engine lifecycle set above stays exactly the kernel's vocabulary
SEND = "send"            # a message entered the simulated network
RECV = "recv"            # a message was delivered to its node
TIMEOUT = "timeout"      # a protocol timer fired (retry/backoff path)
DECIDE = "decide"        # the 2PC coordinator logged a commit/abort decision
CRASH = "crash"          # a node crashed (volatile state lost)
RECOVER = "recover"      # a node restarted and replayed its durable log
ELECT = "elect"          # a replica group elected a leader for a new term

DIST_EVENT_TYPES = (SEND, RECV, TIMEOUT, DECIDE, CRASH, RECOVER, ELECT)


class TraceEvent:
    """One engine lifecycle transition, with logical timing.

    Hand-rolled with ``__slots__`` like :class:`~repro.engine.kernel.
    Session`: tracing-enabled runs allocate one of these per protocol
    interaction, so the per-instance ``__dict__`` is worth avoiding.

    Fields
    ------
    seq:        recorder-assigned global sequence number (total order)
    ts:         logical time — executor round or simulator virtual time
    etype:      one of :data:`EVENT_TYPES`
    session_id: the engine session (stable across restarts)
    txn_id:     the transaction id of this attempt (may be ``None`` for
                a restart event, which happens between attempts)
    attempt:    1-based attempt number of the session
    key:        the key involved, when the event concerns one
    blockers:   BLOCK/ABORT attribution — the transactions waited on,
                or the conflicting transactions named by an abort
    code:       ABORT only — the taxonomy reason code
                (:mod:`repro.engine.reasons`)
    detail:     free-text protocol reason (human-oriented)
    meta:       small JSON-safe mapping for event-specific extras
                (``parked``, ``commit`` flags, probe counts, values)
    """

    __slots__ = (
        "seq",
        "ts",
        "etype",
        "session_id",
        "txn_id",
        "attempt",
        "key",
        "blockers",
        "code",
        "detail",
        "meta",
    )

    def __init__(
        self,
        seq: int,
        ts: Any,
        etype: str,
        session_id: int,
        txn_id: Optional[int],
        attempt: int,
        key: Optional[str] = None,
        blockers: Tuple[int, ...] = (),
        code: Optional[str] = None,
        detail: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.etype = etype
        self.session_id = session_id
        self.txn_id = txn_id
        self.attempt = attempt
        self.key = key
        self.blockers = blockers
        self.code = code
        self.detail = detail
        self.meta = meta or {}

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with stable key order (sorted at dump time)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "etype": self.etype,
            "session": self.session_id,
            "txn": self.txn_id,
            "attempt": self.attempt,
        }
        # optional fields are omitted when empty so serialized traces
        # stay compact and byte-comparison is not noise-sensitive
        if self.key is not None:
            record["key"] = self.key
        if self.blockers:
            record["blockers"] = list(self.blockers)
        if self.code is not None:
            record["code"] = self.code
        if self.detail:
            record["detail"] = self.detail
        if self.meta:
            record["meta"] = self.meta
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=record["seq"],
            ts=record["ts"],
            etype=record["etype"],
            session_id=record["session"],
            txn_id=record.get("txn"),
            attempt=record.get("attempt", 0),
            key=record.get("key"),
            blockers=tuple(record.get("blockers", ())),
            code=record.get("code"),
            detail=record.get("detail", ""),
            meta=record.get("meta") or {},
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent(seq={self.seq}, ts={self.ts}, {self.etype!r}, "
            f"session={self.session_id}, txn={self.txn_id}, key={self.key!r}, "
            f"code={self.code!r})"
        )


class Span:
    """One wall-clock measurement (parallel-runner IPC instrumentation).

    Spans live outside the deterministic event stream: they carry real
    durations (seconds) and are serialized separately, so byte-identity
    of the *event* stream across runs is preserved.
    """

    __slots__ = ("name", "start", "duration", "meta")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.meta = meta or {}

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.meta:
            record["meta"] = self.meta
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            start=record["start"],
            duration=record["duration"],
            meta=record.get("meta") or {},
        )

    def __repr__(self) -> str:
        return f"Span({self.name!r}, start={self.start}, duration={self.duration})"


class Tracer:
    """The tracing hook interface the engine emits through.

    ``enabled`` is the emitters' fast-path guard: the kernel caches it
    once at construction and skips argument packing entirely when it is
    False, so a disabled tracer costs one attribute check per step —
    the property the benchmark guard in ``benchmarks/test_bench_sched.
    py`` pins at ≤5% overhead.

    ``now`` is the logical clock, *pushed* by the front-end rather than
    pulled: the executor sets it to the scheduler round before each
    step, the simulator to the decision's virtual time.  Emitters never
    consult a wall clock.
    """

    enabled = True

    def __init__(self) -> None:
        #: the logical timestamp stamped on the next emitted event
        self.now: Any = 0

    def emit(
        self,
        etype: str,
        session_id: int,
        txn_id: Optional[int],
        attempt: int,
        key: Optional[str] = None,
        blockers: Tuple[int, ...] = (),
        code: Optional[str] = None,
        detail: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one lifecycle event (no-op in the base class)."""

    def span(
        self,
        name: str,
        start: float,
        duration: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one wall-clock span (no-op in the base class)."""


class NullTracer(Tracer):
    """The default tracer: does nothing, and advertises it via ``enabled``."""

    enabled = False


#: the shared default, mirroring ``NULL_METRICS``
NULL_TRACER = NullTracer()


class TraceRecorder(Tracer):
    """A tracer that captures the event stream for analysis or export."""

    enabled = True

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []
        self.spans: List[Span] = []
        self._seq = 0

    def emit(
        self,
        etype: str,
        session_id: int,
        txn_id: Optional[int],
        attempt: int,
        key: Optional[str] = None,
        blockers: Tuple[int, ...] = (),
        code: Optional[str] = None,
        detail: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.events.append(
            TraceEvent(
                seq=self._seq,
                ts=self.now,
                etype=etype,
                session_id=session_id,
                txn_id=txn_id,
                attempt=attempt,
                key=key,
                blockers=blockers,
                code=code,
                detail=detail,
                meta=meta,
            )
        )
        self._seq += 1

    def span(
        self,
        name: str,
        start: float,
        duration: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.spans.append(Span(name, start, duration, meta))

    # ------------------------------------------------------------------
    # serialization: JSON-lines, one event per line, stable key order
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize the deterministic event stream (spans excluded).

        ``sort_keys`` plus compact separators make the output a pure
        function of the events, so the determinism tests can compare
        whole traces bytewise.
        """
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
            for event in self.events
        )

    def spans_jsonl(self) -> str:
        """Serialize the wall-clock span stream (non-deterministic)."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            for span in self.spans
        )

    def save(self, path: str) -> None:
        """Write the event stream to ``path`` (and spans alongside, if any).

        Spans land in ``<path>.spans`` so the event file itself stays
        byte-identical across runs of the same seed.
        """
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        if self.spans:
            with open(path + ".spans", "w", encoding="utf-8") as handle:
                handle.write(self.spans_jsonl())

    @classmethod
    def load(cls, path: str) -> "TraceRecorder":
        """Rehydrate a recorder from a saved event stream."""
        recorder = cls()
        recorder.events = list(load_events(path))
        recorder._seq = len(recorder.events)
        try:
            with open(path + ".spans", "r", encoding="utf-8") as handle:
                recorder.spans = [
                    Span.from_dict(json.loads(line))
                    for line in handle
                    if line.strip()
                ]
        except OSError:
            pass
        return recorder


def load_events(path: str) -> Iterable[TraceEvent]:
    """Stream the events of a saved trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceEvent.from_dict(json.loads(line))
