"""Fold a trace's event stream into contention and latency reports.

Two derived views of one :class:`~repro.obs.trace.TraceEvent` stream:

* **phase slices** — each session's lifetime cut into the phases the
  engine actually put it through (``running`` / ``blocked`` /
  ``validating`` / ``committing``), from which per-phase latency
  histograms are built (reusing the engine's streaming
  :class:`~repro.engine.metrics.Histogram`);
* **per-key contention** — for every key: how often requests blocked on
  it, how long they waited, who they waited for, and which aborts (by
  taxonomy code) it is implicated in.  This is the hot-key report that
  turns "OCC loses under contention" from a counter into named keys and
  named blockers.

Durations are in the trace's logical time unit: scheduler rounds for
executor traces, virtual time for simulator traces.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.engine.metrics import Histogram
from repro.engine.reasons import ABORT_REASONS, ABORT_UNSPECIFIED
from repro.obs import trace as ev
from repro.obs.trace import Span, TraceEvent

#: the phases a session can occupy between two trace events
PHASES = ("running", "blocked", "validating", "committing")


class PhaseSlice:
    """One contiguous stretch of a session's life in a single phase."""

    __slots__ = ("session_id", "txn_id", "attempt", "phase", "start", "end", "key")

    def __init__(
        self,
        session_id: int,
        txn_id: Optional[int],
        attempt: int,
        phase: str,
        start: Any,
        end: Any,
        key: Optional[str] = None,
    ) -> None:
        self.session_id = session_id
        self.txn_id = txn_id
        self.attempt = attempt
        self.phase = phase
        self.start = start
        self.end = end
        #: blocked slices remember the contended key for attribution
        self.key = key

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"PhaseSlice(session={self.session_id}, txn={self.txn_id}, "
            f"{self.phase!r}, {self.start}..{self.end})"
        )


class _SessionCursor:
    """Per-session state while slicing: the currently open phase."""

    __slots__ = ("phase", "start", "txn_id", "attempt", "key")

    def __init__(self) -> None:
        self.phase: Optional[str] = None
        self.start: Any = None
        self.txn_id: Optional[int] = None
        self.attempt = 0
        self.key: Optional[str] = None


def phase_slices(events: Iterable[TraceEvent]) -> List[PhaseSlice]:
    """Cut each session's event stream into phase slices.

    The state machine mirrors the kernel's own transitions: a session
    runs from BEGIN (or a WAKE) until it blocks, validates, finishes or
    restarts; a commit-path block counts as ``committing`` (the session
    has finished its program and is queued on the commit itself);
    VALIDATE opens the two-stage-commit ``validating`` window closed by
    the finishing COMMIT/ABORT.  In polling mode a blocked session has
    no WAKE event — its block slice closes at its next own event, which
    is exactly when the engine re-drove it.
    """
    cursors: Dict[int, _SessionCursor] = {}
    slices: List[PhaseSlice] = []

    def close(cursor: _SessionCursor, session_id: int, at: Any) -> None:
        if cursor.phase is not None:
            slices.append(
                PhaseSlice(
                    session_id,
                    cursor.txn_id,
                    cursor.attempt,
                    cursor.phase,
                    cursor.start,
                    at,
                    key=cursor.key,
                )
            )
            cursor.phase = None
            cursor.key = None

    def open_phase(
        cursor: _SessionCursor, event: TraceEvent, phase: str, key: Optional[str] = None
    ) -> None:
        cursor.phase = phase
        cursor.start = event.ts
        cursor.txn_id = event.txn_id
        cursor.attempt = event.attempt
        cursor.key = key

    for event in events:
        cursor = cursors.get(event.session_id)
        if cursor is None:
            cursor = cursors[event.session_id] = _SessionCursor()
        etype = event.etype
        if etype in (ev.READ, ev.WRITE):
            if cursor.phase != "running":
                close(cursor, event.session_id, event.ts)
                open_phase(cursor, event, "running")
        elif etype == ev.BEGIN:
            close(cursor, event.session_id, event.ts)
            open_phase(cursor, event, "running")
        elif etype == ev.BLOCK:
            close(cursor, event.session_id, event.ts)
            phase = "committing" if event.meta.get("commit") else "blocked"
            open_phase(cursor, event, phase, key=event.key)
        elif etype == ev.WAKE:
            close(cursor, event.session_id, event.ts)
            open_phase(cursor, event, "running")
        elif etype == ev.VALIDATE:
            close(cursor, event.session_id, event.ts)
            open_phase(cursor, event, "validating")
        elif etype in (ev.COMMIT, ev.ABORT, ev.RESTART):
            close(cursor, event.session_id, event.ts)

    # close anything still open at the last observed timestamp (a run
    # that gave up on a session can leave its final block dangling)
    if slices or cursors:
        last_ts = max(
            (c.start for c in cursors.values() if c.phase is not None),
            default=None,
        )
        for session_id, cursor in sorted(cursors.items()):
            if cursor.phase is not None:
                end = cursor.start if last_ts is None else max(cursor.start, last_ts)
                close(cursor, session_id, end)
    return slices


class KeyContention:
    """The contention record of one key."""

    __slots__ = ("key", "blocks", "wait_time", "blockers", "aborts")

    def __init__(self, key: str) -> None:
        self.key = key
        self.blocks = 0
        self.wait_time = 0.0
        #: blocker txn id -> how many blocks it caused on this key
        self.blockers: TallyCounter = TallyCounter()
        #: taxonomy code -> aborts attributed to this key
        self.aborts: TallyCounter = TallyCounter()

    @property
    def score(self) -> Tuple[float, int, int]:
        """Hot-key ranking: wait time first, then blocks, then aborts."""
        return (self.wait_time, self.blocks, sum(self.aborts.values()))


class ContentionProfile:
    """The folded view of one trace: hot keys, phases, abort taxonomy."""

    def __init__(self) -> None:
        self.per_key: Dict[str, KeyContention] = {}
        self.phase_histograms: Dict[str, Histogram] = {
            phase: Histogram() for phase in PHASES
        }
        self.abort_codes: TallyCounter = TallyCounter()
        #: (code, key) pairs for attribution detail
        self.events = 0
        self.commits = 0
        self.aborts = 0
        self.slices: List[PhaseSlice] = []
        self.span_totals: Dict[str, float] = {}
        self.span_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[TraceEvent],
        spans: Iterable[Span] = (),
    ) -> "ContentionProfile":
        profile = cls()
        event_list = list(events)
        profile.events = len(event_list)
        for event in event_list:
            etype = event.etype
            if etype == ev.COMMIT:
                profile.commits += 1
            elif etype == ev.ABORT:
                code = event.code or ABORT_UNSPECIFIED
                profile.aborts += 1
                profile.abort_codes[code] += 1
                if event.key is not None:
                    profile._key(event.key).aborts[code] += 1
            elif etype == ev.BLOCK and event.key is not None:
                record = profile._key(event.key)
                record.blocks += 1
                for blocker in event.blockers:
                    record.blockers[blocker] += 1

        profile.slices = phase_slices(event_list)
        for phase_slice in profile.slices:
            histogram = profile.phase_histograms.get(phase_slice.phase)
            if histogram is not None:
                histogram.observe(phase_slice.duration)
            if (
                phase_slice.phase in ("blocked", "committing")
                and phase_slice.key is not None
            ):
                profile._key(phase_slice.key).wait_time += phase_slice.duration

        for span in spans:
            profile.span_totals[span.name] = (
                profile.span_totals.get(span.name, 0.0) + span.duration
            )
            profile.span_counts[span.name] = profile.span_counts.get(span.name, 0) + 1
        return profile

    def _key(self, key: str) -> KeyContention:
        record = self.per_key.get(key)
        if record is None:
            record = self.per_key[key] = KeyContention(key)
        return record

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def hot_keys(self, limit: int = 10) -> List[KeyContention]:
        """The most contended keys, by wait time then block count."""
        ranked = sorted(
            self.per_key.values(), key=lambda r: r.score, reverse=True
        )
        return ranked[:limit]

    def abort_summary(self) -> List[Tuple[str, int, str]]:
        """(code, count, description) rows, most frequent first."""
        return [
            (code, count, ABORT_REASONS.get(code, "unknown code"))
            for code, count in self.abort_codes.most_common()
        ]

    # ------------------------------------------------------------------
    # text rendering (the CLI's building blocks)
    # ------------------------------------------------------------------
    def render_hot_keys(self, limit: int = 10) -> str:
        rows = self.hot_keys(limit)
        if not rows:
            return "no contended keys (nothing ever blocked)"
        lines = [
            f"{'key':<20} {'blocks':>7} {'wait':>10} {'aborts':>7}  top blockers"
        ]
        for record in rows:
            blockers = ", ".join(
                f"T{txn}x{count}" for txn, count in record.blockers.most_common(3)
            )
            lines.append(
                f"{record.key:<20} {record.blocks:>7} {record.wait_time:>10.2f} "
                f"{sum(record.aborts.values()):>7}  {blockers}"
            )
        return "\n".join(lines)

    def render_abort_summary(self) -> str:
        rows = self.abort_summary()
        if not rows:
            return "no aborts"
        lines = [f"{'reason code':<24} {'count':>7}  description"]
        for code, count, description in rows:
            lines.append(f"{code:<24} {count:>7}  {description}")
        return "\n".join(lines)

    def render_phases(self) -> str:
        lines = [
            f"{'phase':<12} {'slices':>7} {'mean':>10} {'p95<=':>10} {'max':>10}"
        ]
        for phase in PHASES:
            histogram = self.phase_histograms[phase]
            maximum = histogram.max if histogram.max is not None else 0
            lines.append(
                f"{phase:<12} {histogram.count:>7} {histogram.mean:>10.2f} "
                f"{histogram.quantile(0.95):>10g} {maximum:>10g}"
            )
        return "\n".join(lines)

    def render_spans(self) -> str:
        if not self.span_totals:
            return ""
        lines = [f"{'span':<20} {'count':>7} {'total s':>10}"]
        for name in sorted(self.span_totals):
            lines.append(
                f"{name:<20} {self.span_counts[name]:>7} "
                f"{self.span_totals[name]:>10.4f}"
            )
        return "\n".join(lines)

    def render_summary(self) -> str:
        parts = [
            f"events={self.events} commits={self.commits} aborts={self.aborts}",
            "",
            "== hot keys ==",
            self.render_hot_keys(),
            "",
            "== abort taxonomy ==",
            self.render_abort_summary(),
            "",
            "== phase latencies ==",
            self.render_phases(),
        ]
        spans = self.render_spans()
        if spans:
            parts += ["", "== wall-clock spans ==", spans]
        return "\n".join(parts)


def render_timeline(
    events: Iterable[TraceEvent],
    session_id: Optional[int] = None,
    limit: Optional[int] = None,
) -> str:
    """A per-transaction timeline: one line per event, in trace order."""
    lines: List[str] = []
    for event in events:
        if session_id is not None and event.session_id != session_id:
            continue
        if limit is not None and len(lines) >= limit:
            lines.append("... (truncated)")
            break
        txn = f"T{event.txn_id}" if event.txn_id is not None else "-"
        parts = [
            f"[{event.ts:>10}]",
            f"s{event.session_id:<4}",
            f"{txn:<6}",
            f"a{event.attempt:<3}",
            f"{event.etype:<9}",
        ]
        if event.key is not None:
            parts.append(f"key={event.key}")
        if event.blockers:
            parts.append(f"on={','.join(f'T{b}' for b in event.blockers)}")
        if event.code:
            parts.append(f"code={event.code}")
        if event.detail:
            parts.append(f"({event.detail})")
        lines.append(" ".join(parts))
    return "\n".join(lines)
