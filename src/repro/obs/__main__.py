"""Trace-analysis CLI: capture engine traces and render reports.

Two subcommands::

    # run a workload under any registered protocol with tracing on and
    # save the event stream (JSON-lines, deterministic per seed)
    python -m repro.obs capture --protocol occ --seed 1 --out occ.trace

    # fold a saved trace into reports, optionally exporting Perfetto JSON
    python -m repro.obs report occ.trace --hot-keys 10 --timeline \
        --chrome occ.trace.json

``report`` prints the contention summary (hot keys + abort taxonomy +
phase latencies) by default; ``--timeline`` adds the per-transaction
event timeline, ``--chrome PATH`` writes Chrome trace-event JSON that
https://ui.perfetto.dev renders as a per-session track view.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.chrome import chrome_trace
from repro.obs.profile import ContentionProfile, render_timeline
from repro.obs.trace import TraceRecorder


def _capture(args: argparse.Namespace) -> int:
    # imported here so `report` works even if the engine ever grows
    # heavier imports; the CLI's analysis half only needs the obs layer
    from repro.engine.protocols.registry import get_entry
    from repro.engine.runtime import run_batch
    from repro.engine.storage import DataStore
    from repro.engine.workloads import (
        hotspot_queue_workload,
        zipfian_hotspot_workload,
    )

    entry = get_entry(args.protocol)
    if args.workload == "hotspot":
        initial, specs = hotspot_queue_workload(
            num_transactions=args.transactions,
            ops_per_transaction=args.ops,
            seed=args.seed,
        )
    else:
        initial, specs = zipfian_hotspot_workload(
            num_transactions=args.transactions, seed=args.seed
        )

    recorder = TraceRecorder()
    result = run_batch(
        entry.factory,
        DataStore(initial),
        specs,
        seed=args.seed,
        wait_policy=args.wait_policy,
        tracer=recorder,
    )
    recorder.save(args.out)
    print(
        f"captured {len(recorder.events)} events from {args.protocol} "
        f"({result.committed}/{len(specs)} committed) -> {args.out}"
    )
    return 0


def _report(args: argparse.Namespace) -> int:
    recorder = TraceRecorder.load(args.trace)
    profile = ContentionProfile.from_events(recorder.events, recorder.spans)

    print(f"trace: {args.trace}")
    print(f"events={profile.events} commits={profile.commits} aborts={profile.aborts}")
    print()
    print("== hot keys ==")
    print(profile.render_hot_keys(args.hot_keys))
    print()
    print("== abort taxonomy ==")
    print(profile.render_abort_summary())
    print()
    print("== phase latencies ==")
    print(profile.render_phases())
    spans = profile.render_spans()
    if spans:
        print()
        print("== wall-clock spans ==")
        print(spans)

    if args.timeline:
        print()
        print("== timeline ==")
        print(
            render_timeline(
                recorder.events, session_id=args.session, limit=args.limit
            )
        )

    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(recorder.events, recorder.spans), handle)
        print()
        print(f"chrome trace-event JSON -> {args.chrome} (open in ui.perfetto.dev)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="capture and analyse engine traces",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    capture = subparsers.add_parser(
        "capture", help="run a traced workload and save the event stream"
    )
    capture.add_argument(
        "--protocol", default="strict-2pl", help="registered protocol name"
    )
    capture.add_argument(
        "--workload",
        choices=("hotspot", "zipfian"),
        default="hotspot",
        help="workload shape (hotspot = scheduler-bench hot-key queue)",
    )
    capture.add_argument("--transactions", type=int, default=200)
    capture.add_argument("--ops", type=int, default=16)
    capture.add_argument("--seed", type=int, default=0)
    capture.add_argument(
        "--wait-policy", choices=("event", "polling"), default="event"
    )
    capture.add_argument("--out", default="engine.trace", help="output path")
    capture.set_defaults(func=_capture)

    report = subparsers.add_parser(
        "report", help="render reports from a saved trace"
    )
    report.add_argument("trace", help="path to a saved trace (JSON-lines)")
    report.add_argument(
        "--hot-keys", type=int, default=10, help="rows in the hot-key table"
    )
    report.add_argument(
        "--timeline", action="store_true", help="print the event timeline"
    )
    report.add_argument(
        "--session", type=int, default=None, help="restrict timeline to one session"
    )
    report.add_argument(
        "--limit", type=int, default=None, help="max timeline lines"
    )
    report.add_argument(
        "--chrome", default=None, help="write Chrome trace-event JSON here"
    )
    report.set_defaults(func=_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
