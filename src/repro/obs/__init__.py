"""Engine observability: structured tracing, contention profiling, export.

The observability layer makes the engine's execution history a
first-class artifact, in three pieces:

* :mod:`repro.obs.trace` — typed :class:`TraceEvent` records, the
  :class:`Tracer` hook interface the kernel and front-ends emit through
  (with a zero-overhead :class:`NullTracer` default mirroring
  :class:`~repro.engine.metrics.NullMetrics`), and the capturing
  :class:`TraceRecorder`.  Event timestamps are logical (scheduler
  round / virtual time), so traces are deterministic per seed.
* :mod:`repro.obs.profile` — folds an event stream into per-key hot-key
  contention reports (wait time, blockers, abort attribution by
  taxonomy code) and per-phase latency histograms.
* :mod:`repro.obs.chrome` — exports Chrome trace-event JSON viewable in
  Perfetto (``chrome://tracing``).

``python -m repro.obs`` is the analysis CLI over captured traces.
"""

# .trace must be imported before .profile: the kernel imports
# repro.obs.trace, which executes this package __init__ mid-way through
# repro.engine's own import; .trace is stdlib-only and safe at that
# point, while .profile reaches back into repro.engine.metrics — legal
# only because metrics is fully imported before the kernel is, and
# .trace before .profile here.
from repro.obs.trace import (
    NULL_TRACER,
    EVENT_TYPES,
    NullTracer,
    Span,
    TraceEvent,
    TraceRecorder,
    Tracer,
    load_events,
)
from repro.obs.profile import ContentionProfile, PhaseSlice, phase_slices
from repro.obs.chrome import chrome_trace

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "TraceRecorder",
    "Span",
    "EVENT_TYPES",
    "load_events",
    "ContentionProfile",
    "PhaseSlice",
    "phase_slices",
    "chrome_trace",
]
