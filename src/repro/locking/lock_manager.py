"""The lock-respecting scheduler (LRS) and locking-policy performance (Section 5.1-5.2).

After a locking policy has transformed ``T`` into ``L(T)``, concurrency
control is entrusted to a "very simplistic scheduler" that sees only the
lock/unlock steps and the lock integrity constraints: the
*lock-respecting scheduler*.  A request stream passes without delay iff
every ``lock`` step finds its variable unlocked when it arrives; other
streams are delayed (and, on deadlock, rearranged into a serial
execution, which is always lock-feasible because locked transactions are
well nested).

Performance of a locking policy is measured, as for ordinary schedulers,
by the set of schedules it passes without delay — but compared on the
original system ``T``, i.e. with the lock/unlock steps projected away
(Section 5.2).  :func:`policy_performance` computes that set exhaustively
for small systems.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.instance import SystemInstance
from repro.core.schedules import (
    Schedule,
    all_schedules,
    serial_schedule,
    validate_schedule,
)
from repro.core.schedulers import Scheduler, first_appearance_serial_order
from repro.core.semantics import Interpretation
from repro.core.transactions import StepRef
from repro.locking.policies import (
    AccessAction,
    LockAction,
    LockedTransactionSystem,
    UnlockAction,
    LOCKED,
    UNLOCKED,
)


class LockTable:
    """The lock manager's state: which locking variable is currently held, and by whom."""

    def __init__(self) -> None:
        self._holder: Dict[str, int] = {}

    def is_free(self, variable: str) -> bool:
        return variable not in self._holder

    def holder(self, variable: str) -> Optional[int]:
        """The transaction currently holding ``variable`` (``None`` if free)."""
        return self._holder.get(variable)

    def acquire(self, variable: str, transaction: int) -> bool:
        """Try to acquire; returns ``False`` (and changes nothing) if held."""
        if variable in self._holder:
            return False
        self._holder[variable] = transaction
        return True

    def release(self, variable: str, transaction: int) -> bool:
        """Release a lock held by ``transaction``; ``False`` if not held by it."""
        if self._holder.get(variable) != transaction:
            return False
        del self._holder[variable]
        return True

    def held_by(self, transaction: int) -> Set[str]:
        """All locking variables currently held by a transaction."""
        return {v for v, t in self._holder.items() if t == transaction}

    def __len__(self) -> int:
        return len(self._holder)


def is_lock_feasible(
    locked_system: LockedTransactionSystem, schedule: Sequence[StepRef]
) -> bool:
    """Whether a schedule of ``L(T)`` never hits a lock conflict.

    Equivalently (given well-nested locked transactions): executing the
    schedule under the lock semantics never drives a locking variable to
    the error value, so the final state satisfies the lock integrity
    constraints and the schedule is in ``C(L(T))``.
    """
    table = LockTable()
    for ref in schedule:
        action = locked_system.action(ref)
        if isinstance(action, LockAction):
            if not table.acquire(action.variable, ref.transaction):
                return False
        elif isinstance(action, UnlockAction):
            if not table.release(action.variable, ref.transaction):
                return False
    return True


def lock_feasible_schedules(
    locked_system: LockedTransactionSystem,
) -> List[Schedule]:
    """All complete schedules of ``L(T)`` with no lock conflict (small systems only).

    Enumeration prunes infeasible prefixes, so it is far cheaper than
    filtering ``H(L(T))`` after the fact.
    """
    fmt = locked_system.format
    n = len(fmt)
    results: List[Schedule] = []

    def extend(
        counters: Tuple[int, ...],
        prefix: Tuple[StepRef, ...],
        table: Dict[str, int],
    ) -> None:
        if all(counters[i] == fmt[i] for i in range(n)):
            results.append(prefix)
            return
        for i in range(n):
            if counters[i] >= fmt[i]:
                continue
            ref = StepRef(i + 1, counters[i] + 1)
            action = locked_system.action(ref)
            new_table = table
            if isinstance(action, LockAction):
                if action.variable in table:
                    continue  # lock conflict: prune
                new_table = dict(table)
                new_table[action.variable] = i + 1
            elif isinstance(action, UnlockAction):
                if table.get(action.variable) != i + 1:
                    continue  # would be a lock error: prune
                new_table = dict(table)
                del new_table[action.variable]
            new_counters = counters[:i] + (counters[i] + 1,) + counters[i + 1 :]
            extend(new_counters, prefix + (ref,), new_table)

    extend(tuple(0 for _ in fmt), (), {})
    return results


def policy_output_schedules(
    locked_system: LockedTransactionSystem,
) -> Set[Tuple[StepRef, ...]]:
    """The lock-feasible schedules of ``L(T)`` projected onto the original steps.

    This is the Section 5.2 performance measure of a locking policy: the
    set of request orderings of ``T`` that the lock-respecting scheduler
    can pass without any delay (for *some* placement of the inserted
    lock/unlock requests).
    """
    return {
        locked_system.project_schedule(s)
        for s in lock_feasible_schedules(locked_system)
    }


def policy_performance(locked_system: LockedTransactionSystem) -> List[Schedule]:
    """Like :func:`policy_output_schedules` but returned as a sorted list."""
    return sorted(
        policy_output_schedules(locked_system),
        key=lambda s: tuple(ref.as_tuple() for ref in s),
    )


class LockRespectingScheduler(Scheduler):
    """The LRS: the optimal scheduler for the lock-only level of information.

    Its world is the locked system ``L(T)``: it sees lock/unlock steps and
    the lock integrity constraints, nothing else.  Its fixpoint set is the
    set of lock-feasible schedules of ``L(T)``; rejected histories are
    executed with the minimum delays a greedy lock manager would impose
    (blocked transactions wait; on deadlock the remaining work is
    serialised by first appearance).
    """

    def __init__(
        self,
        locked_system: LockedTransactionSystem,
        data_interpretation: Optional[Interpretation] = None,
        instance: Optional[SystemInstance] = None,
    ) -> None:
        self.locked_system = locked_system
        if instance is None:
            instance = locked_system.as_instance(data_interpretation)
        super().__init__(instance)

    def accepts(self, history: Sequence[StepRef]) -> bool:
        return is_lock_feasible(self.locked_system, history)

    def reschedule(self, history: Sequence[StepRef]) -> Schedule:
        """Greedy lock-manager execution of a conflicting history.

        Requests are granted in arrival order when possible; a transaction
        whose request cannot be granted blocks, and its subsequent
        requests queue behind it.  Unlocks wake blocked transactions.  If
        a deadlock prevents the greedy execution from completing, the
        whole history is instead serialised by first appearance — always
        lock-feasible because locked transactions are well nested.
        """
        history = validate_schedule(self.system, history)
        pending: Dict[int, List[StepRef]] = {}
        for ref in history:
            pending.setdefault(ref.transaction, []).append(ref)

        table = LockTable()
        executed: List[StepRef] = []
        cursor: Dict[int, int] = {i: 0 for i in pending}

        def try_execute(ref: StepRef) -> bool:
            action = self.locked_system.action(ref)
            if isinstance(action, LockAction):
                return table.acquire(action.variable, ref.transaction)
            if isinstance(action, UnlockAction):
                return table.release(action.variable, ref.transaction)
            return True

        progressed = True
        while progressed:
            progressed = False
            for ref in history:
                txn = ref.transaction
                queue = pending[txn]
                if cursor[txn] >= len(queue):
                    continue
                next_ref = queue[cursor[txn]]
                if next_ref != ref:
                    continue  # not this transaction's next request yet
                if try_execute(next_ref):
                    executed.append(next_ref)
                    cursor[txn] += 1
                    progressed = True
            # loop again: unlock steps executed this round may unblock others

        if len(executed) == len(history):
            return tuple(executed)
        # Deadlock: fall back to the first-appearance serial schedule.
        return super().reschedule(history)


def lrs_fixpoint_size(locked_system: LockedTransactionSystem) -> int:
    """``|P|`` of the LRS on ``L(T)`` — the number of lock-feasible schedules."""
    return len(lock_feasible_schedules(locked_system))
