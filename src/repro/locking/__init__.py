"""Locking as a concurrency-control primitive (Section 5 of the paper).

A *locking policy* ``L`` maps an ordinary transaction system ``T`` to a
*locked transaction system* ``L(T)``: the same steps, plus well-nested
``lock X`` / ``unlock X`` steps over a set of locking variables, with the
fixed lock/unlock semantics and integrity constraints "all locks are 0".
Concurrency control is then entrusted to the *lock-respecting scheduler*
(LRS), which sees only the locking steps and the lock integrity
constraints.

This package provides:

* the locked-transaction-system representation and policy framework
  (:mod:`repro.locking.policies`),
* the two-phase locking policy 2PL of Figure 2, the strictly better
  separable variant 2PL' of Figure 5, and the tree-locking policy for
  structured data (:mod:`repro.locking.two_phase`,
  :mod:`repro.locking.tree_locking`),
* the lock-respecting scheduler and the projection of its output set back
  onto schedules of ``T`` — the performance measure for locking policies
  (:mod:`repro.locking.lock_manager`),
* the geometric methodology of Section 5.3: progress space, forbidden
  blocks, deadlock regions, homotopy to serial schedules, and the
  connectivity view of 2PL's correctness (:mod:`repro.locking.geometry`).
"""

from repro.locking.policies import (
    Action,
    LockAction,
    UnlockAction,
    AccessAction,
    LockedTransaction,
    LockedTransactionSystem,
    LockingPolicy,
    is_well_formed,
    is_two_phase,
    is_well_nested,
)
from repro.locking.two_phase import (
    TwoPhaseLockingPolicy,
    TwoPhasePrimePolicy,
    NoLockingPolicy,
    two_phase_lock,
    two_phase_prime_lock,
)
from repro.locking.tree_locking import TreeLockingPolicy
from repro.locking.lock_manager import (
    LockRespectingScheduler,
    LockTable,
    lock_feasible_schedules,
    policy_output_schedules,
    policy_performance,
)
from repro.locking.geometry import (
    Rectangle,
    ProgressSpace,
    progress_space,
    homotopic_to_serial,
    schedules_homotopic_to_serial,
)

__all__ = [
    "Action",
    "LockAction",
    "UnlockAction",
    "AccessAction",
    "LockedTransaction",
    "LockedTransactionSystem",
    "LockingPolicy",
    "is_well_formed",
    "is_two_phase",
    "is_well_nested",
    "TwoPhaseLockingPolicy",
    "TwoPhasePrimePolicy",
    "NoLockingPolicy",
    "two_phase_lock",
    "two_phase_prime_lock",
    "TreeLockingPolicy",
    "LockRespectingScheduler",
    "LockTable",
    "lock_feasible_schedules",
    "policy_output_schedules",
    "policy_performance",
    "Rectangle",
    "ProgressSpace",
    "progress_space",
    "homotopic_to_serial",
    "schedules_homotopic_to_serial",
]
