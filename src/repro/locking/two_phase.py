"""Two-phase locking and its variants (Sections 5.2 and 5.4).

* :class:`TwoPhaseLockingPolicy` — the 2PL policy of [Eswaran et al. 76]
  as described in Section 5.2: associate a locking variable with every
  data variable, place locks as late and unlocks as early as possible
  subject to "no lock after the first unlock" (Figure 2).
* :class:`TwoPhasePrimePolicy` — the 2PL' variant of Section 5.4
  (Figure 5): two-phase lock every variable except a distinguished one
  ``x``, release ``x``'s lock right after its last usage, and use an
  auxiliary lock ``X'`` to remain correct.  2PL' is correct, separable,
  and strictly better than 2PL — the paper's witness that 2PL is not
  optimal among separable policies once a variable may be distinguished.
* :class:`TwoPhaseExceptExclusivePolicy` — the "trivial reason" 2PL is
  not optimal as a locking policy: variables accessed by only one
  transaction need no locks at all.  This policy uses global knowledge of
  the system (it is not separable).
* :class:`NoLockingPolicy` — inserts no locks; the incorrect baseline the
  benchmarks use to show what locking is buying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.transactions import Step, Transaction, TransactionSystem
from repro.locking.policies import (
    AccessAction,
    Action,
    LockAction,
    LockedTransaction,
    LockedTransactionSystem,
    LockingPolicy,
    UnlockAction,
    default_lock_name,
)


def _first_access_order(transaction: Transaction) -> List[str]:
    """Variables of the transaction ordered by their first access."""
    seen: List[str] = []
    for step in transaction.steps:
        if step.variable not in seen:
            seen.append(step.variable)
    return seen


def two_phase_lock(
    transaction: Transaction,
    lock_variables: Optional[Set[str]] = None,
    lock_name=default_lock_name,
) -> LockedTransaction:
    """Apply the 2PL transformation of Figure 2 to a single transaction.

    ``lock_variables`` restricts locking to a subset of the transaction's
    variables (all of them by default); ``lock_name`` maps a data variable
    to its lock-bit name.

    Placement follows the paper's rule (b): each lock is inserted
    immediately before the variable's first access (as late as possible),
    and each unlock immediately after the later of the variable's last
    access and the transaction's final lock step (as early as possible
    while keeping the two-phase rule (a)).
    """
    variables = set(transaction.variable_set())
    if lock_variables is not None:
        variables &= set(lock_variables)

    # Pass 1: locks immediately before first accesses.
    actions: List[Action] = []
    locked_so_far: Set[str] = set()
    for j, step in enumerate(transaction.steps, start=1):
        if step.variable in variables and step.variable not in locked_so_far:
            actions.append(LockAction(lock_name(step.variable)))
            locked_so_far.add(step.variable)
        actions.append(AccessAction(j, step))

    # Pass 2: unlocks after max(last access, last lock) per variable.
    last_lock_index = max(
        (k for k, a in enumerate(actions) if isinstance(a, LockAction)),
        default=-1,
    )
    last_access_index: Dict[str, int] = {}
    for k, action in enumerate(actions):
        if isinstance(action, AccessAction) and action.step.variable in variables:
            last_access_index[action.step.variable] = k

    unlock_after: Dict[int, List[str]] = {}
    for variable in _first_access_order(transaction):
        if variable not in variables:
            continue
        position = max(last_access_index[variable], last_lock_index)
        unlock_after.setdefault(position, []).append(variable)

    result: List[Action] = []
    for k, action in enumerate(actions):
        result.append(action)
        for variable in unlock_after.get(k, []):
            result.append(UnlockAction(lock_name(variable)))
    return LockedTransaction(result, name=transaction.name)


class TwoPhaseLockingPolicy(LockingPolicy):
    """The two-phase locking policy 2PL (Figure 2)."""

    name = "2PL"
    separable = True

    def __init__(self, lock_name=default_lock_name) -> None:
        self.lock_name = lock_name

    def lock_transaction(
        self,
        transaction: Transaction,
        index: int,
        system: Optional[TransactionSystem] = None,
    ) -> LockedTransaction:
        return two_phase_lock(transaction, lock_name=self.lock_name)


def two_phase_prime_lock(
    transaction: Transaction,
    distinguished: str,
    lock_name=default_lock_name,
    auxiliary_suffix: str = "'",
) -> LockedTransaction:
    """Apply the 2PL' transformation of Section 5.4 / Figure 5 to one transaction.

    Rules (for the distinguished variable ``x``, auxiliary lock ``X'``):

    1. two-phase lock every variable except ``x``;
    2. ``x`` itself is still locked before its first usage, but unlocked
       right after its last usage (earlier than 2PL would allow);
    3. after the first usage of ``x``: insert the pair
       ``lock X' ; unlock X'``;
    4. after the last usage of ``x``: insert ``lock X'`` followed by
       ``unlock X``;
    5. after the transaction's last lock step: insert ``unlock X'``.

    Transactions that never touch ``x`` are locked exactly as by 2PL.
    """
    if distinguished not in transaction.variable_set():
        return two_phase_lock(transaction, lock_name=lock_name)

    aux = lock_name(distinguished) + auxiliary_suffix
    x_lock = lock_name(distinguished)

    # Two-phase lock everything except the distinguished variable first.
    others = transaction.variable_set() - {distinguished}
    base = two_phase_lock(transaction, lock_variables=others, lock_name=lock_name)

    access_positions = [
        k
        for k, action in enumerate(base.actions)
        if isinstance(action, AccessAction) and action.step.variable == distinguished
    ]
    first_access = access_positions[0]
    last_access = access_positions[-1]

    actions: List[Action] = []
    for k, action in enumerate(base.actions):
        if k == first_access:
            actions.append(LockAction(x_lock))
        actions.append(action)
        if k == first_access:
            actions.append(LockAction(aux))
            actions.append(UnlockAction(aux))
        if k == last_access:
            actions.append(LockAction(aux))
            actions.append(UnlockAction(x_lock))

    # Rule 5: unlock the auxiliary variable after the final lock step.
    last_lock_index = max(
        k for k, action in enumerate(actions) if isinstance(action, LockAction)
    )
    actions.insert(last_lock_index + 1, UnlockAction(aux))

    # Single-usage special case: first == last inserts two lock-aux pulses
    # back to back (lock aux, unlock aux, lock aux, unlock x ... unlock aux)
    # which is well-nested and correct; nothing further to adjust.
    return LockedTransaction(actions, name=transaction.name)


class TwoPhasePrimePolicy(LockingPolicy):
    """The 2PL' policy: 2PL with one distinguished variable released early."""

    separable = True

    def __init__(
        self,
        distinguished: str,
        lock_name=default_lock_name,
        auxiliary_suffix: str = "'",
    ) -> None:
        self.distinguished = distinguished
        self.lock_name = lock_name
        self.auxiliary_suffix = auxiliary_suffix
        self.name = f"2PL'[{distinguished}]"

    def lock_transaction(
        self,
        transaction: Transaction,
        index: int,
        system: Optional[TransactionSystem] = None,
    ) -> LockedTransaction:
        return two_phase_prime_lock(
            transaction,
            self.distinguished,
            lock_name=self.lock_name,
            auxiliary_suffix=self.auxiliary_suffix,
        )


def exclusive_variables(system: TransactionSystem) -> Set[str]:
    """Variables accessed by exactly one transaction of the system."""
    return {
        v
        for v in system.variables()
        if len(system.transactions_accessing(v)) == 1
    }


class TwoPhaseExceptExclusivePolicy(LockingPolicy):
    """2PL applied only to variables shared by two or more transactions.

    This is the Section 5.4 counterexample showing 2PL is not optimal as
    a locking policy: a variable touched by a single transaction needs no
    lock, and skipping it can only enlarge the set of delay-free
    schedules while remaining correct.  The policy inspects the whole
    system to find the exclusive variables, so it is *not* separable.
    """

    name = "2PL-minus-exclusive"
    separable = False

    def __init__(self, lock_name=default_lock_name) -> None:
        self.lock_name = lock_name

    def transform(self, system: TransactionSystem) -> LockedTransactionSystem:
        shared = system.variables() - exclusive_variables(system)
        locked = [
            two_phase_lock(txn, lock_variables=shared, lock_name=self.lock_name)
            for txn in system.transactions
        ]
        return LockedTransactionSystem(system, locked, policy_name=self.name)


class NoLockingPolicy(LockingPolicy):
    """The degenerate policy that inserts no locks at all.

    Useful as a baseline: the lock-respecting scheduler then passes every
    schedule, so any consistency violations of the underlying system show
    up undamped.
    """

    name = "no-locking"
    separable = True

    def lock_transaction(
        self,
        transaction: Transaction,
        index: int,
        system: Optional[TransactionSystem] = None,
    ) -> LockedTransaction:
        return LockedTransaction(
            [AccessAction(j, step) for j, step in enumerate(transaction.steps, start=1)],
            name=transaction.name,
        )
