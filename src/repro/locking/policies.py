"""Locked transaction systems and locking policies (Section 5.1).

A locked transaction system ``L(T)`` extends ``T`` with a set ``LV`` of
*locking variables* and additional ``lock X`` / ``unlock X`` steps with
the paper's fixed interpretation::

    lock X    means   X := 1 if X == 0 else -1
    unlock X  means   X := 0 if X == 1 else -1

and integrity constraints "every locking variable is 0".  All the
cleverness of a locking-based concurrency control lives in the policy
``L`` — the mapping from ordinary to locked transaction systems — after
which a trivially simple scheduler (the lock-respecting scheduler of
:mod:`repro.locking.lock_manager`) suffices.

This module defines the action/locked-transaction data model, structural
predicates (well-nestedness, well-formedness, the two-phase property,
separability), and the conversion of a locked system back into an
ordinary :class:`~repro.core.transactions.TransactionSystem` +
interpretation + integrity constraint so that the entire core theory
applies to locked systems unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.instance import SystemInstance
from repro.core.semantics import IntegrityConstraint, Interpretation
from repro.core.transactions import (
    Step,
    StepRef,
    Transaction,
    TransactionSystem,
    update_step,
)

#: Lock states, following the paper: 0 = unlocked, 1 = locked, -1 = error.
UNLOCKED, LOCKED, LOCK_ERROR = 0, 1, -1


class LockingError(ValueError):
    """Raised when a locked transaction system is structurally invalid."""


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LockAction:
    """A ``lock X`` step on locking variable ``X``."""

    variable: str

    def __str__(self) -> str:
        return f"lock {self.variable}"


@dataclass(frozen=True)
class UnlockAction:
    """An ``unlock X`` step on locking variable ``X``."""

    variable: str

    def __str__(self) -> str:
        return f"unlock {self.variable}"


@dataclass(frozen=True)
class AccessAction:
    """An original step of ``T`` carried over into ``L(T)``.

    ``original_step`` is the 1-based index of the step within its
    original transaction; ``step`` is the step's syntax.
    """

    original_step: int
    step: Step

    def __str__(self) -> str:
        return f"access {self.step.variable} (step {self.original_step})"


Action = Union[LockAction, UnlockAction, AccessAction]


# ----------------------------------------------------------------------
# Locked transactions and systems
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LockedTransaction:
    """One transaction of a locked transaction system: a sequence of actions."""

    actions: Tuple[Action, ...]
    name: Optional[str] = None

    def __init__(self, actions: Iterable[Action], name: Optional[str] = None) -> None:
        object.__setattr__(self, "actions", tuple(actions))
        object.__setattr__(self, "name", name)
        if not self.actions:
            raise LockingError("a locked transaction must have at least one action")

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __getitem__(self, index: int) -> Action:
        return self.actions[index]

    @property
    def lock_variables(self) -> Set[str]:
        """The locking variables this transaction locks or unlocks."""
        return {
            a.variable
            for a in self.actions
            if isinstance(a, (LockAction, UnlockAction))
        }

    @property
    def access_actions(self) -> List[AccessAction]:
        return [a for a in self.actions if isinstance(a, AccessAction)]

    def original_transaction(self) -> Transaction:
        """Recover the original (unlocked) transaction by dropping lock/unlock steps."""
        steps = [a.step for a in self.actions if isinstance(a, AccessAction)]
        return Transaction(steps, name=self.name)

    def lock_positions(self, variable: str) -> List[int]:
        """0-based positions of ``lock variable`` actions."""
        return [
            k
            for k, a in enumerate(self.actions)
            if isinstance(a, LockAction) and a.variable == variable
        ]

    def unlock_positions(self, variable: str) -> List[int]:
        """0-based positions of ``unlock variable`` actions."""
        return [
            k
            for k, a in enumerate(self.actions)
            if isinstance(a, UnlockAction) and a.variable == variable
        ]


@dataclass(frozen=True)
class LockedTransactionSystem:
    """A locked transaction system ``L(T)``.

    ``original`` is the transaction system being protected; ``locked``
    holds one :class:`LockedTransaction` per original transaction, in the
    same order.  The locking variables ``LV`` are whatever lock/unlock
    actions mention; they are kept disjoint from the original variable
    names by prefixing (callers normally use the default prefix ``"lock:"``
    supplied by the policies).
    """

    original: TransactionSystem
    locked: Tuple[LockedTransaction, ...]
    policy_name: str = "locked"

    def __init__(
        self,
        original: TransactionSystem,
        locked: Iterable[LockedTransaction],
        policy_name: str = "locked",
    ) -> None:
        object.__setattr__(self, "original", original)
        object.__setattr__(self, "locked", tuple(locked))
        object.__setattr__(self, "policy_name", policy_name)
        if len(self.locked) != original.num_transactions:
            raise LockingError(
                "locked system must have exactly one locked transaction per "
                "original transaction"
            )
        for i, (orig, lock_txn) in enumerate(
            zip(original.transactions, self.locked), start=1
        ):
            recovered = lock_txn.original_transaction()
            if recovered.variables != orig.variables:
                raise LockingError(
                    f"locked transaction {i} does not preserve the original steps: "
                    f"{recovered.variables} != {orig.variables}"
                )
        clash = self.lock_variables() & original.variables()
        if clash:
            raise LockingError(
                f"locking variables clash with data variables: {sorted(clash)}"
            )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.locked)

    def __iter__(self):
        return iter(self.locked)

    def __getitem__(self, index: int) -> LockedTransaction:
        return self.locked[index]

    @property
    def format(self) -> Tuple[int, ...]:
        """The format of ``L(T)`` (lengths include lock/unlock steps)."""
        return tuple(len(t) for t in self.locked)

    def lock_variables(self) -> Set[str]:
        """The set ``LV`` of locking variables."""
        result: Set[str] = set()
        for txn in self.locked:
            result |= txn.lock_variables
        return result

    def action(self, ref: StepRef) -> Action:
        """The action at position ``ref`` of the locked system (1-based)."""
        return self.locked[ref.transaction - 1].actions[ref.step - 1]

    def original_ref(self, ref: StepRef) -> Optional[StepRef]:
        """Map a locked-system step ref to the original step ref it carries.

        Returns ``None`` for lock/unlock steps.
        """
        act = self.action(ref)
        if isinstance(act, AccessAction):
            return StepRef(ref.transaction, act.original_step)
        return None

    def project_schedule(self, schedule: Sequence[StepRef]) -> Tuple[StepRef, ...]:
        """Remove lock/unlock steps from a schedule of ``L(T)``.

        The result is a schedule of the original system ``T`` — this is
        the comparison the paper uses to measure a locking policy against
        ordinary schedulers (Section 5.2).
        """
        projected = []
        for ref in schedule:
            original = self.original_ref(ref)
            if original is not None:
                projected.append(original)
        return tuple(projected)

    # ------------------------------------------------------------------
    # conversion back to the core model
    # ------------------------------------------------------------------
    def as_transaction_system(self) -> TransactionSystem:
        """``L(T)`` as an ordinary transaction system (locks become variables)."""
        transactions = []
        for txn in self.locked:
            steps = []
            for act in txn.actions:
                if isinstance(act, AccessAction):
                    steps.append(act.step)
                else:
                    steps.append(update_step(act.variable))
            transactions.append(Transaction(steps, name=txn.name))
        return TransactionSystem(
            transactions, name=f"{self.policy_name}({self.original.name})"
        )

    def lock_interpretation(
        self,
        data_interpretation: Optional[Interpretation] = None,
    ) -> Interpretation:
        """An interpretation for :meth:`as_transaction_system`.

        Lock/unlock steps get the paper's fixed semantics; data steps get
        the interpretations from ``data_interpretation`` when provided
        (matching the original system) and identity otherwise.  Lock
        variables start unlocked.
        """
        system = self.as_transaction_system()
        step_functions: Dict[StepRef, object] = {}
        initial: Dict[str, object] = {v: UNLOCKED for v in self.lock_variables()}

        if data_interpretation is not None:
            initial.update(dict(data_interpretation.initial_globals))
        else:
            initial.update({v: 0 for v in self.original.variables()})

        for i, txn in enumerate(self.locked, start=1):
            # Map from position in the locked transaction to how many local
            # variables (one per step so far) have been declared — needed to
            # pick the right argument for the lock semantics.
            for j, act in enumerate(txn.actions, start=1):
                ref = StepRef(i, j)
                if isinstance(act, LockAction):
                    def do_lock(*locals_values: object) -> int:
                        current = locals_values[-1]
                        return LOCKED if current == UNLOCKED else LOCK_ERROR

                    step_functions[ref] = do_lock
                elif isinstance(act, UnlockAction):
                    def do_unlock(*locals_values: object) -> int:
                        current = locals_values[-1]
                        return UNLOCKED if current == LOCKED else LOCK_ERROR

                    step_functions[ref] = do_unlock
                else:
                    if data_interpretation is not None:
                        original_ref = StepRef(i, act.original_step)
                        phi = data_interpretation.step_functions.get(original_ref)
                        if phi is not None:
                            # The locked transaction has extra local variables
                            # (one per lock/unlock step before this access);
                            # select only the locals corresponding to original
                            # accesses so phi sees the arity it expects.
                            access_positions = [
                                k
                                for k, a in enumerate(txn.actions[:j], start=1)
                                if isinstance(a, AccessAction)
                            ]

                            def adapted(
                                *locals_values: object,
                                _phi=phi,
                                _positions=tuple(access_positions),
                            ) -> object:
                                picked = [locals_values[p - 1] for p in _positions]
                                return _phi(*picked)

                            step_functions[ref] = adapted
        return Interpretation(
            system=system,
            step_functions=step_functions,
            initial_globals=initial,
            name=f"{self.policy_name}-semantics",
        )

    def lock_constraint(self) -> IntegrityConstraint:
        """The integrity constraints of ``L(T)``: every locking variable is 0."""
        lock_vars = tuple(sorted(self.lock_variables()))
        return IntegrityConstraint(
            lambda g, _lv=lock_vars: all(g[v] == UNLOCKED for v in _lv),
            "all locking variables are unlocked",
        )

    def as_instance(
        self, data_interpretation: Optional[Interpretation] = None
    ) -> SystemInstance:
        """``L(T)`` as a full :class:`SystemInstance` (the LRS's whole world)."""
        interpretation = self.lock_interpretation(data_interpretation)
        return SystemInstance(
            system=self.as_transaction_system(),
            interpretation=interpretation,
            constraint=self.lock_constraint(),
            consistent_states=(dict(interpretation.initial_globals),),
        )


# ----------------------------------------------------------------------
# Structural predicates
# ----------------------------------------------------------------------


def is_well_nested(transaction: LockedTransaction) -> bool:
    """Every lock is eventually unlocked, never unlocked before being locked.

    The paper requires lock/unlock steps to be "well-nested in the obvious
    sense": at each point a variable is locked at most once, unlock only
    follows a matching lock, and nothing is left locked at the end.
    """
    held: Set[str] = set()
    for action in transaction.actions:
        if isinstance(action, LockAction):
            if action.variable in held:
                return False
            held.add(action.variable)
        elif isinstance(action, UnlockAction):
            if action.variable not in held:
                return False
            held.discard(action.variable)
    return not held


def is_well_formed(
    transaction: LockedTransaction, lock_name: Optional[Mapping[str, str]] = None
) -> bool:
    """Every access of ``x`` is surrounded by a (lock X, unlock X) pair (Section 5.3).

    ``lock_name`` maps data variables to their lock-bit names; by default
    the policies' convention ``"lock:" + x`` is assumed.
    """
    if not is_well_nested(transaction):
        return False
    held: Set[str] = set()
    for action in transaction.actions:
        if isinstance(action, LockAction):
            held.add(action.variable)
        elif isinstance(action, UnlockAction):
            held.discard(action.variable)
        else:
            name = (
                lock_name[action.step.variable]
                if lock_name is not None
                else default_lock_name(action.step.variable)
            )
            if name not in held:
                return False
    return True


def is_two_phase(transaction: LockedTransaction) -> bool:
    """The two-phase property: no lock step after the first unlock step."""
    seen_unlock = False
    for action in transaction.actions:
        if isinstance(action, UnlockAction):
            seen_unlock = True
        elif isinstance(action, LockAction) and seen_unlock:
            return False
    return True


def default_lock_name(variable: str) -> str:
    """The conventional lock-bit name for a data variable."""
    return f"lock:{variable}"


# ----------------------------------------------------------------------
# Policy framework
# ----------------------------------------------------------------------


class LockingPolicy(abc.ABC):
    """A locking policy: a transformation from ``T`` to ``L(T)``.

    *Separable* policies (Section 5.4) transform the system one
    transaction at a time without looking at the others; such policies
    implement :meth:`lock_transaction` and inherit :meth:`transform`.
    Non-separable policies may override :meth:`transform` directly.
    """

    name: str = "locking-policy"

    #: Whether the policy is separable in the paper's sense.
    separable: bool = True

    def transform(self, system: TransactionSystem) -> LockedTransactionSystem:
        """Apply the policy to a whole transaction system."""
        locked = [
            self.lock_transaction(txn, index=i, system=system)
            for i, txn in enumerate(system.transactions, start=1)
        ]
        return LockedTransactionSystem(system, locked, policy_name=self.name)

    def lock_transaction(
        self,
        transaction: Transaction,
        index: int,
        system: Optional[TransactionSystem] = None,
    ) -> LockedTransaction:
        """Lock a single transaction (separable policies implement this)."""
        raise NotImplementedError

    def __call__(self, system: TransactionSystem) -> LockedTransactionSystem:
        return self.transform(system)
