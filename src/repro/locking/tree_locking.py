"""Tree locking for hierarchically structured data (Silberschatz & Kedem).

Section 5.4 notes that 2PL is optimal only among separable policies on
*unstructured* variables: the tree-locking schema of [Silberschatz and
Kedem 78] escapes the bound by assuming a hierarchical database.  We
include a tree-locking policy so the "structured data beats 2PL"
observation can be exercised: with a variable hierarchy, a transaction may
release a node's lock as soon as it has locked the children it still
needs, well before its two-phase point.

The protocol implemented here is the classical tree (hierarchical)
protocol specialised to the paper's straight-line transactions:

* a transaction's lockable variables are the tree nodes it accesses plus
  the nodes on the paths connecting them to their common ancestor (so
  every pair of consecutively needed nodes is connected through held
  locks);
* the first lock may be taken on any node; every subsequent lock on a
  node requires the node's parent to be currently held;
* each node is locked at most once and released as soon as neither the
  node itself nor any of its not-yet-locked descendants is still needed.

The resulting locked transactions are generally *not* two-phase, yet the
protocol guarantees serializability on tree-structured data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.transactions import Transaction, TransactionSystem
from repro.locking.policies import (
    AccessAction,
    Action,
    LockAction,
    LockedTransaction,
    LockedTransactionSystem,
    LockingPolicy,
    UnlockAction,
    default_lock_name,
)


class TreeStructureError(ValueError):
    """Raised when the supplied hierarchy is not a tree over the variables."""


class VariableTree:
    """A rooted tree over variable names.

    Built from a ``child -> parent`` mapping; the root is the unique
    variable with no parent.  Variables absent from the mapping are
    treated as isolated roots of their own one-node trees (a forest),
    which the protocol handles by treating each tree independently.
    """

    def __init__(self, parents: Dict[str, str]) -> None:
        self.parents = dict(parents)
        self._children: Dict[str, List[str]] = {}
        for child, parent in self.parents.items():
            if child == parent:
                raise TreeStructureError(f"variable {child!r} cannot be its own parent")
            self._children.setdefault(parent, []).append(child)
        # cycle check
        for start in self.parents:
            seen = {start}
            node = start
            while node in self.parents:
                node = self.parents[node]
                if node in seen:
                    raise TreeStructureError("the variable hierarchy contains a cycle")
                seen.add(node)

    def parent(self, variable: str) -> Optional[str]:
        return self.parents.get(variable)

    def children(self, variable: str) -> List[str]:
        return list(self._children.get(variable, []))

    def ancestors(self, variable: str) -> List[str]:
        """Ancestors from the variable's parent up to its root (inclusive)."""
        result = []
        node = variable
        while node in self.parents:
            node = self.parents[node]
            result.append(node)
        return result

    def path_to_root(self, variable: str) -> List[str]:
        return [variable] + self.ancestors(variable)

    def connecting_subtree(self, variables: Iterable[str]) -> Set[str]:
        """The union of root-paths of the given variables (a connected subtree)."""
        nodes: Set[str] = set()
        for variable in variables:
            nodes.update(self.path_to_root(variable))
        return nodes

    def depth(self, variable: str) -> int:
        return len(self.ancestors(variable))


class TreeLockingPolicy(LockingPolicy):
    """The tree protocol as a locking policy.

    Parameters
    ----------
    tree:
        Either a :class:`VariableTree` or a ``child -> parent`` mapping.
    lock_name:
        Mapping from variables to lock-bit names (paper convention by
        default).
    """

    separable = True

    def __init__(self, tree, lock_name=default_lock_name) -> None:
        self.tree = tree if isinstance(tree, VariableTree) else VariableTree(tree)
        self.lock_name = lock_name
        self.name = "tree-locking"

    def lock_transaction(
        self,
        transaction: Transaction,
        index: int,
        system: Optional[TransactionSystem] = None,
    ) -> LockedTransaction:
        needed = transaction.variable_set()
        lockable = self.tree.connecting_subtree(needed)
        # Acquisition order: root-to-leaf along the connecting subtree so
        # the "parent held when locking a child" rule is satisfied.
        by_depth = sorted(lockable, key=lambda v: (self.tree.depth(v), v))

        # Last step index (1-based) at which each lockable node is still
        # needed: a node is needed while it or any lockable descendant has
        # an access still ahead.
        last_needed: Dict[str, int] = {}
        for v in lockable:
            last = 0
            for j, step in enumerate(transaction.steps, start=1):
                if step.variable == v:
                    last = j
                elif step.variable in lockable and v in self.tree.ancestors(
                    step.variable
                ):
                    last = max(last, j)
            last_needed[v] = last

        actions: List[Action] = []
        # Lock the whole connecting subtree up front (root first).  For the
        # straight-line transactions of the paper this is the simplest
        # realisation of the protocol; early unlocking below is where the
        # non-two-phase freedom appears.
        for v in by_depth:
            actions.append(LockAction(self.lock_name(v)))
        released: Set[str] = set()
        for j, step in enumerate(transaction.steps, start=1):
            actions.append(AccessAction(j, step))
            for v in by_depth:
                if v in released:
                    continue
                if last_needed[v] <= j:
                    actions.append(UnlockAction(self.lock_name(v)))
                    released.add(v)
        for v in by_depth:
            if v not in released:
                actions.append(UnlockAction(self.lock_name(v)))
                released.add(v)
        return LockedTransaction(actions, name=transaction.name)


def chain_tree(variables: Sequence[str]) -> VariableTree:
    """A linear hierarchy ``v0 <- v1 <- v2 <- ...`` (v0 is the root)."""
    parents = {variables[i]: variables[i - 1] for i in range(1, len(variables))}
    return VariableTree(parents)
