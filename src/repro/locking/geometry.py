"""The geometry of locking (Section 5.3, Figures 3 and 4).

For two transactions, every state of joint progress is a point of the
two-dimensional *progress space* ``[0, L1] x [0, L2]``: coordinate ``i``
counts how many actions of (locked) transaction ``i`` have completed.
Locking forbids rectangular regions — the *blocks* — where both
transactions would simultaneously hold the same locking variable.  A
schedule corresponds to a monotone staircase path from the origin ``O``
to the finish point ``F``; it is lock-feasible exactly when its path
avoids every block.

The same picture explains three of the paper's claims:

* *Deadlock regions* (Figure 3): points from which every monotone path to
  ``F`` runs into a block.  A progress curve trapped there can never
  finish.
* *Serializability as homotopy* (Figure 4(b)/(c)): a lock-feasible
  schedule is serializable iff it can be transformed into a serial
  schedule by *elementary transformations* (adjacent swaps of steps of
  different transactions) without ever passing through a block — i.e.
  iff its path is homotopic to one of the two boundary (serial) paths in
  the block-punctured progress space.  Non-serializable schedules are the
  ones that *separate* blocks.
* *2PL's correctness* (Figure 4(d)): two-phase locking gives all blocks a
  common point (the phase-shift point), so the blocks can never be
  separated and every lock-feasible schedule is serializable.

Everything here is exact for two transactions (the paper's figures); the
block construction generalises to ``n`` transactions as pairwise
projections, which is what :func:`pairwise_progress_spaces` provides.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.schedules import Schedule, adjacent_swaps, is_serial, validate_schedule
from repro.core.transactions import StepRef
from repro.locking.lock_manager import is_lock_feasible, lock_feasible_schedules
from repro.locking.policies import (
    AccessAction,
    LockAction,
    LockedTransaction,
    LockedTransactionSystem,
    UnlockAction,
)


class GeometryError(ValueError):
    """Raised when the geometric analysis is applied to an unsupported system."""


@dataclass(frozen=True)
class Rectangle:
    """A closed axis-aligned rectangle ``[x_lo, x_hi] x [y_lo, y_hi]`` in progress space.

    ``variable`` records which locking variable the block protects.
    Coordinates are measured in completed actions of each transaction, so
    a transaction holds the lock at progress values ``lock_pos <= p <
    unlock_pos``; the *closed* rectangle ``[lock_pos, unlock_pos] x ...``
    is the paper's drawn block, while the forbidden *grid points* are the
    half-open version (see :meth:`forbids`).
    """

    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int
    variable: str = ""

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise GeometryError(f"degenerate rectangle: {self}")

    def contains(self, x: float, y: float) -> bool:
        """Whether the closed rectangle contains the point."""
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def forbids(self, x: int, y: int) -> bool:
        """Whether the grid point is forbidden (both transactions hold the lock)."""
        return self.x_lo <= x < self.x_hi and self.y_lo <= y < self.y_hi

    def intersects(self, other: "Rectangle") -> bool:
        """Whether the two closed rectangles share at least one point."""
        return (
            self.x_lo <= other.x_hi
            and other.x_lo <= self.x_hi
            and self.y_lo <= other.y_hi
            and other.y_lo <= self.y_hi
        )

    def intersection(self, other: "Rectangle") -> Optional["Rectangle"]:
        """The closed intersection rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rectangle(
            max(self.x_lo, other.x_lo),
            min(self.x_hi, other.x_hi),
            max(self.y_lo, other.y_lo),
            min(self.y_hi, other.y_hi),
            variable=f"{self.variable}&{other.variable}",
        )

    @property
    def area(self) -> int:
        return (self.x_hi - self.x_lo) * (self.y_hi - self.y_lo)


def _hold_interval(
    transaction: LockedTransaction, variable: str
) -> Optional[Tuple[int, int]]:
    """The progress interval ``[lock_pos, unlock_pos]`` during which ``variable`` is held.

    Positions count completed actions (1-based): after executing the
    ``lock`` action as its ``k``-th action the transaction's progress is
    ``k`` and the lock is held until progress reaches the position of the
    matching ``unlock``.  Returns ``None`` if the transaction never locks
    the variable.  Transactions that lock the same variable several times
    (e.g. the auxiliary lock of 2PL') are handled by
    :func:`_hold_intervals`.
    """
    intervals = _hold_intervals(transaction, variable)
    if not intervals:
        return None
    return intervals[0]


def _hold_intervals(
    transaction: LockedTransaction, variable: str
) -> List[Tuple[int, int]]:
    """All (lock, unlock) progress intervals of a variable within one transaction."""
    intervals: List[Tuple[int, int]] = []
    open_at: Optional[int] = None
    for position, action in enumerate(transaction.actions, start=1):
        if isinstance(action, LockAction) and action.variable == variable:
            open_at = position
        elif isinstance(action, UnlockAction) and action.variable == variable:
            if open_at is not None:
                intervals.append((open_at, position))
                open_at = None
    return intervals


@dataclass
class ProgressSpace:
    """The two-dimensional progress space of a two-transaction locked system."""

    locked_system: LockedTransactionSystem
    width: int
    height: int
    blocks: Tuple[Rectangle, ...]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_locked_system(
        cls, locked_system: LockedTransactionSystem
    ) -> "ProgressSpace":
        if len(locked_system) != 2:
            raise GeometryError(
                "the two-dimensional progress space requires exactly two transactions; "
                "use pairwise_progress_spaces for larger systems"
            )
        t1, t2 = locked_system[0], locked_system[1]
        blocks: List[Rectangle] = []
        shared = t1.lock_variables & t2.lock_variables
        for variable in sorted(shared):
            for (x_lo, x_hi), (y_lo, y_hi) in itertools.product(
                _hold_intervals(t1, variable), _hold_intervals(t2, variable)
            ):
                blocks.append(
                    Rectangle(x_lo, x_hi, y_lo, y_hi, variable=variable)
                )
        return cls(
            locked_system=locked_system,
            width=len(t1),
            height=len(t2),
            blocks=tuple(blocks),
        )

    # ------------------------------------------------------------------
    # point and path queries
    # ------------------------------------------------------------------
    @property
    def origin(self) -> Tuple[int, int]:
        return (0, 0)

    @property
    def finish(self) -> Tuple[int, int]:
        """The point ``F`` where both transactions have completed."""
        return (self.width, self.height)

    def grid_points(self) -> List[Tuple[int, int]]:
        return [
            (x, y) for x in range(self.width + 1) for y in range(self.height + 1)
        ]

    def is_forbidden(self, x: int, y: int) -> bool:
        """Whether the grid point lies inside some block (both hold a lock)."""
        return any(block.forbids(x, y) for block in self.blocks)

    def forbidden_points(self) -> Set[Tuple[int, int]]:
        return {p for p in self.grid_points() if self.is_forbidden(*p)}

    def path_of_schedule(self, schedule: Sequence[StepRef]) -> List[Tuple[int, int]]:
        """The staircase path (sequence of grid points) traced by a schedule of ``L(T)``."""
        schedule = validate_schedule(self.locked_system.format, schedule)
        x, y = 0, 0
        path = [(x, y)]
        for ref in schedule:
            if ref.transaction == 1:
                x += 1
            else:
                y += 1
            path.append((x, y))
        return path

    def schedule_feasible(self, schedule: Sequence[StepRef]) -> bool:
        """Whether the schedule's path avoids every block.

        Equivalent to :func:`repro.locking.lock_manager.is_lock_feasible`
        — the geometric and the operational views agree, which the test
        suite checks exhaustively.
        """
        return all(not self.is_forbidden(x, y) for x, y in self.path_of_schedule(schedule))

    # ------------------------------------------------------------------
    # safety / deadlock analysis
    # ------------------------------------------------------------------
    def safe_points(self) -> Set[Tuple[int, int]]:
        """Grid points from which some monotone path reaches ``F`` avoiding all blocks."""
        safe: Set[Tuple[int, int]] = set()
        for x in range(self.width, -1, -1):
            for y in range(self.height, -1, -1):
                if self.is_forbidden(x, y):
                    continue
                if (x, y) == self.finish:
                    safe.add((x, y))
                    continue
                right_ok = (x + 1, y) in safe
                up_ok = (x, y + 1) in safe
                if right_ok or up_ok:
                    safe.add((x, y))
        return safe

    def deadlock_region(self) -> Set[Tuple[int, int]]:
        """Grid points that are reachable, not forbidden, yet cannot reach ``F``.

        This is region ``D`` of Figure 3: a progress curve entering it is
        trapped (every continuation runs into a block).
        """
        safe = self.safe_points()
        reachable = self.reachable_points()
        return {
            p
            for p in self.grid_points()
            if p in reachable and not self.is_forbidden(*p) and p not in safe
        }

    def reachable_points(self) -> Set[Tuple[int, int]]:
        """Grid points reachable from the origin by monotone moves avoiding blocks."""
        reachable: Set[Tuple[int, int]] = set()
        if not self.is_forbidden(0, 0):
            reachable.add((0, 0))
        for x in range(self.width + 1):
            for y in range(self.height + 1):
                if (x, y) in reachable or self.is_forbidden(x, y):
                    continue
                if (x - 1, y) in reachable or (x, y - 1) in reachable:
                    reachable.add((x, y))
        return reachable

    def has_deadlock(self) -> bool:
        """Whether the locked system can deadlock (non-empty deadlock region)."""
        return bool(self.deadlock_region())

    def count_monotone_paths(self, avoid_blocks: bool = True) -> int:
        """Count monotone staircase paths from ``O`` to ``F``.

        With ``avoid_blocks=True`` this equals the number of lock-feasible
        schedules of ``L(T)``; with ``False`` it is the total number of
        schedules ``|H(L(T))|``.
        """
        counts: Dict[Tuple[int, int], int] = {}
        for x in range(self.width + 1):
            for y in range(self.height + 1):
                if avoid_blocks and self.is_forbidden(x, y):
                    counts[(x, y)] = 0
                    continue
                if x == 0 and y == 0:
                    counts[(x, y)] = 1
                    continue
                total = 0
                if x > 0:
                    total += counts[(x - 1, y)]
                if y > 0:
                    total += counts[(x, y - 1)]
                counts[(x, y)] = total
        return counts[self.finish]

    # ------------------------------------------------------------------
    # block structure: connectivity and the 2PL common point
    # ------------------------------------------------------------------
    def blocks_connected(self) -> bool:
        """Whether the union of the (closed) blocks is connected.

        An empty or single-block arrangement counts as connected.  The
        paper's correctness condition for a locking policy on two
        transactions is that the blocks cannot be separated by a path —
        i.e. their union is connected (so every feasible path is homotopic
        to a boundary path).
        """
        if len(self.blocks) <= 1:
            return True
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(self.blocks))}
        for i, j in itertools.combinations(range(len(self.blocks)), 2):
            if self.blocks[i].intersects(self.blocks[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.blocks)

    def common_point(self) -> Optional[Tuple[float, float]]:
        """A point contained in every block, if one exists (Figure 4(d)).

        For a 2PL-locked system the phase-shift point ``u = (u1, u2)`` —
        the progress values at which each transaction has acquired all its
        locks and released none — lies in every block, which is the
        geometric reason 2PL is correct.
        """
        if not self.blocks:
            return None
        x_lo = max(b.x_lo for b in self.blocks)
        x_hi = min(b.x_hi for b in self.blocks)
        y_lo = max(b.y_lo for b in self.blocks)
        y_hi = min(b.y_hi for b in self.blocks)
        if x_lo > x_hi or y_lo > y_hi:
            return None
        return (float(x_lo), float(y_lo))

    def phase_shift_point(self) -> Optional[Tuple[int, int]]:
        """The phase-shift point of a two-phase locked system (both coordinates).

        Coordinate ``i`` is the progress of transaction ``i`` just after
        its final lock step (all locks granted, none released).  Returns
        ``None`` when a transaction acquires no locks.
        """
        coordinates = []
        for txn in self.locked_system:
            lock_positions = [
                k
                for k, action in enumerate(txn.actions, start=1)
                if isinstance(action, LockAction)
            ]
            if not lock_positions:
                return None
            coordinates.append(max(lock_positions))
        return (coordinates[0], coordinates[1])

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def ascii_render(self, schedule: Optional[Sequence[StepRef]] = None) -> str:
        """A textual picture of the progress space (used by the examples).

        ``#`` marks forbidden points, ``D`` the deadlock region, ``*`` the
        path of the given schedule, ``.`` everything else; the origin is
        the lower-left corner.
        """
        deadlock = self.deadlock_region()
        path = set(self.path_of_schedule(schedule)) if schedule is not None else set()
        rows = []
        for y in range(self.height, -1, -1):
            row = []
            for x in range(self.width + 1):
                if (x, y) in path:
                    row.append("*")
                elif self.is_forbidden(x, y):
                    row.append("#")
                elif (x, y) in deadlock:
                    row.append("D")
                else:
                    row.append(".")
            rows.append(" ".join(row))
        return "\n".join(rows)


def progress_space(locked_system: LockedTransactionSystem) -> ProgressSpace:
    """Build the :class:`ProgressSpace` of a two-transaction locked system."""
    return ProgressSpace.from_locked_system(locked_system)


def pairwise_progress_spaces(
    locked_system: LockedTransactionSystem,
) -> Dict[Tuple[int, int], ProgressSpace]:
    """Progress spaces of every pair of transactions of a larger locked system.

    The exact condition for correctness in higher dimensions is "somewhat
    less trivial" (Section 5.3); the pairwise projections are the
    standard conservative view and are what the benchmarks visualise.
    """
    spaces: Dict[Tuple[int, int], ProgressSpace] = {}
    for i, j in itertools.combinations(range(1, len(locked_system) + 1), 2):
        restricted = LockedTransactionSystem(
            original=_restrict_system(locked_system, (i, j)),
            locked=(locked_system[i - 1], locked_system[j - 1]),
            policy_name=locked_system.policy_name,
        )
        spaces[(i, j)] = ProgressSpace.from_locked_system(restricted)
    return spaces


def _restrict_system(locked_system, indices: Tuple[int, int]):
    from repro.core.transactions import TransactionSystem

    return TransactionSystem(
        tuple(locked_system.original.transactions[i - 1] for i in indices),
        name=f"{locked_system.original.name}|{indices}",
    )


# ----------------------------------------------------------------------
# Homotopy: serializability by elementary transformations (Figure 4(b))
# ----------------------------------------------------------------------


def schedules_homotopic_to_serial(
    locked_system: LockedTransactionSystem,
) -> Set[Schedule]:
    """All lock-feasible schedules homotopic to some serial schedule.

    Computed by a single breadth-first search that starts from every serial
    schedule and applies elementary transformations while staying inside
    the lock-feasible set.  Far cheaper than calling
    :func:`homotopic_to_serial` per schedule when a whole system is being
    classified (the exhaustive experiments do exactly that).
    """
    from repro.core.schedules import all_serial_schedules

    fmt = locked_system.format
    feasible = set(lock_feasible_schedules(locked_system))
    frontier: deque = deque(
        s for s in all_serial_schedules(fmt) if s in feasible
    )
    reached: Set[Schedule] = set(frontier)
    while frontier:
        current = frontier.popleft()
        for neighbour in adjacent_swaps(fmt, current):
            if neighbour in reached or neighbour not in feasible:
                continue
            reached.add(neighbour)
            frontier.append(neighbour)
    return reached


def homotopic_to_serial(
    locked_system: LockedTransactionSystem,
    schedule: Sequence[StepRef],
    max_expansions: int = 200_000,
) -> bool:
    """Whether a lock-feasible schedule can be deformed into a serial schedule.

    The deformation moves are *elementary transformations*: interchanges
    of neighbouring steps belonging to different transactions, restricted
    so that every intermediate schedule remains lock-feasible (its path
    never passes through a forbidden block).  The paper's claim — checked
    exhaustively in the test suite — is that a schedule of a well-formed
    locked system is serializable iff it is homotopic to a serial
    schedule in this sense.
    """
    fmt = locked_system.format
    start = validate_schedule(fmt, schedule)
    if not is_lock_feasible(locked_system, start):
        raise GeometryError("homotopy is only defined for lock-feasible schedules")
    if is_serial(fmt, start):
        return True
    seen: Set[Schedule] = {start}
    frontier: deque = deque([start])
    expansions = 0
    while frontier:
        current = frontier.popleft()
        for neighbour in adjacent_swaps(fmt, current):
            if neighbour in seen:
                continue
            if not is_lock_feasible(locked_system, neighbour):
                continue
            if is_serial(fmt, neighbour):
                return True
            seen.add(neighbour)
            frontier.append(neighbour)
            expansions += 1
            if expansions > max_expansions:
                raise GeometryError(
                    "homotopy search exceeded the expansion budget; "
                    "the system is too large for the exhaustive check"
                )
    return False
