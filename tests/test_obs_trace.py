"""The tracing layer: determinism, zero perturbation, abort taxonomy.

Three properties, all load-bearing:

* **byte-identical traces** — the same seed serializes to the same
  bytes, across both front-ends and both wait policies (timestamps are
  logical, so nothing wall-clock can leak into the event stream);
* **zero perturbation** — a traced harness cell produces the same
  history digest as an untraced one, so traces can be attached to
  counterexamples without invalidating the replay recipe;
* **complete abort taxonomy** — every abort every registered protocol
  emits carries a machine-readable reason code from
  :mod:`repro.engine.reasons`.
"""

import pytest

from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.mvstore import MultiVersionDataStore
from repro.engine.protocols.base import SnapshotAborted
from repro.engine.protocols.occ import OptimisticConcurrencyControl
from repro.engine.protocols.registry import PROTOCOL_ENTRIES, get_entry
from repro.engine.protocols.snapshot_isolation import SnapshotIsolation
from repro.engine.reasons import (
    ABORT_FAULT_INJECTED,
    ABORT_LOCK_DEADLOCK,
    ABORT_OCC_HISTORY_OVERFLOW,
    ABORT_OCC_PIPELINE_OVERLAP,
    ABORT_OCC_READ_INVALIDATED,
    ABORT_REASONS,
    ABORT_SI_FIRST_COMMITTER,
    ABORT_SSI_FASTPATH_PIVOT,
    ABORT_SSI_PIVOT,
    ABORT_UNSPECIFIED,
    ABORT_MVTO_READ_INVALIDATION,
    ABORT_SG_CYCLE,
    ABORT_TO_READ_TOO_LATE,
    ABORT_TO_WRITE_TOO_LATE,
    ABORT_WAIT_DEADLOCK,
)
from repro.engine.runtime import run_batch
from repro.engine.storage import DataStore
from repro.engine.workloads import hotspot_queue_workload, zipfian_hotspot_workload
from repro.harness.runner import run_cell
from repro.harness.scenarios import build_scenario
from repro.obs.trace import (
    EVENT_TYPES,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    TraceRecorder,
)

import repro.obs.trace as ev


def _traced_batch(protocol_name, seed, wait_policy="event"):
    initial, specs = zipfian_hotspot_workload(num_transactions=40, seed=seed)
    recorder = TraceRecorder()
    run_batch(
        get_entry(protocol_name).factory,
        DataStore(initial),
        specs,
        seed=seed,
        wait_policy=wait_policy,
        tracer=recorder,
    )
    return recorder


# ----------------------------------------------------------------------
# determinism: byte-identical serialized traces per seed
# ----------------------------------------------------------------------


class TestTraceDeterminism:
    @pytest.mark.parametrize("protocol", ["strict-2pl", "occ", "serializable-si"])
    @pytest.mark.parametrize("wait_policy", ["event", "polling"])
    def test_executor_trace_is_byte_identical_per_seed(self, protocol, wait_policy):
        first = _traced_batch(protocol, seed=9, wait_policy=wait_policy)
        second = _traced_batch(protocol, seed=9, wait_policy=wait_policy)
        assert first.to_jsonl() == second.to_jsonl()
        assert len(first.events) > 0

    @pytest.mark.parametrize("mode", ["executor", "simulator"])
    @pytest.mark.parametrize("wait_policy", ["event", "polling"])
    def test_harness_cell_trace_is_byte_identical(self, mode, wait_policy):
        scenario = build_scenario(3, quick=True, with_faults=False)
        entry = get_entry("strict-2pl")
        first, second = TraceRecorder(), TraceRecorder()
        run_cell(entry, scenario, mode, wait_policy, quick=True, tracer=first)
        run_cell(entry, scenario, mode, wait_policy, quick=True, tracer=second)
        assert first.to_jsonl() == second.to_jsonl()
        assert len(first.events) > 0

    def test_tracing_does_not_perturb_history_digests(self):
        """A traced cell and an untraced cell replay byte-identically."""
        scenario = build_scenario(5, quick=True)
        for mode in ("executor", "simulator"):
            entry = get_entry("serializable-si")
            bare = run_cell(entry, scenario, mode, "event", quick=True)
            traced = run_cell(
                entry, scenario, mode, "event", quick=True, tracer=TraceRecorder()
            )
            nulled = run_cell(
                entry, scenario, mode, "event", quick=True, tracer=NullTracer()
            )
            assert traced.digest == bare.digest
            assert nulled.digest == bare.digest

    def test_trace_round_trips_through_files(self, tmp_path):
        recorder = _traced_batch("occ", seed=2)
        path = str(tmp_path / "t.trace")
        recorder.save(path)
        loaded = TraceRecorder.load(path)
        assert loaded.to_jsonl() == recorder.to_jsonl()
        assert all(isinstance(event, TraceEvent) for event in loaded.events)

    def test_timestamps_are_logical(self):
        """Executor events are stamped with scheduler rounds: small
        monotone ints, never wall-clock floats."""
        recorder = _traced_batch("strict-2pl", seed=1)
        stamps = [event.ts for event in recorder.events]
        assert all(isinstance(ts, int) for ts in stamps)
        assert stamps == sorted(stamps)


# ----------------------------------------------------------------------
# the null tracer
# ----------------------------------------------------------------------


class TestNullTracer:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(ev.BEGIN, 0, 1, 1)
        NULL_TRACER.span("x", 0.0, 1.0)

    def test_event_types_cover_the_lifecycle(self):
        assert set(EVENT_TYPES) == {
            "begin", "read", "write", "block", "wake",
            "validate", "commit", "abort", "restart",
        }


# ----------------------------------------------------------------------
# the abort taxonomy
# ----------------------------------------------------------------------

#: the code(s) each protocol is expected to produce on the contended
#: zipfian workload (seed picked so every row actually aborts)
EXPECTED_CODES = {
    "strict-2pl": {ABORT_LOCK_DEADLOCK},
    "sgt": {ABORT_WAIT_DEADLOCK, ABORT_SG_CYCLE},
    "timestamp": {ABORT_TO_READ_TOO_LATE, ABORT_TO_WRITE_TOO_LATE},
    "occ": {ABORT_OCC_READ_INVALIDATED},
    "occ-parallel": {ABORT_OCC_PIPELINE_OVERLAP},
    "mvto": {ABORT_MVTO_READ_INVALIDATION},
    "si": {ABORT_SI_FIRST_COMMITTER},
    "serializable-si": {ABORT_SI_FIRST_COMMITTER, ABORT_SSI_PIVOT},
}


class TestAbortTaxonomy:
    def test_registry_covers_every_constant(self):
        import repro.engine.reasons as reasons

        constants = {
            value
            for name, value in vars(reasons).items()
            if name.startswith("ABORT_") and isinstance(value, str)
        }
        assert constants == set(ABORT_REASONS)
        assert all(ABORT_REASONS[code] for code in ABORT_REASONS)

    @pytest.mark.parametrize("protocol", sorted(EXPECTED_CODES))
    def test_every_abort_carries_a_code(self, protocol):
        recorder = _traced_batch(protocol, seed=5)
        aborts = [event for event in recorder.events if event.etype == ev.ABORT]
        assert aborts, f"{protocol} produced no aborts on the contended workload"
        seen = {event.code for event in aborts}
        assert None not in seen, f"{protocol} emitted an uncoded abort"
        assert seen <= set(ABORT_REASONS)
        assert seen >= EXPECTED_CODES[protocol]

    def test_occ_abort_names_the_conflicting_writer(self):
        recorder = _traced_batch("occ", seed=5)
        invalidated = [
            event
            for event in recorder.events
            if event.code == ABORT_OCC_READ_INVALIDATED
        ]
        assert invalidated
        named = [event for event in invalidated if event.blockers]
        assert named, "no OCC abort named its conflicting writer"
        for event in named:
            assert event.key is not None
            assert f"T{event.blockers[0]}" in event.detail

    def test_occ_history_overflow_code(self):
        protocol = OptimisticConcurrencyControl(
            DataStore({"x": 0, "y": 0}), history_limit=1
        )
        protocol.begin(1)
        protocol.read(1, "x")
        for txn_id in (2, 3):
            protocol.begin(txn_id)
            protocol.write(txn_id, "y", txn_id)
            assert protocol.commit(txn_id).granted
        decision = protocol.commit(1)
        assert decision.aborted
        assert decision.code == ABORT_OCC_HISTORY_OVERFLOW

    def test_ssi_fastpath_pivot_code(self):
        protocol = SnapshotIsolation(
            MultiVersionDataStore({"x": 0, "y": 0}), serializable=True
        )
        # T2 snapshots early and reads x; T1 overwrites x and commits,
        # giving T2 an outbound rw-antidependency.
        protocol.begin(2)
        protocol.read(2, "x")
        protocol.begin(1)
        protocol.write(1, "x", 5)
        assert protocol.commit(1).granted
        # a fast-path lease taken before T2 commits...
        lease = protocol.readonly_snapshot()
        protocol.write(2, "y", 9)
        assert protocol.commit(2).granted  # no inbound edge yet: commits
        # ...must refuse to read the key the committed pivot overwrote
        with pytest.raises(SnapshotAborted) as excinfo:
            protocol.snapshot_read("y", lease)
        assert excinfo.value.code == ABORT_SSI_FASTPATH_PIVOT
        assert excinfo.value.conflict_txns == (2,)

    def test_injected_faults_carry_the_fault_code(self):
        initial, specs = hotspot_queue_workload(
            num_transactions=30, ops_per_transaction=6, seed=4
        )
        recorder = TraceRecorder()
        run_batch(
            get_entry("strict-2pl").factory,
            DataStore(initial),
            specs,
            seed=4,
            fault_plan=FaultPlan(FaultSpec(abort_probability=0.2, seed=4)),
            tracer=recorder,
        )
        fault_aborts = [
            event
            for event in recorder.events
            if event.etype == ev.ABORT and event.code == ABORT_FAULT_INJECTED
        ]
        assert fault_aborts, "no injected abort surfaced in the trace"

    def test_unspecified_is_registered_but_never_emitted_by_protocols(self):
        assert ABORT_UNSPECIFIED in ABORT_REASONS
        for protocol in EXPECTED_CODES:
            recorder = _traced_batch(protocol, seed=5)
            for event in recorder.events:
                if event.etype == ev.ABORT:
                    assert event.code != ABORT_UNSPECIFIED


# ----------------------------------------------------------------------
# counterexample traces
# ----------------------------------------------------------------------


class TestCounterexampleTrace:
    def test_mutation_counterexample_carries_a_trace(self):
        from repro.harness.runner import mutation_smoke

        counterexample = mutation_smoke(seeds=range(12), quick=True)
        assert counterexample is not None
        assert counterexample.trace_jsonl
        lines = counterexample.trace_jsonl.strip().splitlines()
        events = [TraceEvent.from_dict(__import__("json").loads(l)) for l in lines]
        assert any(event.etype == ev.COMMIT for event in events)
