"""Unit tests for locked transaction systems and the policy framework."""

import pytest

from repro.core.transactions import Transaction, TransactionSystem, make_system, update_step
from repro.core.schedules import schedule_from_pairs
from repro.locking.policies import (
    AccessAction,
    LockAction,
    LockedTransaction,
    LockedTransactionSystem,
    LockingError,
    UnlockAction,
    default_lock_name,
    is_two_phase,
    is_well_formed,
    is_well_nested,
)
from repro.locking.two_phase import NoLockingPolicy, TwoPhaseLockingPolicy


def _locked(actions, name="T"):
    return LockedTransaction(actions, name=name)


class TestActions:
    def test_action_str_forms(self):
        assert str(LockAction("lock:x")) == "lock lock:x"
        assert str(UnlockAction("lock:x")) == "unlock lock:x"
        assert "access x" in str(AccessAction(1, update_step("x")))

    def test_default_lock_name_prefix(self):
        assert default_lock_name("balance") == "lock:balance"


class TestWellNestedness:
    def test_simple_pair_is_well_nested(self):
        txn = _locked(
            [LockAction("L"), AccessAction(1, update_step("x")), UnlockAction("L")]
        )
        assert is_well_nested(txn)

    def test_unlock_without_lock_rejected(self):
        txn = _locked([UnlockAction("L"), AccessAction(1, update_step("x"))])
        assert not is_well_nested(txn)

    def test_double_lock_rejected(self):
        txn = _locked(
            [LockAction("L"), LockAction("L"), AccessAction(1, update_step("x"))]
        )
        assert not is_well_nested(txn)

    def test_dangling_lock_rejected(self):
        txn = _locked([LockAction("L"), AccessAction(1, update_step("x"))])
        assert not is_well_nested(txn)

    def test_relock_after_unlock_allowed(self):
        txn = _locked(
            [
                LockAction("L"),
                AccessAction(1, update_step("x")),
                UnlockAction("L"),
                LockAction("L"),
                UnlockAction("L"),
            ]
        )
        assert is_well_nested(txn)


class TestTwoPhaseAndWellFormed:
    def test_two_phase_property(self):
        ok = _locked(
            [
                LockAction("A"),
                LockAction("B"),
                AccessAction(1, update_step("x")),
                UnlockAction("A"),
                UnlockAction("B"),
            ]
        )
        bad = _locked(
            [
                LockAction("A"),
                UnlockAction("A"),
                LockAction("B"),
                AccessAction(1, update_step("x")),
                UnlockAction("B"),
            ]
        )
        assert is_two_phase(ok)
        assert not is_two_phase(bad)

    def test_well_formed_requires_lock_around_access(self):
        lock_name = default_lock_name("x")
        good = _locked(
            [LockAction(lock_name), AccessAction(1, update_step("x")), UnlockAction(lock_name)]
        )
        naked = _locked([AccessAction(1, update_step("x"))])
        assert is_well_formed(good)
        assert not is_well_formed(naked)


class TestLockedTransactionSystem:
    def test_projection_recovers_original_steps(self, fig2_system):
        locked = TwoPhaseLockingPolicy()(fig2_system)
        # a serial schedule of L(T): all of locked T1 then all of locked T2
        fmt = locked.format
        schedule = schedule_from_pairs(
            [(1, j) for j in range(1, fmt[0] + 1)] + [(2, j) for j in range(1, fmt[1] + 1)]
        )
        projected = locked.project_schedule(schedule)
        assert [r.as_tuple() for r in projected] == [
            (1, 1), (1, 2), (1, 3), (1, 4), (2, 1), (2, 2),
        ]

    def test_lock_variables_disjoint_from_data_variables(self, fig2_system):
        locked = TwoPhaseLockingPolicy()(fig2_system)
        assert locked.lock_variables().isdisjoint(fig2_system.variables())

    def test_mismatched_locked_transactions_rejected(self, fig2_system):
        only_one = [TwoPhaseLockingPolicy().lock_transaction(fig2_system[0], 1)]
        with pytest.raises(LockingError):
            LockedTransactionSystem(fig2_system, only_one)

    def test_locked_transaction_must_preserve_steps(self):
        system = make_system(["x", "y"])
        wrong = LockedTransaction([AccessAction(1, update_step("x"))])
        with pytest.raises(LockingError):
            LockedTransactionSystem(system, [wrong])

    def test_as_transaction_system_adds_lock_steps(self, fig2_system):
        locked = TwoPhaseLockingPolicy()(fig2_system)
        as_plain = locked.as_transaction_system()
        assert as_plain.format == locked.format
        assert sum(as_plain.format) > fig2_system.total_steps

    def test_lock_constraint_checks_all_lock_variables(self, fig2_system):
        locked = TwoPhaseLockingPolicy()(fig2_system)
        constraint = locked.lock_constraint()
        free = {v: 0 for v in locked.lock_variables()}
        assert constraint.holds(free)
        stuck = dict(free)
        stuck[next(iter(stuck))] = 1
        assert not constraint.holds(stuck)

    def test_as_instance_satisfies_basic_assumption(self, fig2_system):
        # each locked transaction run alone locks and unlocks cleanly
        instance = TwoPhaseLockingPolicy()(fig2_system).as_instance()
        assert instance.correct_schedules()  # non-empty and constructible


class TestNoLockingPolicy:
    def test_no_locks_inserted(self, fig2_system):
        locked = NoLockingPolicy()(fig2_system)
        assert locked.lock_variables() == set()
        assert locked.format == fig2_system.format
