"""Tests for the scheduler objects themselves (mapping, fixpoints, rescheduling)."""

import pytest

from repro.core.schedules import all_schedules, is_serial, schedule_from_pairs
from repro.core.schedulers import (
    ConflictSerializationScheduler,
    FixedSetScheduler,
    MaximumInformationScheduler,
    SerialScheduler,
    SerializationScheduler,
    WeakSerializationScheduler,
    first_appearance_serial_order,
    fixpoint_set,
    is_correct_scheduler,
)


class TestFirstAppearanceOrder:
    def test_order_follows_history(self, figure1, figure1_h):
        assert first_appearance_serial_order(figure1.system, figure1_h) == [1, 2]

    def test_unseen_transactions_appended(self, banking):
        history_prefix = schedule_from_pairs([(2, 1)])
        assert first_appearance_serial_order(banking.system, history_prefix) == [2, 1, 3]


class TestSchedulerMapping:
    def test_fixpoint_histories_pass_unchanged(self, figure1):
        scheduler = SerialScheduler(figure1)
        for history in scheduler.fixpoint_set():
            assert scheduler.schedule(history) == history
            assert scheduler.delay_count(history) == 0

    def test_rejected_history_is_rescheduled_serially(self, figure1, figure1_h):
        scheduler = SerialScheduler(figure1)
        produced = scheduler.schedule(figure1_h)
        assert is_serial(figure1.system, produced)
        assert scheduler.delay_count(figure1_h) > 0

    def test_scheduler_output_always_correct(self, two_counter_instance):
        for scheduler_cls in (
            SerialScheduler,
            SerializationScheduler,
            ConflictSerializationScheduler,
            WeakSerializationScheduler,
            MaximumInformationScheduler,
        ):
            scheduler = scheduler_cls(two_counter_instance)
            assert is_correct_scheduler(scheduler), scheduler.name

    def test_schedule_validates_input(self, figure1):
        scheduler = SerialScheduler(figure1)
        with pytest.raises(Exception):
            scheduler.schedule(schedule_from_pairs([(1, 2), (1, 1), (2, 1)]))

    def test_fixpoint_set_helper_matches_method(self, figure1):
        scheduler = SerializationScheduler(figure1)
        assert fixpoint_set(scheduler) == scheduler.fixpoint_set()


class TestFixedSetScheduler:
    def test_accepts_only_listed_histories(self, figure1, figure1_h):
        scheduler = FixedSetScheduler(figure1, [figure1_h])
        assert scheduler.accepts(figure1_h)
        others = [h for h in all_schedules(figure1.system) if h != figure1_h]
        assert all(not scheduler.accepts(h) for h in others)

    def test_empty_fixed_set_reschedules_everything(self, figure1):
        scheduler = FixedSetScheduler(figure1, [])
        # Every output is serial; serial histories are therefore still fixed
        # points (rescheduling them reproduces them), so the effective
        # fixpoint set collapses to exactly the serial schedules.
        for history in all_schedules(figure1.system):
            assert is_serial(figure1.system, scheduler.schedule(history))
        assert set(scheduler.fixpoint_set()) == {
            h for h in all_schedules(figure1.system) if is_serial(figure1.system, h)
        }


class TestBankingSchedulers:
    """Integration-flavoured checks on the Section 2 example (format (3,2,4))."""

    def test_fixpoint_sizes_nested_on_banking(self, banking):
        serial = len(SerialScheduler(banking).fixpoint_set())
        sr = len(SerializationScheduler(banking).fixpoint_set())
        correct = len(MaximumInformationScheduler(banking).fixpoint_set())
        assert serial == 6  # 3! serial schedules
        assert serial <= sr <= correct

    def test_serialization_scheduler_correct_on_banking(self, banking):
        scheduler = SerializationScheduler(banking)
        # spot-check: every fixpoint history preserves the banking invariant
        for history in scheduler.fixpoint_set()[:50]:
            assert banking.is_correct_schedule(history)
