"""Experiment E5: Figure 1 and Theorem 4 (weak serializability)."""

import pytest

from repro.core.examples import figure1_history, figure1_system
from repro.core.herbrand import herbrand_final_state
from repro.core.schedules import all_schedules, count_schedules, serial_schedule
from repro.core.schedulers import SerializationScheduler, WeakSerializationScheduler
from repro.core.semantics import execute_serial, final_globals
from repro.core.serializability import (
    is_serializable,
    is_weakly_serializable,
    weakly_serializable_schedules,
)


class TestFigure1Reproduction:
    """The worked example at the start of Section 4.3."""

    def test_herbrand_values_match_the_paper(self, figure1, figure1_h):
        system = figure1.system
        h_value = str(herbrand_final_state(system, figure1_h)["x"])
        serial_12 = str(
            herbrand_final_state(system, serial_schedule(system.format, [1, 2]))["x"]
        )
        serial_21 = str(
            herbrand_final_state(system, serial_schedule(system.format, [2, 1]))["x"]
        )
        # paper: f12(f11(f21(x))) and f21(f12(f11(x))) for the serial histories,
        # f12(f21(f11(x))) for h (our canonical symbols are fi_j and arguments
        # accumulate all earlier locals of the same transaction).
        assert h_value != serial_12 and h_value != serial_21
        assert serial_12 != serial_21

    def test_h_produces_same_state_as_serial_21_under_given_interpretation(
        self, figure1, figure1_h
    ):
        for initial in figure1.consistent_states:
            h_final = final_globals(
                figure1.system, figure1.interpretation, figure1_h, initial
            )
            serial_final = execute_serial(
                figure1.system, figure1.interpretation, [2, 1], initial
            ).globals_
            assert h_final == serial_final

    def test_h_is_weakly_but_not_herbrand_serializable(self, figure1, figure1_h):
        assert not is_serializable(figure1.system, figure1_h)
        assert is_weakly_serializable(
            figure1.system,
            figure1.interpretation,
            figure1_h,
            figure1.consistent_states,
        )

    def test_WSR_is_SR_plus_exactly_h(self, figure1, figure1_h):
        wsr = set(
            weakly_serializable_schedules(
                figure1.system, figure1.interpretation, figure1.consistent_states
            )
        )
        sr = {h for h in all_schedules(figure1.system) if is_serializable(figure1.system, h)}
        assert wsr - sr == {figure1_h}

    def test_weak_scheduler_gains_exactly_one_history(self, figure1):
        weak = WeakSerializationScheduler(figure1)
        serialization = SerializationScheduler(figure1)
        assert len(weak.fixpoint_set()) == len(serialization.fixpoint_set()) + 1

    def test_total_history_count(self, figure1):
        assert count_schedules(figure1.system) == 3


class TestWeakSerializabilityProperties:
    def test_serial_schedules_always_weakly_serializable(self, figure1):
        for order in ([1, 2], [2, 1]):
            schedule = serial_schedule(figure1.system.format, order)
            assert is_weakly_serializable(
                figure1.system,
                figure1.interpretation,
                schedule,
                figure1.consistent_states,
            )

    def test_weak_serializability_quantifies_over_all_supplied_states(self, figure1, figure1_h):
        # with an adversarially chosen extra state the check still passes for h,
        # because h ≡ T2;T1 holds for *every* starting value of x
        assert is_weakly_serializable(
            figure1.system, figure1.interpretation, figure1_h, [{"x": v} for v in range(-3, 8)]
        )

    def test_concatenation_length_zero_only_accepts_identity_results(self, figure1, figure1_h):
        # with max length 0 the only achievable state is the unchanged one,
        # so h (which changes x) cannot be weakly serializable at that bound
        assert not is_weakly_serializable(
            figure1.system,
            figure1.interpretation,
            figure1_h,
            figure1.consistent_states,
            max_concatenation_length=0,
        )
