"""Unit tests for the serializability notions (SR, WSR, conflict, view)."""

import pytest

from repro.core.schedules import (
    all_schedules,
    all_serial_schedules,
    schedule_from_pairs,
    serial_schedule,
)
from repro.core.serializability import (
    classification,
    conflict_equivalent_serial_orders,
    conflict_graph,
    conflict_serializable_schedules,
    equivalent_serial_orders,
    is_conflict_serializable,
    is_serializable,
    is_state_serializable,
    is_view_serializable,
    is_weakly_serializable,
    serializable_schedules,
    view_equivalent,
    view_serializable_schedules,
    weakly_serializable_schedules,
)
from repro.core.transactions import Transaction, TransactionSystem, make_system, read_step, update_step, write_step


class TestConflictSerializability:
    def test_serial_schedules_always_conflict_serializable(self, simple_rw_system):
        for serial in all_serial_schedules(simple_rw_system):
            assert is_conflict_serializable(simple_rw_system, serial)

    def test_classic_nonserializable_interleaving(self, simple_rw_system):
        # T1: x, y ; T2: y, x interleaved so each sees the other's partial work
        bad = schedule_from_pairs([(1, 1), (2, 1), (2, 2), (1, 2)])
        assert not is_conflict_serializable(simple_rw_system, bad)
        graph = conflict_graph(simple_rw_system, bad)
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)

    def test_conflict_graph_edges_ordered_by_first_conflict(self, simple_rw_system):
        sched = serial_schedule(simple_rw_system.format, [1, 2])
        graph = conflict_graph(simple_rw_system, sched)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_conflict_equivalent_orders_match_topological_sorts(self, simple_rw_system):
        sched = serial_schedule(simple_rw_system.format, [2, 1])
        assert conflict_equivalent_serial_orders(simple_rw_system, sched) == [(2, 1)]

    def test_read_only_steps_do_not_conflict(self):
        system = TransactionSystem(
            [Transaction([read_step("x")]), Transaction([read_step("x")])]
        )
        for schedule in all_schedules(system):
            assert is_conflict_serializable(system, schedule)

    def test_conflict_implies_herbrand_serializable(self, simple_rw_system):
        for schedule in all_schedules(simple_rw_system):
            if is_conflict_serializable(simple_rw_system, schedule):
                assert is_serializable(simple_rw_system, schedule)


class TestHerbrandSerializability:
    def test_figure1_history_outside_SR(self, figure1, figure1_h):
        assert not is_serializable(figure1.system, figure1_h)
        assert equivalent_serial_orders(figure1.system, figure1_h) == []

    def test_serial_schedules_belong_to_SR(self, figure1):
        for serial in all_serial_schedules(figure1.system):
            assert is_serializable(figure1.system, serial)

    def test_SR_count_for_figure1(self, figure1):
        # only the two serial schedules of the (2,1) format are serializable here
        assert len(serializable_schedules(figure1.system)) == 2

    def test_disjoint_transactions_fully_serializable(self):
        system = make_system(["x"], ["y"])
        assert len(serializable_schedules(system)) == 2  # |H| = 2, all serializable


class TestViewSerializability:
    def test_view_equivalence_of_identical_schedules(self, simple_rw_system):
        sched = serial_schedule(simple_rw_system.format, [1, 2])
        assert view_equivalent(simple_rw_system, sched, sched)

    def test_view_serializable_superset_of_conflict(self, simple_rw_system):
        conflict = set(conflict_serializable_schedules(simple_rw_system))
        view = set(view_serializable_schedules(simple_rw_system))
        assert conflict <= view

    def test_blind_write_example_view_but_not_conflict_serializable(self):
        # Classic example: T1 r(x) w(x), T2 w(x), T3 w(x) with blind writes.
        system = TransactionSystem(
            [
                Transaction([read_step("x"), write_step("x")], name="T1"),
                Transaction([write_step("x")], name="T2"),
                Transaction([write_step("x")], name="T3"),
            ]
        )
        # r1(x) w2(x) w1(x) w3(x): view-equivalent to T1 T2 T3
        schedule = schedule_from_pairs([(1, 1), (2, 1), (1, 2), (3, 1)])
        assert is_view_serializable(system, schedule)
        assert not is_conflict_serializable(system, schedule)


class TestStateAndWeakSerializability:
    def test_figure1_history_is_state_serializable(self, figure1, figure1_h):
        assert is_state_serializable(
            figure1.system,
            figure1.interpretation,
            figure1_h,
            figure1.consistent_states,
        )

    def test_figure1_history_is_weakly_serializable(self, figure1, figure1_h):
        assert is_weakly_serializable(
            figure1.system,
            figure1.interpretation,
            figure1_h,
            figure1.consistent_states,
        )

    def test_SR_subset_of_WSR(self, figure1):
        sr = set(serializable_schedules(figure1.system))
        wsr = set(
            weakly_serializable_schedules(
                figure1.system, figure1.interpretation, figure1.consistent_states
            )
        )
        assert sr <= wsr
        assert len(wsr) == 3  # the paper's point: WSR strictly larger here

    def test_weak_serializability_fails_for_truly_wrong_interleaving(
        self, two_counter_instance
    ):
        # T1 is x+1 then x-1 (a no-op as a whole), T2 doubles x.  Whole-transaction
        # concatenations from x = 0 can only ever produce 0, but the interleaving
        # +1, *2, -1 produces 1 — so it is not even weakly serializable.
        inst = two_counter_instance
        bad = schedule_from_pairs([(1, 1), (2, 1), (1, 2)])
        assert not is_weakly_serializable(
            inst.system, inst.interpretation, bad, [{"x": 0}]
        )

    def test_classification_is_consistent(self, figure1, figure1_h):
        result = classification(
            figure1.system, figure1_h, figure1.interpretation, figure1.consistent_states
        )
        assert result == {
            "serial": False,
            "conflict_serializable": False,
            "view_serializable": False,
            "herbrand_serializable": False,
            "state_serializable": True,
            "weakly_serializable": True,
        }

    def test_inclusion_chain_on_exhaustive_enumeration(self, figure1):
        system = figure1.system
        for schedule in all_schedules(system):
            flags = classification(
                system, schedule, figure1.interpretation, figure1.consistent_states
            )
            if flags["serial"]:
                assert flags["conflict_serializable"]
            if flags["conflict_serializable"]:
                assert flags["herbrand_serializable"]
            if flags["herbrand_serializable"]:
                assert flags["view_serializable"] or True  # SR defined via Herbrand
                assert flags["weakly_serializable"]
