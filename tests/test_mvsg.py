"""Unit tests for the multi-version serialization graph checker."""

from repro.analysis.mvsg import (
    MVHistory,
    explain_mvsg_cycle,
    multiversion_serialization_graph,
    one_copy_serializable,
)
from repro.engine.mvstore import MultiVersionDataStore, VersionedRead
from repro.engine.protocols.snapshot_isolation import SnapshotIsolation


def history(committed, reads, orders):
    return MVHistory(
        committed=frozenset(committed),
        reads=tuple(VersionedRead(*read) for read in reads),
        version_orders=orders,
    )


class TestMVSGConstruction:
    def test_reads_from_edge(self):
        h = history({1, 2}, [(2, "x", 1)], {"x": (1,)})
        graph = multiversion_serialization_graph(h)
        assert graph.has_edge(1, 2)
        assert one_copy_serializable(h)

    def test_reader_of_initial_precedes_later_writer(self):
        # T2 read the initial version of x, T1 wrote x: T2 must serialize
        # before T1 (the reader saw the state before the write).
        h = history({1, 2}, [(2, "x", None)], {"x": (1,)})
        graph = multiversion_serialization_graph(h)
        assert graph.has_edge(2, 1)
        assert not graph.has_edge(1, 2)

    def test_superseded_writer_precedes_read_version(self):
        # version order x: T1 then T2; T3 read T2's version => T1 -> T2 -> T3
        h = history({1, 2, 3}, [(3, "x", 2)], {"x": (1, 2)})
        graph = multiversion_serialization_graph(h)
        assert graph.has_edge(2, 3)
        assert graph.has_edge(1, 2)

    def test_write_skew_cycle_detected(self):
        # the canonical write skew: each transaction read the initial
        # version of what the other wrote
        h = history(
            {1, 2},
            [(1, "x", None), (1, "y", None), (2, "x", None), (2, "y", None)],
            {"x": (1,), "y": (2,)},
        )
        assert not one_copy_serializable(h)
        cycle = explain_mvsg_cycle(h)
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_aborted_transactions_are_ignored(self):
        # reader 9 never committed; its reads must not create edges
        h = history({1}, [(9, "x", None)], {"x": (1,)})
        graph = multiversion_serialization_graph(h)
        assert len(graph) == 1
        assert not graph.edges()

    def test_own_version_reads_are_skipped(self):
        h = history({1}, [(1, "x", 1)], {"x": (1,)})
        assert one_copy_serializable(h)

    def test_snapshot_reader_behind_committed_writer_is_1sr(self):
        """The point of multi-versioning: a reader served old versions of
        everything a later writer touched simply serializes *before* that
        writer — 1SR — even though in the single-version log its reads
        straddle the writer's commit (see the disagreement test in
        tests/test_engine_mvcc.py)."""
        h = history(
            {1, 2},
            [(1, "k", None), (1, "x", None)],
            {"x": (2,), "k": (2,)},
        )
        graph = multiversion_serialization_graph(h)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)
        assert one_copy_serializable(h)


class TestFromProtocol:
    def test_capture_from_si_protocol(self):
        si = SnapshotIsolation(MultiVersionDataStore({"x": 0}))
        si.begin(1)
        si.read(1, "x")
        si.write(1, "x", 1)
        si.commit(1)
        si.begin(2)
        si.read(2, "x")
        si.commit(2)
        h = MVHistory.from_protocol(si)
        assert h.committed == {1, 2}
        assert h.version_orders == {"x": (1,)}
        graph = multiversion_serialization_graph(h)
        assert graph.has_edge(1, 2)  # T2 read T1's version
        assert one_copy_serializable(h)
