"""The contention profiler, the Chrome exporter and the obs CLI."""

import json

import pytest

from repro.engine.protocols.registry import get_entry
from repro.engine.protocols.two_phase_locking import StrictTwoPhaseLocking
from repro.engine.reasons import ABORT_LOCK_DEADLOCK, ABORT_REASONS
from repro.engine.runtime import run_batch
from repro.engine.storage import DataStore, ShardedDataStore
from repro.engine.workloads import (
    hotspot_queue_workload,
    partitioned_workload,
    zipfian_hotspot_workload,
)
from repro.obs import ContentionProfile, chrome_trace, phase_slices
from repro.obs.__main__ import main as obs_main
from repro.obs.profile import render_timeline
from repro.obs.trace import TraceRecorder

import repro.obs.trace as ev


def _traced(protocol_name="strict-2pl", seed=5, workload="hotspot"):
    if workload == "hotspot":
        initial, specs = hotspot_queue_workload(
            num_transactions=50, ops_per_transaction=8, seed=seed
        )
    else:
        initial, specs = zipfian_hotspot_workload(num_transactions=50, seed=seed)
    recorder = TraceRecorder()
    run_batch(
        get_entry(protocol_name).factory,
        DataStore(initial),
        specs,
        seed=seed,
        tracer=recorder,
    )
    return recorder


# ----------------------------------------------------------------------
# phase slicing
# ----------------------------------------------------------------------


class TestPhaseSlices:
    def test_slices_partition_each_sessions_lifetime(self):
        recorder = _traced()
        slices = phase_slices(recorder.events)
        assert slices
        by_session = {}
        for phase_slice in slices:
            by_session.setdefault(phase_slice.session_id, []).append(phase_slice)
        for session_slices in by_session.values():
            for earlier, later in zip(session_slices, session_slices[1:]):
                # contiguous and non-overlapping, in trace order
                assert earlier.end <= later.start
            assert all(s.duration >= 0 for s in session_slices)

    def test_blocked_slices_carry_the_contended_key(self):
        recorder = _traced()
        blocked = [s for s in phase_slices(recorder.events) if s.phase == "blocked"]
        assert blocked
        assert all(s.key is not None for s in blocked)

    def test_empty_stream_yields_no_slices(self):
        assert phase_slices([]) == []


# ----------------------------------------------------------------------
# the contention profile
# ----------------------------------------------------------------------


class TestContentionProfile:
    def test_hot_keys_match_the_workload_hot_set(self):
        recorder = _traced()
        profile = ContentionProfile.from_events(recorder.events)
        hot = profile.hot_keys(4)
        assert hot
        # the hotspot workload hammers keys h0..h3; the hottest key must
        # come from that set and carry real wait time and blockers
        assert hot[0].key.startswith("h")
        assert hot[0].blocks > 0
        assert hot[0].wait_time > 0
        assert hot[0].blockers

    def test_abort_summary_uses_the_taxonomy(self):
        recorder = _traced(workload="zipfian")
        profile = ContentionProfile.from_events(recorder.events)
        rows = profile.abort_summary()
        assert rows
        for code, count, description in rows:
            assert code in ABORT_REASONS
            assert count > 0
            assert description == ABORT_REASONS[code]
        assert profile.abort_codes[ABORT_LOCK_DEADLOCK] > 0

    def test_phase_histograms_fill(self):
        recorder = _traced()
        profile = ContentionProfile.from_events(recorder.events)
        assert profile.phase_histograms["running"].count > 0
        assert profile.phase_histograms["blocked"].count > 0
        assert profile.commits == 50

    def test_renderers_return_text(self):
        recorder = _traced(workload="zipfian")
        profile = ContentionProfile.from_events(recorder.events)
        summary = profile.render_summary()
        assert "hot keys" in summary
        assert "abort taxonomy" in summary
        assert "phase latencies" in summary
        timeline = render_timeline(recorder.events, limit=5)
        assert "begin" in timeline
        assert "(truncated)" in timeline

    def test_profile_folds_spans(self):
        from repro.obs.trace import Span

        profile = ContentionProfile.from_events(
            [], spans=[Span("shard.pickle", 0.0, 0.5), Span("shard.pickle", 1.0, 0.25)]
        )
        assert profile.span_counts["shard.pickle"] == 2
        assert profile.span_totals["shard.pickle"] == pytest.approx(0.75)
        assert "shard.pickle" in profile.render_spans()


# ----------------------------------------------------------------------
# parallel-runner spans
# ----------------------------------------------------------------------


class TestParallelSpans:
    def test_parallel_runner_records_ipc_spans(self):
        from repro.engine.parallel import ParallelShardRunner
        from repro.engine.workloads import partition_of

        initial, specs = partitioned_workload(
            num_transactions=24, seed=6, num_partitions=4
        )
        store = ShardedDataStore(initial, num_shards=4, shard_of=partition_of)
        recorder = TraceRecorder()
        result = ParallelShardRunner(workers=2).run(
            StrictTwoPhaseLocking, store, specs, seed=1, tracer=recorder
        )
        assert result.committed > 0
        names = {span.name for span in recorder.spans}
        assert {"shard.build_tasks", "shard.pickle", "shard.pool_start",
                "shard.collect"} <= names
        assert all(span.duration >= 0 for span in recorder.spans)
        # spans live outside the deterministic event stream
        assert recorder.events == []

    def test_spans_saved_in_sidecar_file(self, tmp_path):
        from repro.obs.trace import Span

        recorder = TraceRecorder()
        recorder.now = 1
        recorder.emit(ev.BEGIN, 0, 1, 1)
        recorder.span("shard.pickle", 0.0, 0.5, meta={"shard": 0})
        path = str(tmp_path / "x.trace")
        recorder.save(path)
        loaded = TraceRecorder.load(path)
        assert loaded.to_jsonl() == recorder.to_jsonl()
        assert len(loaded.spans) == 1
        assert loaded.spans[0].name == "shard.pickle"
        # the event file itself contains no span (byte-identity holds)
        with open(path) as handle:
            assert "shard.pickle" not in handle.read()


# ----------------------------------------------------------------------
# chrome trace-event export
# ----------------------------------------------------------------------


class TestChromeExport:
    def test_chrome_trace_is_valid_and_complete(self):
        recorder = _traced(workload="zipfian")
        document = chrome_trace(recorder.events, recorder.spans)
        # survives JSON serialization (the Perfetto input format)
        parsed = json.loads(json.dumps(document))
        entries = parsed["traceEvents"]
        assert parsed["displayTimeUnit"] == "ms"
        phases = {entry["ph"] for entry in entries}
        assert phases <= {"X", "i", "M"}
        slices = [entry for entry in entries if entry["ph"] == "X"]
        instants = [entry for entry in entries if entry["ph"] == "i"]
        assert slices and instants
        for entry in slices:
            assert entry["dur"] > 0
            assert entry["ts"] >= 0
        abort_markers = [
            entry for entry in instants if entry["name"] == "abort"
        ]
        assert abort_markers
        assert all("code" in entry["args"] for entry in abort_markers)

    def test_sessions_become_named_tracks(self):
        recorder = _traced()
        entries = chrome_trace(recorder.events)["traceEvents"]
        thread_names = [
            entry for entry in entries
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        ]
        tracked = {entry["tid"] for entry in thread_names}
        sliced = {entry["tid"] for entry in entries if entry["ph"] == "X"}
        assert sliced <= tracked


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------


class TestObsCli:
    def test_capture_then_report_then_chrome(self, tmp_path, capsys):
        trace_path = str(tmp_path / "cli.trace")
        chrome_path = str(tmp_path / "cli.json")
        assert obs_main([
            "capture", "--protocol", "strict-2pl", "--workload", "zipfian",
            "--transactions", "30", "--seed", "3", "--out", trace_path,
        ]) == 0
        captured = capsys.readouterr().out
        assert "captured" in captured

        assert obs_main([
            "report", trace_path, "--hot-keys", "5", "--timeline",
            "--limit", "10", "--chrome", chrome_path,
        ]) == 0
        report = capsys.readouterr().out
        assert "hot keys" in report
        assert "abort taxonomy" in report
        assert "phase latencies" in report
        assert "timeline" in report
        with open(chrome_path) as handle:
            assert json.load(handle)["traceEvents"]

    def test_capture_is_deterministic_on_disk(self, tmp_path):
        paths = [str(tmp_path / f"d{i}.trace") for i in (0, 1)]
        for path in paths:
            assert obs_main([
                "capture", "--protocol", "occ", "--transactions", "20",
                "--seed", "8", "--out", path,
            ]) == 0
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()

    def test_report_session_filter(self, tmp_path, capsys):
        trace_path = str(tmp_path / "f.trace")
        obs_main([
            "capture", "--transactions", "10", "--seed", "1", "--out", trace_path,
        ])
        capsys.readouterr()
        assert obs_main([
            "report", trace_path, "--timeline", "--session", "0",
        ]) == 0
        out = capsys.readouterr().out
        timeline = out.split("== timeline ==", 1)[1]
        lines = [line for line in timeline.strip().splitlines() if line]
        assert lines
        assert all(" s0 " in f" {line} " or "s0  " in line for line in lines)
