"""Unit tests for engine operations and transaction specs."""

import pytest

from repro.engine.operations import (
    Operation,
    OperationKind,
    TransactionSpec,
    audit_transaction,
    increment_op,
    read_op,
    transfer_transaction,
    update_op,
    write_op,
)


class TestOperations:
    def test_read_op_properties(self):
        op = read_op("x")
        assert op.kind is OperationKind.READ
        assert op.reads and not op.writes
        assert str(op) == "read(x)"

    def test_write_op_ignores_reads(self):
        op = write_op("x", 7)
        assert op.writes and not op.reads
        assert op.transform({"anything": 1}) == 7

    def test_update_op_uses_reads(self):
        op = update_op("x", lambda reads: reads["x"] * 2)
        assert op.reads and op.writes
        assert op.transform({"x": 21}) == 42

    def test_increment_op(self):
        op = increment_op("x", 5)
        assert op.transform({"x": 1}) == 6

    def test_write_like_ops_require_transform(self):
        with pytest.raises(ValueError):
            Operation(OperationKind.UPDATE, "x")


class TestTransactionSpec:
    def test_requires_operations(self):
        with pytest.raises(ValueError):
            TransactionSpec([])

    def test_read_and_write_sets(self):
        spec = TransactionSpec([read_op("a"), update_op("b", lambda r: 1), write_op("c", 2)])
        assert spec.read_set() == {"a", "b"}
        assert spec.write_set() == {"b", "c"}
        assert len(spec) == 3

    def test_with_id(self):
        spec = TransactionSpec([read_op("a")], name="t")
        assert spec.with_id(7).txn_id == 7
        assert spec.txn_id is None

    def test_transfer_transaction_is_conditional(self):
        spec = transfer_transaction("A", "B", 100)
        credit = spec.operations[1].transform
        debit = spec.operations[2].transform
        rich = {"A": 150, "B": 50}
        poor = {"A": 50, "B": 50}
        assert credit(rich) == 150 and debit(rich) == 50
        assert credit(poor) == 50 and debit(poor) == 50

    def test_audit_transaction_totals_keys(self):
        spec = audit_transaction(["a", "b"], "total")
        assert spec.operations[-1].transform({"a": 2, "b": 3}) == 5
        assert spec.keys_read() == ("a", "b", "total")
