"""Tests for the shared engine kernel: event-driven wakeups, sharding, metrics.

The decisive properties:

* **Determinism** — the simulator is a pure function of its seed, in
  both wait policies (the satellite requirement: same
  ``SimulationConfig.seed`` => identical report).
* **Mode equivalence** — event-driven blocking changes *when* a blocked
  request is retried, never *what* the protocol decides, so committed
  histories stay conflict-serializable and the banking integrity
  constraint holds in both modes for every protocol.
* **Event economy** — event mode spends no simulation events re-asking
  the protocol about still-blocked requests, so it processes strictly
  fewer events than polling under contention.
"""

import pytest

from repro.engine.kernel import EngineKernel, Session, StepKind
from repro.engine.metrics import Histogram, Metrics
from repro.engine.operations import TransactionSpec, increment_op
from repro.engine.protocols.base import SerialProtocol
from repro.engine.protocols.occ import OptimisticConcurrencyControl
from repro.engine.protocols.sgt import SerializationGraphTesting
from repro.engine.protocols.timestamp_ordering import TimestampOrdering
from repro.engine.protocols.two_phase_locking import StrictTwoPhaseLocking
from repro.engine.runtime import TransactionExecutor, run_batch, run_sharded_batch
from repro.engine.simulator import SimulationConfig, Simulator
from repro.engine.storage import DataStore, ShardedDataStore
from repro.engine.workloads import (
    WorkloadConfig,
    banking_generator,
    partition_of,
    partitioned_generator,
    partitioned_workload,
    read_mostly_generator,
    zipfian_hotspot_generator,
    zipfian_hotspot_workload,
)

ALL_PROTOCOLS = [
    StrictTwoPhaseLocking,
    SerializationGraphTesting,
    TimestampOrdering,
    OptimisticConcurrencyControl,
]


def _report_fingerprint(report):
    """Everything the satellite requires to be reproducible from the seed."""
    b = report.mean_breakdown
    return (
        report.committed,
        report.aborts,
        report.blocks,
        report.operations,
        report.delay_free_transactions,
        report.mean_response_time,
        (b.scheduling, b.waiting, b.execution),
        tuple(sorted(report.final_snapshot.items())),
    )


def _simulate(protocol_cls, wait_policy, seed=7, clients=6, duration=300.0,
              workload=None):
    initial, generate = workload or banking_generator(num_accounts=10)
    store = DataStore(initial)
    config = SimulationConfig(
        num_clients=clients,
        duration=duration,
        seed=seed,
        abort_backoff=3.0,
        wait_policy=wait_policy,
    )
    return Simulator(protocol_cls(store), generate, config).run()


class TestKernelWaitIndex:
    def test_blocked_session_is_parked_and_woken_on_commit(self):
        store = DataStore({"x": 0})
        protocol = StrictTwoPhaseLocking(store)
        kernel = EngineKernel(protocol)
        woken = []
        kernel.wake_sink = woken.append

        first = kernel.new_session(TransactionSpec([increment_op("x")]), 0)
        second = kernel.new_session(TransactionSpec([increment_op("x")]), 1)
        kernel.step(first)   # begin
        kernel.step(first)   # lock x
        kernel.step(second)  # begin
        result = kernel.step(second)  # blocked on first's lock
        assert result.kind is StepKind.BLOCKED
        assert result.parked
        assert second.waiting
        assert kernel.blocked_behind(first.txn_id) == {1}

        kernel.step(first)   # commit -> releases the lock -> wakes second
        assert not second.waiting
        assert woken == [second]
        assert kernel.step(second).kind is StepKind.GRANTED

    def test_wake_on_abort_too(self):
        store = DataStore({"x": 0})
        protocol = StrictTwoPhaseLocking(store)
        kernel = EngineKernel(protocol)
        woken = []
        kernel.wake_sink = woken.append

        holder = kernel.new_session(TransactionSpec([increment_op("x")]), 0)
        waiter = kernel.new_session(TransactionSpec([increment_op("x")]), 1)
        kernel.step(holder)
        kernel.step(holder)
        kernel.step(waiter)
        assert kernel.step(waiter).kind is StepKind.BLOCKED
        protocol.abort(holder.txn_id)
        assert woken == [waiter]

    def test_stepping_a_parked_session_unparks_it(self):
        """Polling callers may retry on a timer; the kernel must cope."""
        store = DataStore({"x": 0})
        protocol = StrictTwoPhaseLocking(store)
        kernel = EngineKernel(protocol)
        holder = kernel.new_session(TransactionSpec([increment_op("x")]), 0)
        waiter = kernel.new_session(TransactionSpec([increment_op("x")]), 1)
        kernel.step(holder)
        kernel.step(holder)
        kernel.step(waiter)
        kernel.step(waiter)
        assert waiter.waiting
        assert kernel.step(waiter).kind is StepKind.BLOCKED  # timer retry
        assert kernel.blocked_behind(holder.txn_id) == {1}

    def test_block_height_metric_is_observed(self):
        store = DataStore({"x": 0})
        protocol = StrictTwoPhaseLocking(store)
        kernel = EngineKernel(protocol)
        holder = kernel.new_session(TransactionSpec([increment_op("x")]), 0)
        kernel.step(holder)
        kernel.step(holder)
        for i in (1, 2, 3):
            s = kernel.new_session(TransactionSpec([increment_op("x")]), i)
            kernel.step(s)
            kernel.step(s)
        histogram = kernel.metrics.histogram("kernel.block_height")
        assert histogram.count == 3
        assert histogram.max == 3  # three sessions stacked behind the holder


class TestSimulatorDeterminism:
    """Satellite: same seed => identical report, for both wait policies."""

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    @pytest.mark.parametrize("wait_policy", ["polling", "event"])
    def test_same_seed_same_report(self, protocol_cls, wait_policy):
        a = _simulate(protocol_cls, wait_policy, seed=13)
        b = _simulate(protocol_cls, wait_policy, seed=13)
        assert _report_fingerprint(a) == _report_fingerprint(b)

    @pytest.mark.parametrize("wait_policy", ["polling", "event"])
    def test_different_seeds_differ(self, wait_policy):
        a = _simulate(StrictTwoPhaseLocking, wait_policy, seed=13)
        b = _simulate(StrictTwoPhaseLocking, wait_policy, seed=14)
        assert _report_fingerprint(a) != _report_fingerprint(b)


class TestModeEquivalence:
    """Acceptance: event mode produces committed histories with the same
    guarantees as polling mode on the banking and hotspot workloads."""

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    @pytest.mark.parametrize("workload_name", ["banking", "hotspot"])
    def test_serializable_and_consistent_in_both_modes(
        self, protocol_cls, workload_name
    ):
        for wait_policy in ("polling", "event"):
            if workload_name == "banking":
                workload = banking_generator(num_accounts=8)
            else:
                workload = zipfian_hotspot_generator(
                    WorkloadConfig(num_keys=24, read_fraction=0.5)
                )
            report = _simulate(
                protocol_cls, wait_policy, seed=3, clients=8, workload=workload
            )
            assert report.committed > 0
            assert report.committed_serializable
            if workload_name == "banking":
                snapshot = report.final_snapshot
                total = sum(
                    v for k, v in snapshot.items() if k.startswith("acct")
                )
                # money never created: balances + withdrawals stay bounded
                assert total + 5 * snapshot["C"] <= 8 * 100
                assert all(
                    v >= 0 for k, v in snapshot.items() if k.startswith("acct")
                )

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_event_mode_processes_fewer_events_under_contention(
        self, protocol_cls
    ):
        workload = zipfian_hotspot_generator(
            WorkloadConfig(num_keys=16, read_fraction=0.3)
        )
        polling = _simulate(
            protocol_cls, "polling", seed=5, clients=12, workload=workload
        )
        event = _simulate(
            protocol_cls, "event", seed=5, clients=12, workload=workload
        )
        assert event.committed > 0
        assert event.events_processed <= polling.events_processed

    @pytest.mark.parametrize("wait_policy", ["polling", "event"])
    def test_executor_equivalence_across_wait_policies(self, wait_policy):
        """The untimed executor commits every transaction in both modes."""
        initial, specs = zipfian_hotspot_workload(
            num_transactions=30, config=WorkloadConfig(num_keys=16), seed=4
        )
        for protocol_cls in ALL_PROTOCOLS:
            result = run_batch(
                protocol_cls,
                DataStore(initial),
                specs,
                interleaving="random",
                seed=9,
                max_attempts=400,
                wait_policy=wait_policy,
            )
            assert result.committed == 30
            assert result.committed_serializable

    def test_deadlock_victim_is_woken_in_event_mode(self):
        """2PL 'youngest' victims are blocked when doomed: only the wake
        notification lets an event-driven caller deliver their abort."""
        initial, specs = zipfian_hotspot_workload(
            num_transactions=24, config=WorkloadConfig(num_keys=8, read_fraction=0.2),
            seed=11,
        )
        result = run_batch(
            lambda store: StrictTwoPhaseLocking(store, deadlock_victim="youngest"),
            DataStore(initial),
            specs,
            interleaving="random",
            seed=2,
            max_attempts=400,
            wait_policy="event",
        )
        assert result.committed == 24
        assert result.committed_serializable


class TestShardedStorage:
    def test_keys_partition_across_shards(self):
        store = ShardedDataStore({f"k{i}": i for i in range(32)}, num_shards=4)
        domains = store.conflict_domains()
        assert sorted(k for keys in domains.values() for k in keys) == sorted(
            f"k{i}" for i in range(32)
        )
        assert len(store) == 32
        for i in range(32):
            assert store.read(f"k{i}") == i
            assert store.shard_of(f"k{i}") == store.shard_of(f"k{i}")  # stable

    def test_datastore_facade(self):
        store = ShardedDataStore({"a": 1}, num_shards=2)
        store.write("a", 5, writer=42)
        assert store.read("a") == 5
        assert store.read_version("a").writer == 42
        assert store.version_number("a") == 1
        assert "a" in store
        assert store.snapshot() == {"a": 5}
        clone = store.copy()
        clone.write("a", 9)
        assert store.read("a") == 5

    def test_sharded_batch_runs_one_protocol_per_shard(self):
        initial, specs = partitioned_workload(
            num_transactions=40,
            config=WorkloadConfig(num_keys=32, read_fraction=0.4),
            seed=6,
            num_partitions=4,
        )
        store = ShardedDataStore(initial, num_shards=4, shard_of=partition_of)
        result = run_sharded_batch(
            StrictTwoPhaseLocking, store, specs, interleaving="random", seed=1
        )
        assert result.committed == 40
        assert result.committed_serializable
        assert len(result.per_shard) > 1  # work actually spread out
        # every key's committed value survives into the merged snapshot
        assert set(result.store_snapshot) == set(initial)
        merged = result.merged_metrics()
        assert merged.count("protocol.commits") == 40

    def test_cross_shard_transactions_are_rejected(self):
        initial, _ = partitioned_workload(num_transactions=1, num_partitions=2)
        store = ShardedDataStore(initial, num_shards=2, shard_of=partition_of)
        cross = TransactionSpec(
            [increment_op("p0:k0"), increment_op("p1:k0")], name="cross"
        )
        with pytest.raises(ValueError, match="spans shards"):
            run_sharded_batch(StrictTwoPhaseLocking, store, [cross])


class TestMetrics:
    def test_histogram_moments_and_quantiles(self):
        h = Histogram()
        for v in (1, 2, 3, 4, 5):
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(3.0)
        assert h.min == 1 and h.max == 5
        assert h.quantile(1.0) >= 5

    def test_histogram_bucket_assignment_at_the_edges(self):
        """Satellite: observe() bisects the bound edges; values exactly on
        an edge land in that edge's bucket (bounds are inclusive upper
        edges), values just above land in the next, values above every
        edge land in the overflow bucket."""
        h = Histogram(bounds=(1, 10, 100))
        h.observe(1)      # == first edge -> bucket 0
        h.observe(1.001)  # just above -> bucket 1
        h.observe(10)     # == second edge -> bucket 1
        h.observe(100)    # == last edge -> bucket 2
        h.observe(100.5)  # above every edge -> overflow
        h.observe(0)      # below the first edge -> bucket 0
        assert h.buckets == [2, 2, 1, 1]
        assert sum(h.buckets) == h.count == 6

    def test_metrics_merge_folds_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.incr("x", 2)
        b.incr("x", 3)
        a.observe("lat", 1.0)
        b.observe("lat", 3.0)
        a.merge(b)
        assert a.count("x") == 5
        assert a.histogram("lat").count == 2
        assert a.histogram("lat").mean == pytest.approx(2.0)

    def test_metrics_merge_with_mismatched_bounds_keeps_count_invariant(self):
        a, b = Metrics(), Metrics()
        a.histograms["lat"] = Histogram(bounds=(10, 100))
        a.observe("lat", 5.0)
        b.observe("lat", 3.0)  # default bounds: incompatible layout
        a.merge(b)
        merged = a.histogram("lat")
        assert merged.count == 2
        assert sum(merged.buckets) == merged.count

    def test_passed_registry_is_adopted_by_the_protocol(self):
        """metrics= on the front-end must not split kernel and protocol
        into separate registries."""
        metrics = Metrics()
        store = DataStore({"x": 0})
        executor = TransactionExecutor(
            StrictTwoPhaseLocking(store), metrics=metrics  # protocol built without it
        )
        executor.run([TransactionSpec([increment_op("x")], name="t")])
        assert metrics.count("protocol.commits") == 1

    def test_shared_registry_spans_kernel_and_protocol(self):
        metrics = Metrics()
        store = DataStore({"x": 0})
        executor = TransactionExecutor(
            StrictTwoPhaseLocking(store, metrics=metrics), metrics=metrics
        )
        executor.run(
            [TransactionSpec([increment_op("x")], name=f"t{i}") for i in range(4)]
        )
        assert metrics.count("protocol.commits") == 4
        report = metrics.report()
        assert "protocol.commits" in report

    def test_simulator_report_carries_metrics(self):
        report = _simulate(SerializationGraphTesting, "event", seed=1)
        assert report.metrics is not None
        assert report.metrics.count("protocol.commits") == report.committed
        assert report.metrics.histogram("sim.response_time").count == report.committed


class TestNewWorkloads:
    def test_zipfian_hotspot_concentrates_on_hot_keys(self):
        import random as _random

        config = WorkloadConfig(
            num_keys=50, hotspot_fraction=0.1, hotspot_probability=0.8
        )
        _, generate = zipfian_hotspot_generator(config)
        rng = _random.Random(0)
        hot = {f"k{i}" for i in range(5)}
        touched = [
            op.key for _ in range(200) for op in generate(rng).operations
        ]
        hot_share = sum(1 for k in touched if k in hot) / len(touched)
        assert hot_share > 0.6  # ~80% expected

    def test_read_mostly_is_mostly_reads(self):
        import random as _random

        _, generate = read_mostly_generator(WorkloadConfig(num_keys=20))
        rng = _random.Random(1)
        ops = [op for _ in range(200) for op in generate(rng).operations]
        read_share = sum(1 for op in ops if not op.writes) / len(ops)
        assert read_share > 0.8

    def test_partitioned_transactions_stay_in_one_partition(self):
        import random as _random

        _, generate = partitioned_generator(WorkloadConfig(num_keys=32), 4)
        rng = _random.Random(2)
        for _ in range(50):
            spec = generate(rng)
            partitions = {partition_of(op.key) for op in spec.operations}
            assert len(partitions) == 1

    def test_serial_protocol_works_with_event_mode(self):
        report = _simulate(SerialProtocol, "event", seed=2, clients=4)
        assert report.committed > 0
        assert report.committed_serializable
