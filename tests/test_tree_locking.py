"""Tests for the tree-locking policy on hierarchically structured data."""

import pytest

from repro.core.serializability import is_serializable
from repro.core.transactions import make_system
from repro.locking.lock_manager import policy_output_schedules
from repro.locking.policies import is_two_phase, is_well_nested
from repro.locking.tree_locking import TreeLockingPolicy, TreeStructureError, VariableTree, chain_tree
from repro.locking.two_phase import TwoPhaseLockingPolicy


class TestVariableTree:
    def test_parent_child_and_ancestors(self):
        tree = VariableTree({"b": "a", "c": "a", "d": "b"})
        assert tree.parent("d") == "b"
        assert tree.children("a") == ["b", "c"]
        assert tree.ancestors("d") == ["b", "a"]
        assert tree.path_to_root("c") == ["c", "a"]
        assert tree.depth("d") == 2

    def test_connecting_subtree(self):
        tree = VariableTree({"b": "a", "c": "a"})
        assert tree.connecting_subtree(["b", "c"]) == {"a", "b", "c"}

    def test_cycle_rejected(self):
        with pytest.raises(TreeStructureError):
            VariableTree({"a": "b", "b": "a"})

    def test_self_parent_rejected(self):
        with pytest.raises(TreeStructureError):
            VariableTree({"a": "a"})

    def test_chain_tree_helper(self):
        tree = chain_tree(["r", "m", "l"])
        assert tree.parent("l") == "m" and tree.parent("m") == "r"


class TestTreeLockingPolicy:
    @pytest.fixture
    def chain_system(self):
        # both transactions walk down the same chain r -> m -> l
        return make_system(["r", "m", "l"], ["m", "l"], name="chain")

    @pytest.fixture
    def policy(self):
        return TreeLockingPolicy(chain_tree(["r", "m", "l"]))

    def test_locked_transactions_are_well_nested_not_necessarily_two_phase(
        self, chain_system, policy
    ):
        locked = policy(chain_system)
        assert all(is_well_nested(txn) for txn in locked)

    def test_outputs_are_serializable(self, chain_system, policy):
        projected = policy_output_schedules(policy(chain_system))
        assert projected
        assert all(is_serializable(chain_system, s) for s in projected)

    def test_tree_and_2pl_both_stay_inside_serializable_set(self, chain_system, policy):
        # Our tree protocol locks the connecting subtree up front, so on this
        # tiny chain it is *more* conservative than 2PL; the point of the test
        # is that both remain correct while differing in permissiveness.
        tree_out = policy_output_schedules(policy(chain_system))
        two_pl_out = policy_output_schedules(TwoPhaseLockingPolicy()(chain_system))
        assert all(is_serializable(chain_system, s) for s in tree_out)
        assert all(is_serializable(chain_system, s) for s in two_pl_out)
        assert tree_out and two_pl_out

    def test_unrelated_variable_treated_as_isolated_root(self):
        system = make_system(["r", "q"], ["q"])
        policy = TreeLockingPolicy({"m": "r"})
        projected = policy_output_schedules(policy(system))
        assert all(is_serializable(system, s) for s in projected)
