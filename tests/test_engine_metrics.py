"""Metrics serialization and sharded-merge consistency.

Pins the lossless ``to_dict``/``from_dict`` round-trip contract on
:class:`~repro.engine.metrics.Histogram` and
:class:`~repro.engine.metrics.Metrics`, and the
``merged_metrics`` dedup rule on sharded results (a registry shared
across shards must be folded exactly once).
"""

import json
import random

import pytest

from repro.engine.metrics import Histogram, Metrics, NullMetrics
from repro.engine.runtime import ExecutionResult, ShardedExecutionResult


def _result(metrics):
    return ExecutionResult(
        protocol_name="p",
        committed=1,
        aborted_attempts=0,
        restarts=0,
        gave_up=0,
        operations_issued=1,
        blocks=0,
        store_snapshot={},
        committed_serializable=True,
        per_transaction={},
        metrics=metrics,
    )


class TestHistogramRoundTrip:
    def test_round_trip_preserves_everything(self):
        histogram = Histogram()
        rng = random.Random(7)
        for _ in range(500):
            histogram.observe(rng.uniform(0, 2000))
        rebuilt = Histogram.from_dict(histogram.to_dict())
        assert rebuilt.bounds == histogram.bounds
        assert rebuilt.buckets == histogram.buckets
        assert rebuilt.count == histogram.count
        assert rebuilt.total == histogram.total
        assert rebuilt.mean == histogram.mean
        assert rebuilt.std == histogram.std
        assert rebuilt.min == histogram.min
        assert rebuilt.max == histogram.max
        for q in (0.0, 0.5, 0.95, 1.0):
            assert rebuilt.quantile(q) == histogram.quantile(q)

    def test_round_trip_custom_bounds_and_empty(self):
        histogram = Histogram(bounds=[1, 10, 100])
        rebuilt = Histogram.from_dict(histogram.to_dict())
        assert rebuilt.bounds == (1, 10, 100)
        assert rebuilt.count == 0
        assert rebuilt.min is None and rebuilt.max is None

    def test_dump_is_json_safe(self):
        histogram = Histogram()
        histogram.observe(3.5)
        parsed = json.loads(json.dumps(histogram.to_dict()))
        assert Histogram.from_dict(parsed).mean == histogram.mean


class TestMetricsRoundTrip:
    def test_round_trip_report_identical(self):
        metrics = Metrics()
        rng = random.Random(11)
        for _ in range(200):
            metrics.incr("kernel.steps")
            metrics.observe("sim.latency", rng.expovariate(0.01))
        metrics.incr("protocol.blocks", 17)
        rebuilt = Metrics.from_dict(metrics.to_dict())
        assert rebuilt.report() == metrics.report()
        assert rebuilt.snapshot() == metrics.snapshot()

    def test_round_trip_survives_json(self):
        metrics = Metrics()
        metrics.observe("h", 4.0)
        metrics.incr("c", 3)
        rebuilt = Metrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
        assert rebuilt.count("c") == 3
        assert rebuilt.histogram("h").count == 1

    def test_rebuilt_registry_merges_like_the_original(self):
        left, right = Metrics(), Metrics()
        for value in (1.0, 50.0, 3000.0):
            left.observe("h", value)
            right.observe("h", value * 2)
        merged_direct = Metrics()
        merged_direct.merge(left)
        merged_direct.merge(right)
        merged_rebuilt = Metrics()
        merged_rebuilt.merge(Metrics.from_dict(left.to_dict()))
        merged_rebuilt.merge(Metrics.from_dict(right.to_dict()))
        assert merged_rebuilt.report() == merged_direct.report()


class TestMergedMetricsDedup:
    def test_shared_registry_is_folded_once(self):
        shared = Metrics()
        shared.incr("kernel.steps", 10)
        result = ShardedExecutionResult(
            per_shard={0: _result(shared), 1: _result(shared), 2: _result(shared)},
            store_snapshot={},
        )
        assert result.merged_metrics().count("kernel.steps") == 10

    def test_private_registries_are_summed(self):
        per_shard = {}
        for shard in range(3):
            private = Metrics()
            private.incr("kernel.steps", 10)
            per_shard[shard] = _result(private)
        result = ShardedExecutionResult(per_shard=per_shard, store_snapshot={})
        assert result.merged_metrics().count("kernel.steps") == 30

    def test_missing_registries_are_skipped(self):
        result = ShardedExecutionResult(
            per_shard={0: _result(None), 1: _result(Metrics())},
            store_snapshot={},
        )
        assert result.merged_metrics().count("anything") == 0

    def test_null_metrics_round_trip_is_empty(self):
        null = NullMetrics()
        null.incr("ignored")
        null.observe("ignored", 5.0)
        assert Metrics.from_dict(null.to_dict()).names() == []
