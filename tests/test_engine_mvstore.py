"""Unit tests for the multi-version store: chains, snapshots, GC, sharding."""

import pytest

from repro.engine.mvstore import (
    MultiVersionDataStore,
    ShardedMultiVersionDataStore,
    VersionRecord,
    ensure_multiversion,
)
from repro.engine.storage import DataStore, StorageError
from repro.engine.workloads import partition_of


class TestVersionChains:
    def test_initial_versions(self):
        store = MultiVersionDataStore({"a": 1, "b": 2})
        assert store.read("a") == 1
        record = store.read_as_of("a", 0)
        assert record == VersionRecord(value=1, begin_ts=0, end_ts=None, writer=None)
        assert len(store) == 2
        assert "a" in store and "c" not in store

    def test_unknown_key_raises(self):
        store = MultiVersionDataStore({"a": 1})
        with pytest.raises(StorageError):
            store.read_as_of("missing", 10)
        with pytest.raises(StorageError):
            store.read("missing")

    def test_install_appends_and_splices_intervals(self):
        store = MultiVersionDataStore({"a": 1})
        store.install("a", 2, 5, writer=10)
        store.install("a", 3, 9, writer=11)
        chain = store.version_chain("a")
        assert [(v.begin_ts, v.end_ts) for v in chain] == [(0, 5), (5, 9), (9, None)]
        assert store.read_as_of("a", 4).value == 1
        assert store.read_as_of("a", 5).value == 2
        assert store.read_as_of("a", 100).value == 3
        assert store.version_order("a") == (None, 10, 11)

    def test_install_into_the_past(self):
        """MVTO installs at start timestamps, possibly below newer versions."""
        store = MultiVersionDataStore({"a": 1})
        store.install("a", 9, 8, writer=2)
        store.install("a", 5, 4, writer=1)  # older writer commits later
        assert [(v.value, v.begin_ts, v.end_ts) for v in store.version_chain("a")] == [
            (1, 0, 4),
            (5, 4, 8),
            (9, 8, None),
        ]
        assert store.read_as_of("a", 6).value == 5

    def test_duplicate_timestamp_rejected(self):
        store = MultiVersionDataStore({"a": 1})
        store.install("a", 2, 3, writer=1)
        with pytest.raises(ValueError, match="already exists"):
            store.install("a", 99, 3, writer=2)

    def test_read_as_of_before_first_version_raises(self):
        store = MultiVersionDataStore({"a": 1}, initial_ts=10)
        with pytest.raises(StorageError):
            store.read_as_of("a", 5)

    def test_snapshot_as_of_is_consistent(self):
        store = MultiVersionDataStore({"a": 1, "b": 1})
        store.install("a", 2, 3, writer=1)
        store.install("b", 2, 7, writer=2)
        assert store.snapshot_as_of(5) == {"a": 2, "b": 1}
        assert store.snapshot() == {"a": 2, "b": 2}


class TestGarbageCollection:
    def test_collects_only_superseded_below_watermark(self):
        store = MultiVersionDataStore({"a": 0})
        for ts, writer in ((2, 1), (4, 2), (6, 3)):
            store.install("a", ts * 10, ts, writer=writer)
        dropped = store.collect_garbage(5)
        # versions ending at 2 and 4 are invisible at watermark 5 and beyond
        assert dropped == 2
        assert [v.begin_ts for v in store.version_chain("a")] == [4, 6]
        assert store.read_as_of("a", 5).value == 40
        assert store.versions_collected == 2

    def test_latest_version_always_survives(self):
        store = MultiVersionDataStore({"a": 0})
        store.install("a", 1, 1, writer=1)
        assert store.collect_garbage(100) == 1
        assert store.read("a") == 1

    def test_version_counters_survive_gc(self):
        store = MultiVersionDataStore({"a": 0})
        store.install("a", 1, 1, writer=1)
        store.install("a", 2, 2, writer=2)
        store.collect_garbage(10)
        assert store.total_versions_written() == 2
        assert store.version_number("a") == 2
        assert store.total_versions() == 1


class TestDataStoreFacade:
    def test_plain_write_installs_above_latest(self):
        store = MultiVersionDataStore({"a": 1})
        store.write("a", 5, writer=42)
        assert store.read("a") == 5
        assert store.read_version("a").writer == 42
        assert store.version_number("a") == 1
        assert store.latest("a").begin_ts == 1

    def test_apply_writes_batch(self):
        store = MultiVersionDataStore({"a": 1, "b": 2})
        store.apply_writes({"a": 10, "b": 20}, writer=7)
        assert store.snapshot() == {"a": 10, "b": 20}

    def test_write_creates_new_key(self):
        store = MultiVersionDataStore()
        store.write("fresh", 9)
        assert store.read("fresh") == 9

    def test_copy_is_independent(self):
        store = MultiVersionDataStore({"a": 1})
        store.install("a", 2, 4, writer=1)
        clone = store.copy()
        clone.install("a", 3, 8, writer=2)
        assert len(store.version_chain("a")) == 2
        assert len(clone.version_chain("a")) == 3

    def test_ensure_multiversion_wraps_plain_store(self):
        plain = DataStore({"a": 1})
        wrapped = ensure_multiversion(plain)
        assert wrapped is not plain
        assert wrapped.read_as_of("a", 0).value == 1
        mv = MultiVersionDataStore({"a": 1})
        assert ensure_multiversion(mv) is mv


class TestShardedMultiVersion:
    def test_shards_answer_snapshot_reads(self):
        initial = {f"p{p}:k{i}": 0 for p in range(2) for i in range(4)}
        store = ShardedMultiVersionDataStore(
            initial, num_shards=2, shard_of=partition_of
        )
        store.install("p0:k0", 5, 3, writer=1)
        assert store.read_as_of("p0:k0", 2).value == 0
        assert store.read_as_of("p0:k0", 3).value == 5
        assert store.version_order("p0:k0") == (None, 1)
        assert store.latest("p1:k0").value == 0

    def test_gc_spans_all_shards(self):
        store = ShardedMultiVersionDataStore({"a": 0, "b": 0}, num_shards=2)
        store.install("a", 1, 1, writer=1)
        store.install("b", 1, 1, writer=1)
        assert store.collect_garbage(10) == 2
        assert store.total_versions() == 2  # one surviving version per key

    def test_copy_preserves_multiversion_shards(self):
        store = ShardedMultiVersionDataStore({"a": 0}, num_shards=2)
        clone = store.copy()
        clone.install("a", 1, 1, writer=1)
        assert len(store.version_chain("a")) == 1
        assert len(clone.version_chain("a")) == 2
        assert isinstance(clone, ShardedMultiVersionDataStore)
