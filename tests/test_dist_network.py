"""Tests for the simulated network: determinism, faults, timers, crashes."""

from __future__ import annotations

import pytest

from repro.dist.network import LatencyModel, Message, SimulatedNetwork
from repro.engine.faults import (
    NetworkFaultSpec,
    PartitionWindow,
    network_plan_from,
)
from repro.engine.metrics import Metrics


class Recorder:
    """A node that logs every delivery and timer firing."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.accepting_messages = True
        self.accepting_timers = True
        self.log = []

    def on_message(self, now, message: Message) -> None:
        self.log.append(("msg", round(now, 9), message.kind, message.payload.get("n")))

    def on_timer(self, now, kind, payload) -> None:
        self.log.append(("timer", round(now, 9), kind, payload.get("n")))


def build(seed=0, latency=None, fault_spec=None, metrics=None):
    network = SimulatedNetwork(
        latency=latency,
        seed=seed,
        fault_plan=network_plan_from(fault_spec),
        metrics=metrics or Metrics(),
    )
    a = network.register(Recorder("a"))
    b = network.register(Recorder("b"))
    return network, a, b


class TestLatencyModel:
    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            LatencyModel(base=-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            LatencyModel(jitter=-0.5)

    def test_zero_jitter_is_constant(self):
        import random

        model = LatencyModel(base=2.0, jitter=0.0)
        assert model.sample(random.Random(0)) == 2.0


class TestDeterminism:
    def test_same_seed_same_delivery_order(self):
        def run(seed):
            network, a, b = build(seed=seed, latency=LatencyModel(1.0, 2.0))
            for n in range(30):
                network.send("a", "b", "ping", {"n": n})
            network.run()
            return b.log

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_jitter_reorders_messages(self):
        network, a, b = build(seed=1, latency=LatencyModel(1.0, 5.0))
        for n in range(20):
            network.send("a", "b", "ping", {"n": n})
        network.run()
        arrival = [entry[3] for entry in b.log]
        assert sorted(arrival) == list(range(20))
        assert arrival != list(range(20))  # at least one inversion

    def test_duplicate_names_rejected(self):
        network, a, b = build()
        with pytest.raises(ValueError, match="already registered"):
            network.register(Recorder("a"))

    def test_unknown_destination_rejected(self):
        network, a, b = build()
        with pytest.raises(KeyError, match="nobody"):
            network.send("a", "nobody", "ping", {})


class TestFaults:
    def test_loss_drops_messages(self):
        metrics = Metrics()
        network, a, b = build(
            seed=3,
            fault_spec=NetworkFaultSpec(loss_probability=0.5, seed=9),
            metrics=metrics,
        )
        for n in range(40):
            network.send("a", "b", "ping", {"n": n})
        network.run()
        snapshot = metrics.snapshot()
        assert snapshot["dist.net.dropped"] > 0
        assert len(b.log) == 40 - snapshot["dist.net.dropped"]

    def test_duplication_delivers_twice(self):
        metrics = Metrics()
        network, a, b = build(
            seed=3,
            fault_spec=NetworkFaultSpec(duplicate_probability=0.5, seed=9),
            metrics=metrics,
        )
        for n in range(40):
            network.send("a", "b", "ping", {"n": n})
        network.run()
        snapshot = metrics.snapshot()
        assert snapshot["dist.net.duplicated"] > 0
        assert len(b.log) == 40 + snapshot["dist.net.duplicated"]

    def test_partition_window_cuts_then_heals(self):
        spec = NetworkFaultSpec(
            partitions=(PartitionWindow(0.0, 10.0, frozenset({"b"})),)
        )
        network, a, b = build(seed=0, latency=LatencyModel(1.0, 0.0), fault_spec=spec)
        network.send("a", "b", "early", {"n": 0})  # t=0: severed
        network.set_timer("a", 15.0, "later", {"n": 1})
        network.run()
        # the early message died; after the window heals a new send flows
        assert ("msg", 1.0, "early", 0) not in b.log
        network.send("a", "b", "late", {"n": 2})
        network.run()
        assert b.log[-1] == ("msg", 16.0, "late", 2)


class TestTimers:
    def test_timer_fires_at_virtual_time(self):
        network, a, b = build()
        network.set_timer("a", 5.0, "tick", {"n": 1})
        network.run()
        assert a.log == [("timer", 5.0, "tick", 1)]

    def test_cancelled_timer_never_fires(self):
        network, a, b = build()
        timer_id = network.set_timer("a", 5.0, "tick", {"n": 1})
        network.cancel_timer(timer_id)
        network.run()
        assert a.log == []

    def test_negative_delay_rejected(self):
        network, a, b = build()
        with pytest.raises(ValueError, match="non-negative"):
            network.set_timer("a", -1.0, "tick")

    def test_run_until_leaves_future_events_queued(self):
        network, a, b = build()
        network.set_timer("a", 1.0, "early")
        network.set_timer("a", 50.0, "late")
        network.run(until=10.0)
        assert [entry[2] for entry in a.log] == ["early"]
        assert not network.idle
        network.run()
        assert [entry[2] for entry in a.log] == ["early", "late"]


class TestCrashSemantics:
    def test_crashed_node_loses_messages_and_timers(self):
        metrics = Metrics()
        network, a, b = build(latency=LatencyModel(1.0, 0.0), metrics=metrics)
        b.accepting_messages = False
        b.accepting_timers = False
        network.send("a", "b", "ping", {"n": 1})
        network.set_timer("b", 2.0, "tick", {"n": 2})
        network.run()
        assert b.log == []
        assert metrics.snapshot()["dist.net.dropped_at_node"] == 1

    def test_recover_timer_survives_the_crash(self):
        network, a, b = build()
        b.accepting_messages = False
        b.accepting_timers = False
        network.set_timer("b", 3.0, "recover", {"n": 9})
        network.run()
        assert b.log == [("timer", 3.0, "recover", 9)]

    def test_stale_timer_does_not_fire_into_restarted_node(self):
        # armed before the crash, firing after the restart: the timer
        # belongs to the dead incarnation and must be swallowed
        metrics = Metrics()
        network, a, b = build(metrics=metrics)
        network.set_timer("b", 5.0, "election", {"n": 1})
        network.run(until=1.0)
        b.accepting_messages = False  # crash at t=1
        b.accepting_timers = False
        network.bump_incarnation("b")
        b.accepting_messages = True  # restart at t=2, before the timer fires
        b.accepting_timers = True
        network.run()
        assert b.log == []
        assert metrics.snapshot()["dist.net.stale_timers"] == 1

    def test_new_incarnations_timers_still_fire(self):
        metrics = Metrics()
        network, a, b = build(metrics=metrics)
        network.set_timer("b", 5.0, "old", {"n": 1})
        network.bump_incarnation("b")
        network.set_timer("b", 6.0, "new", {"n": 2})
        network.run()
        assert b.log == [("timer", 6.0, "new", 2)]
        assert metrics.snapshot()["dist.net.stale_timers"] == 1

    def test_supervisor_timer_ignores_incarnations_and_crashes(self):
        # the restart timer models the external supervisor: it outlives
        # both the incarnation bump and the crashed-node timer drop
        network, a, b = build()
        network.set_timer("b", 4.0, "repl-restart", {"n": 7}, supervisor=True)
        b.accepting_messages = False
        b.accepting_timers = False
        network.bump_incarnation("b")
        network.run()
        assert b.log == [("timer", 4.0, "repl-restart", 7)]

    def test_incarnation_counter_starts_at_zero_and_increments(self):
        network, a, b = build()
        assert network.incarnation_of("b") == 0
        assert network.bump_incarnation("b") == 1
        assert network.bump_incarnation("b") == 2
        assert network.incarnation_of("a") == 0

    def test_runaway_event_loop_raises(self):
        network, a, b = build(latency=LatencyModel(1.0, 0.0))

        class Ponger(Recorder):
            def __init__(self, name, network):
                super().__init__(name)
                self.network = network

            def on_message(self, now, message):
                self.network.send(self.name, message.src, "pong", {})

        p = network.register(Ponger("p", network))
        q = network.register(Ponger("q", network))
        network.send("p", "q", "pong", {})
        with pytest.raises(RuntimeError, match="not converging"):
            network.run(max_events=100)
