"""Shared fixtures: the paper's example systems and a few synthetic ones."""

from __future__ import annotations

import pytest

from repro.core.examples import (
    banking_system,
    counter_pair_system,
    figure1_history,
    figure1_system,
    figure2_system,
    figure2_transaction,
)
from repro.core.instance import SystemInstance
from repro.core.semantics import IntegrityConstraint, Interpretation
from repro.core.transactions import (
    StepRef,
    Transaction,
    TransactionSystem,
    make_system,
    update_step,
)


@pytest.fixture
def figure1():
    """The Figure 1 instance (x+1 / 2x vs x+1) with several consistent states."""
    return figure1_system()


@pytest.fixture
def figure1_h():
    """The non-serializable but weakly serializable history (T11, T21, T12)."""
    return figure1_history()


@pytest.fixture
def banking():
    """The Section 2 banking instance."""
    return banking_system()


@pytest.fixture
def fig2_system():
    """The Figure 2 transaction (x, y, x, z) paired with a partner (x, y)."""
    return figure2_system()


@pytest.fixture
def counter_pair():
    """Two transactions locking x, y in opposite orders (Figure 3 shape)."""
    return counter_pair_system()


@pytest.fixture
def two_counter_instance():
    """Two increment transactions on a shared counter with constraint x >= 0.

    T1: x <- x + 1 ; x <- x - 1          (a balanced update)
    T2: x <- 2x                          (a doubling)
    Integrity constraint: x == 0, initial x = 0 (the Theorem 2 shape).
    """
    t1 = Transaction([update_step("x"), update_step("x")], name="T1")
    t2 = Transaction([update_step("x")], name="T2")
    system = TransactionSystem([t1, t2], name="theorem2-shape")
    interpretation = Interpretation(
        system=system,
        step_functions={
            StepRef(1, 1): lambda t: t + 1,
            StepRef(1, 2): lambda t1, t2: t2 - 1,
            StepRef(2, 1): lambda t: 2 * t,
        },
        initial_globals={"x": 0},
    )
    constraint = IntegrityConstraint(lambda g: g["x"] == 0, "x = 0")
    return SystemInstance(
        system=system,
        interpretation=interpretation,
        constraint=constraint,
        consistent_states=({"x": 0},),
    )


@pytest.fixture
def simple_rw_system():
    """A plain two-transaction read-modify-write system on two variables."""
    return make_system(["x", "y"], ["y", "x"], name="simple-rw")
