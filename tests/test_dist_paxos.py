"""The consensus core: elections, leases, replication, catch-up.

These tests drive :class:`PaxosReplica` groups directly on the
simulated network — no 2PC layer — to pin the consensus properties the
replicated participant builds on: exactly one established leader per
term, chosen-prefix agreement, follower catch-up after a crash, and a
quorum-suspicion signal that fires on partitions but never on healthy
split votes.
"""

from __future__ import annotations

import pytest

from repro.dist.network import SimulatedNetwork
from repro.dist.paxos import (
    FOLLOWER,
    LEADER,
    PaxosReplica,
    ReplicationConfig,
)
from repro.engine.metrics import Metrics


class Applier(PaxosReplica):
    """A replica whose state machine is just an append-only journal."""

    def __init__(self, *args, **kwargs) -> None:
        self.journal = []
        super().__init__(*args, **kwargs)

    def apply_command(self, now, index, command) -> None:
        self.journal.append((index, command))

    def reset_state(self, now) -> None:
        self.journal = []


def build_group(n=3, seed=0, config=None):
    network = SimulatedNetwork(seed=seed, metrics=Metrics())
    names = [f"g.r{i}" for i in range(n)]
    replicas = [
        network.register(
            Applier(
                name, "g", names, network, config=config, seed=seed * 1000 + i
            )
        )
        for i, name in enumerate(names)
    ]
    return network, replicas


def run_until(network, predicate, limit=400.0, step=20.0):
    # the step must exceed the election timeout: run(until=...) only
    # advances the clock by dispatching events, so a window shorter than
    # the first pending timer would spin without progress
    while network.now < limit:
        network.run(until=network.now + step)
        if predicate():
            return True
    return False


def established_leader(replicas):
    leaders = [
        r for r in replicas if r.alive and r.role == LEADER and r.is_established_leader()
    ]
    if not leaders:
        return None
    return max(leaders, key=lambda r: r.current_term)


class TestReplicationConfig:
    def test_bad_heartbeat_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(heartbeat_interval=0.0)

    def test_bad_suspect_after_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(suspect_after=0)


class TestElections:
    def test_group_elects_exactly_one_established_leader(self):
        network, replicas = build_group()
        assert run_until(network, lambda: established_leader(replicas))
        leaders = [r for r in replicas if r.role == LEADER]
        assert len(leaders) == 1
        leader = leaders[0]
        # the term no-op is chosen on a quorum
        assert leader.commit_index >= 1
        assert leader.log[leader._term_start_index][1] == ("noop",)

    def test_vote_is_granted_at_most_once_per_term(self):
        network, replicas = build_group(seed=3)
        run_until(network, lambda: established_leader(replicas))
        network.run(until=network.now + 100.0)
        for replica in replicas:
            grants = {}
            for term, candidate in replica.vote_grants:
                grants.setdefault(term, set()).add(candidate)
            for term, candidates in grants.items():
                assert len(candidates) == 1, (replica.name, term, candidates)

    def test_at_most_one_leader_per_term(self):
        network, replicas = build_group(seed=7)
        run_until(network, lambda: established_leader(replicas))
        network.run(until=network.now + 100.0)
        by_term = {}
        for replica in replicas:
            for stint in replica.leader_stints:
                by_term.setdefault(stint["term"], set()).add(stint["replica"])
        for term, names in by_term.items():
            assert len(names) == 1, (term, names)

    def test_healthy_group_never_suspects_quorum_loss(self):
        # even across seeds whose startup elections split, a group whose
        # members answer each other must not report repl-no-quorum
        for seed in range(6):
            network, replicas = build_group(seed=seed)
            run_until(network, lambda: established_leader(replicas))
            network.run(until=network.now + 60.0)
            assert not any(r.quorum_suspect() for r in replicas), seed

    def test_single_replica_group_is_its_own_leader(self):
        network, [replica] = build_group(n=1)
        assert run_until(network, lambda: established_leader([replica]), limit=60.0)
        assert replica.has_lease(network.now)


class TestLogReplication:
    def test_proposals_reach_every_journal_in_order(self):
        network, replicas = build_group()
        run_until(network, lambda: established_leader(replicas))
        leader = established_leader(replicas)
        for i in range(5):
            leader.propose(network.now, ("set", i))
        run_until(
            network,
            lambda: all(
                sum(cmd != ("noop",) for _i, cmd in r.journal) == 5
                for r in replicas
            ),
            limit=network.now + 120.0,
        )
        journals = [
            [cmd for _idx, cmd in r.journal if cmd != ("noop",)] for r in replicas
        ]
        assert journals[0] == [("set", i) for i in range(5)]
        assert all(j == journals[0] for j in journals)

    def test_committed_prefixes_agree_pairwise(self):
        network, replicas = build_group(seed=11)
        run_until(network, lambda: established_leader(replicas))
        leader = established_leader(replicas)
        for i in range(4):
            leader.propose(network.now, ("set", i))
        network.run(until=network.now + 80.0)
        for a in replicas:
            for b in replicas:
                agreed = min(a.commit_index, b.commit_index)
                assert a.log[:agreed] == b.log[:agreed], (a.name, b.name)

    def test_leader_holds_a_lease_under_heartbeats(self):
        network, replicas = build_group()
        run_until(network, lambda: established_leader(replicas))
        network.run(until=network.now + 30.0)
        leader = established_leader(replicas)
        assert leader is not None and leader.has_lease(network.now)


class TestCrashAndCatchUp:
    def test_leader_crash_elects_a_successor_and_logs_converge(self):
        network, replicas = build_group(seed=5)
        run_until(network, lambda: established_leader(replicas))
        first = established_leader(replicas)
        for i in range(3):
            first.propose(network.now, ("set", i))
        network.run(until=network.now + 30.0)
        first_term = first.current_term
        first.crash(network.now, restart_delay=40.0)

        def new_leader():
            leader = established_leader(replicas)
            return leader is not None and leader.name != first.name

        assert run_until(network, new_leader)
        successor = established_leader(replicas)
        assert successor.current_term > first_term

        # the restarted ex-leader catches up to the successor's log
        def converged():
            return (
                first.alive
                and all(len(r.log) == len(successor.log) for r in replicas)
                and all(r.last_applied == len(r.log) for r in replicas)
            )

        assert run_until(network, converged)
        assert all(r.log == successor.log for r in replicas)
        journals = [[cmd for _idx, cmd in r.journal] for r in replicas]
        assert all(j == journals[0] for j in journals)

    def test_chosen_commands_survive_the_crash(self):
        network, replicas = build_group(seed=9)
        run_until(network, lambda: established_leader(replicas))
        leader = established_leader(replicas)
        leader.propose(network.now, ("set", "durable"))
        run_until(
            network,
            lambda: all(("set", "durable") in [c for _i, c in r.journal] for r in replicas),
            limit=network.now + 60.0,
        )
        leader.crash(network.now, restart_delay=20.0)
        run_until(
            network,
            lambda: leader.alive and established_leader(replicas) is not None,
        )
        network.run(until=network.now + 60.0)
        for replica in replicas:
            assert ("set", "durable") in [cmd for _idx, cmd in replica.journal]

    def test_crash_is_idempotent_and_counted(self):
        network, replicas = build_group()
        run_until(network, lambda: established_leader(replicas))
        victim = replicas[0]
        victim.crash(network.now, restart_delay=10.0)
        victim.crash(network.now, restart_delay=10.0)  # no-op while down
        assert victim.crash_count == 1
        assert not victim.alive


class TestDeterminism:
    def test_same_seed_same_history(self):
        def signature(seed):
            network, replicas = build_group(seed=seed)
            run_until(network, lambda: established_leader(replicas))
            leader = established_leader(replicas)
            for i in range(3):
                leader.propose(network.now, ("set", i))
            network.run(until=network.now + 60.0)
            return [
                (r.name, r.current_term, r.log, r.commit_index) for r in replicas
            ]

        assert signature(4) == signature(4)
