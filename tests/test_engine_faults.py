"""Tests for the fault-injection layer: specs, plans, replay contracts.

Covers the engine-level :class:`FaultSpec`/:class:`FaultPlan` pair and
the network-level :class:`NetworkFaultSpec`/:class:`NetworkFaultPlan`
pair introduced with the distributed layer:

* validation rejects out-of-range probabilities and negative times with
  errors that name the offending field;
* a plan's injection stream is a pure function of (spec seed,
  consultation order) — rebuilt plans replay byte-identically;
* partition drops are deterministic and consume no RNG draws, so a
  partition window never perturbs the seeded loss/duplication stream.
"""

from __future__ import annotations

import pytest

from repro.engine.faults import (
    ABORT_ACTION,
    COMMIT_STAGE,
    DROP_ACTION,
    DUPLICATE_ACTION,
    FaultPlan,
    FaultSpec,
    NetworkFaultPlan,
    NetworkFaultSpec,
    OPERATION_STAGE,
    PartitionWindow,
    STALL_ACTION,
    network_plan_from,
    plan_from,
)


class TestFaultSpecValidation:
    @pytest.mark.parametrize(
        "field", ["abort_probability", "stall_probability", "commit_stall_probability"]
    )
    @pytest.mark.parametrize("value", [-0.1, -1.0, 1.5, 2.0])
    def test_out_of_range_probability_rejected(self, field, value):
        with pytest.raises(ValueError) as excinfo:
            FaultSpec(**{field: value})
        assert field in str(excinfo.value)
        assert "[0, 1]" in str(excinfo.value)

    def test_negative_bias_multiplier_rejected(self):
        with pytest.raises(ValueError, match="bias_multiplier"):
            FaultSpec(bias_multiplier=-1.0)

    def test_boundary_probabilities_accepted(self):
        FaultSpec(abort_probability=0.0, stall_probability=1.0)
        FaultSpec(commit_stall_probability=1.0)

    def test_plan_from_none_is_none(self):
        assert plan_from(None) is None
        assert plan_from(FaultSpec()) is not None


class TestFaultPlanDeterminism:
    CONSULTS = [
        (1, OPERATION_STAGE, "x"),
        (2, COMMIT_STAGE, None),
        (1, OPERATION_STAGE, "hot"),
        (3, OPERATION_STAGE, "y"),
        (2, COMMIT_STAGE, None),
    ] * 20

    def test_rebuilt_plan_replays_identically(self):
        spec = FaultSpec(
            abort_probability=0.2,
            stall_probability=0.3,
            commit_stall_probability=0.25,
            biased_keys=frozenset({"hot"}),
            seed=42,
        )
        first = FaultPlan(spec)
        second = FaultPlan(spec)
        actions_a = [first.intercept(*consult) for consult in self.CONSULTS]
        actions_b = [second.intercept(*consult) for consult in self.CONSULTS]
        assert actions_a == actions_b
        assert [str(e) for e in first.events] == [str(e) for e in second.events]
        assert any(a in (ABORT_ACTION, STALL_ACTION) for a in actions_a)

    def test_max_injections_caps_but_keeps_consuming_draws(self):
        spec = FaultSpec(abort_probability=1.0, max_injections=3, seed=0)
        plan = FaultPlan(spec)
        actions = [plan.intercept(i, OPERATION_STAGE, None) for i in range(10)]
        assert actions[:3] == [ABORT_ACTION] * 3
        assert actions[3:] == [None] * 7
        assert plan.injections == 3


class TestPartitionWindowValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PartitionWindow(-1.0, 5.0)
        with pytest.raises(ValueError, match="non-negative"):
            PartitionWindow(0.0, -5.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="start <= end"):
            PartitionWindow(10.0, 5.0)

    def test_severs_is_half_open_and_group_aware(self):
        window = PartitionWindow(5.0, 10.0, frozenset({"a", "b"}))
        # inside the window: isolated <-> outside is severed, both ways
        assert window.severs("a", "c", 5.0)
        assert window.severs("c", "a", 7.5)
        # within the isolated group traffic still flows
        assert not window.severs("a", "b", 7.5)
        # outside the group entirely
        assert not window.severs("c", "d", 7.5)
        # half-open interval [start, end)
        assert not window.severs("a", "c", 4.999)
        assert not window.severs("a", "c", 10.0)


class TestNetworkFaultSpecValidation:
    @pytest.mark.parametrize("field", ["loss_probability", "duplicate_probability"])
    @pytest.mark.parametrize("value", [-0.5, 1.1])
    def test_out_of_range_probability_rejected(self, field, value):
        with pytest.raises(ValueError) as excinfo:
            NetworkFaultSpec(**{field: value})
        assert field in str(excinfo.value)

    def test_probability_sum_over_one_rejected(self):
        with pytest.raises(ValueError, match="must not exceed 1"):
            NetworkFaultSpec(loss_probability=0.6, duplicate_probability=0.6)

    def test_network_plan_from_none_is_none(self):
        assert network_plan_from(None) is None
        assert network_plan_from(NetworkFaultSpec()) is not None


class TestNetworkFaultPlanDeterminism:
    SENDS = [
        ("coordinator", "shard0", "prepare", 1.0),
        ("shard0", "coordinator", "vote", 2.5),
        ("coordinator", "shard1", "prepare", 1.0),
        ("shard1", "coordinator", "vote", 3.0),
        ("coordinator", "shard0", "decision", 4.0),
    ] * 30

    def test_rebuilt_plan_replays_identically(self):
        spec = NetworkFaultSpec(
            loss_probability=0.2, duplicate_probability=0.15, seed=7
        )
        first = NetworkFaultPlan(spec)
        second = NetworkFaultPlan(spec)
        actions_a = [first.intercept(*send) for send in self.SENDS]
        actions_b = [second.intercept(*send) for send in self.SENDS]
        assert actions_a == actions_b
        assert [str(e) for e in first.events] == [str(e) for e in second.events]
        assert DROP_ACTION in actions_a and DUPLICATE_ACTION in actions_a

    def test_partition_drops_consume_no_randomness(self):
        """A partition window must not shift the seeded loss stream."""
        base = NetworkFaultSpec(loss_probability=0.3, seed=11)
        windowed = NetworkFaultSpec(
            loss_probability=0.3,
            seed=11,
            partitions=(PartitionWindow(0.0, 100.0, frozenset({"shard9"})),),
        )
        plain = NetworkFaultPlan(base)
        partitioned = NetworkFaultPlan(windowed)
        outcomes = []
        for send in self.SENDS:
            outcomes.append(plain.intercept(*send))
            # interleave a partition-severed send: deterministic drop,
            # no RNG draw, so the non-partitioned stream stays aligned
            assert (
                partitioned.intercept("coordinator", "shard9", "prepare", 1.0)
                == DROP_ACTION
            )
            assert partitioned.intercept(*send) == outcomes[-1]

    def test_max_injections_caps_seeded_faults_only(self):
        spec = NetworkFaultSpec(
            loss_probability=1.0,
            max_injections=2,
            seed=0,
            partitions=(PartitionWindow(0.0, 10.0, frozenset({"iso"})),),
        )
        plan = NetworkFaultPlan(spec)
        # a partition drop up front must not eat into the seeded cap
        assert plan.intercept("a", "iso", "m", 0.0) == DROP_ACTION
        assert plan.intercept("a", "b", "m", 0.0) == DROP_ACTION
        assert plan.intercept("a", "b", "m", 0.0) == DROP_ACTION
        assert plan.intercept("a", "b", "m", 0.0) is None
        # partition drops keep firing past the cap — they are topology,
        # not injected chance
        assert plan.intercept("a", "iso", "m", 5.0) == DROP_ACTION
