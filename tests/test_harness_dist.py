"""The distributed chaos harness: scenarios, oracles, cells, CLI.

Everything above :mod:`repro.dist` itself — the seeded
cross-shard-transfer scenario builder, the five distributed oracles,
the run-twice replay-pinning cell runner, and the ``--dist`` CLI entry
the chaos-soak CI job drives.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.dist.recovery import CRASH_POINTS
from repro.harness.__main__ import main as harness_main
from repro.harness.oracles import evaluate_dist_run
from repro.harness.runner import DistCellOutcome, run_dist_cell, run_dist_seeds
from repro.harness.scenarios import DIST_PLANS, build_dist_scenario


class TestDistScenarioBuilder:
    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="plan"):
            build_dist_scenario(0, plan="gamma-rays")

    @pytest.mark.parametrize("plan", DIST_PLANS)
    def test_rebuild_is_identical(self, plan):
        a = build_dist_scenario(5, plan=plan, quick=True)
        b = build_dist_scenario(5, plan=plan, quick=True)
        assert a.initial_data == b.initial_data
        assert [spec.name for spec in a.specs] == [spec.name for spec in b.specs]
        assert a.network_faults == b.network_faults
        assert a.crash_specs == b.crash_specs

    def test_plans_carry_their_chaos(self):
        none = build_dist_scenario(2, plan="none", quick=True)
        assert none.network_faults is None and none.crash_specs == ()
        loss = build_dist_scenario(2, plan="loss", quick=True)
        assert loss.network_faults is not None
        assert loss.network_faults.loss_probability > 0
        crash = build_dist_scenario(2, plan="crash", quick=True)
        assert crash.crash_specs
        for spec in crash.crash_specs:
            assert spec.transition in CRASH_POINTS

    def test_seeds_vary_the_topology(self):
        shapes = {
            build_dist_scenario(seed, quick=False).num_shards for seed in range(12)
        }
        assert len(shapes) > 1

    def test_quick_shrinks_the_batch(self):
        quick = build_dist_scenario(1, quick=True)
        full = build_dist_scenario(1, quick=False)
        assert len(quick.specs) <= len(full.specs)

    def test_specs_actually_cross_shards(self):
        scenario = build_dist_scenario(3, quick=True)
        prefixes_per_spec = [
            {op.key.split(":", 1)[0] for op in spec.operations}
            for spec in scenario.specs
        ]
        assert any(len(prefixes) > 1 for prefixes in prefixes_per_spec)

    def test_describe_names_the_chaos(self):
        text = build_dist_scenario(0, plan="crash", quick=True).describe()
        assert "plan=crash" in text and "CrashSpec" in text


class TestDistOracles:
    def _clean_cell(self):
        from repro.harness.runner import _run_dist_scenario

        scenario = build_dist_scenario(0, plan="none", quick=True)
        return scenario, _run_dist_scenario(scenario)

    def test_clean_run_passes_all_five(self):
        scenario, report = self._clean_cell()
        verdicts = evaluate_dist_run(scenario, report)
        assert [v.oracle for v in verdicts] == [
            "dist-conservation",
            "dist-atomicity",
            "dist-replay",
            "dist-locks",
            "dist-taxonomy",
        ]
        assert all(v.ok and v.required for v in verdicts)

    def test_conservation_catches_minted_money(self):
        scenario, report = self._clean_cell()
        key = next(iter(report.final_snapshot))
        report.final_snapshot[key] += 1
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-conservation"].ok
        assert "sum(balances)" in verdicts["dist-conservation"].detail

    def test_replay_catches_divergent_state(self):
        # conserve the total but swap two balances: conservation stays
        # green while the log replay no longer reproduces the snapshot
        scenario, report = self._clean_cell()
        keys = sorted(report.final_snapshot)
        a, b = keys[0], keys[-1]
        report.final_snapshot[a], report.final_snapshot[b] = (
            report.final_snapshot[b] + 1,
            report.final_snapshot[a] - 1,
        )
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert verdicts["dist-conservation"].ok
        assert not verdicts["dist-replay"].ok

    def test_atomicity_catches_a_partially_applied_commit(self):
        scenario, report = self._clean_cell()
        committed_ids = [txn_id for txn_id, _writes in report.committed]
        assert committed_ids
        victim = committed_ids[0]
        # erase the apply record on one shard that holds the txn
        for participant in report.participants.values():
            if victim in participant.applied:
                participant.applied.discard(victim)
                break
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-atomicity"].ok
        assert "never applied" in verdicts["dist-atomicity"].detail

    def test_locks_catch_an_orphan(self):
        scenario, report = self._clean_cell()
        participant = next(iter(report.participants.values()))
        participant.locks["s0:phantom"] = 999
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-locks"].ok

    def test_taxonomy_catches_an_uncoded_abort(self):
        scenario, report = self._clean_cell()
        from repro.dist.engine import AttemptRecord

        report.attempts[0].append(
            AttemptRecord(0, 9, None, "abort", "mystery-code", "???")
        )
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-taxonomy"].ok
        assert "mystery-code" in verdicts["dist-taxonomy"].detail


class TestDistCells:
    @pytest.mark.parametrize("plan", DIST_PLANS)
    def test_quick_cells_conform(self, plan):
        outcome = run_dist_cell(build_dist_scenario(0, plan=plan, quick=True))
        assert outcome.ok, outcome.violations
        assert outcome.replay_ok
        assert outcome.committed > 0

    def test_crash_cells_actually_crash(self):
        outcome = run_dist_cell(build_dist_scenario(0, plan="crash", quick=True))
        assert outcome.crashes >= 1

    def test_violations_property_filters_required_failures(self):
        outcome = run_dist_cell(build_dist_scenario(1, plan="none", quick=True))
        assert outcome.violations == ()
        broken = dataclasses.replace(outcome, replay_ok=False)
        assert not broken.ok and broken.violations == ()

    def test_seed_sweep_reports_and_summaries(self):
        reports = run_dist_seeds([0, 1], quick=True)
        assert len(reports) == 2
        for report in reports:
            assert report.ok
            assert len(report.outcomes) == len(DIST_PLANS)
            assert f"dist seed {report.seed}" in report.summary()
            assert report.summary().endswith("ok")

    def test_plan_filter_restricts_the_matrix(self):
        [report] = run_dist_seeds([3], plans=("loss",), quick=True)
        assert [outcome.plan for _s, outcome in report.outcomes] == ["loss"]

    def test_render_failures_names_the_replay_command(self):
        [report] = run_dist_seeds([4], plans=("crash",), quick=True)
        scenario, outcome = report.outcomes[0]
        report.outcomes[0] = (scenario, dataclasses.replace(outcome, replay_ok=False))
        text = report.render_failures()
        assert "replay mismatch" in text
        assert "python -m repro.harness --dist --seed 4 --plan crash" in text


class TestDistCLI:
    def test_dist_sweep_invocation(self, capsys):
        code = harness_main(["--dist", "--seed", "0..1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all conforming" in out
        assert "dist seed 0" in out and "dist seed 1" in out

    def test_plan_pin_and_report_file(self, tmp_path, capsys):
        path = tmp_path / "dist-report.txt"
        code = harness_main(
            ["--dist", "--seed", "2", "--plan", "crash", "--quick",
             "--report", str(path)]
        )
        assert code == 0
        assert "all conforming" in path.read_text()
        assert "crash:" in capsys.readouterr().out
