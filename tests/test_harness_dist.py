"""The distributed chaos harness: scenarios, oracles, cells, CLI.

Everything above :mod:`repro.dist` itself — the seeded
cross-shard-transfer scenario builder, the five distributed oracles,
the run-twice replay-pinning cell runner, and the ``--dist`` CLI entry
the chaos-soak CI job drives.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.dist.recovery import CRASH_POINTS
from repro.dist.replication import REPL_CRASH_POINTS
from repro.harness.__main__ import main as harness_main
from repro.harness.oracles import evaluate_dist_run
from repro.harness.runner import DistCellOutcome, run_dist_cell, run_dist_seeds
from repro.harness.scenarios import DIST_PLANS, build_dist_scenario


class TestDistScenarioBuilder:
    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="plan"):
            build_dist_scenario(0, plan="gamma-rays")

    @pytest.mark.parametrize("plan", DIST_PLANS)
    def test_rebuild_is_identical(self, plan):
        a = build_dist_scenario(5, plan=plan, quick=True)
        b = build_dist_scenario(5, plan=plan, quick=True)
        assert a.initial_data == b.initial_data
        assert [spec.name for spec in a.specs] == [spec.name for spec in b.specs]
        assert a.network_faults == b.network_faults
        assert a.crash_specs == b.crash_specs

    def test_plans_carry_their_chaos(self):
        none = build_dist_scenario(2, plan="none", quick=True)
        assert none.network_faults is None and none.crash_specs == ()
        loss = build_dist_scenario(2, plan="loss", quick=True)
        assert loss.network_faults is not None
        assert loss.network_faults.loss_probability > 0
        crash = build_dist_scenario(2, plan="crash", quick=True)
        assert crash.crash_specs
        for spec in crash.crash_specs:
            assert spec.transition in CRASH_POINTS
        partition = build_dist_scenario(2, plan="partition", quick=True)
        assert partition.network_faults is not None
        assert partition.network_faults.partitions

    def test_replicated_plans_target_replica_processes(self):
        # with a replica group per shard, the chaos retargets individual
        # replica processes ("shardN.rM") instead of whole shards
        crash = build_dist_scenario(2, plan="crash", quick=True, replicas=3)
        assert crash.replicas == 3
        assert crash.replica_crashes
        for spec in crash.replica_crashes:
            assert spec.transition in REPL_CRASH_POINTS
        partition = build_dist_scenario(2, plan="partition", quick=True, replicas=3)
        [window] = partition.network_faults.partitions
        assert all(".r" in name for name in window.isolated)
        # the replica axis must not perturb the base scenario: same seed,
        # same workload, with and without replication
        flat = build_dist_scenario(2, plan="crash", quick=True, replicas=1)
        assert flat.initial_data == crash.initial_data
        assert [s.name for s in flat.specs] == [s.name for s in crash.specs]
        assert "replicas=3" in crash.describe()

    def test_seeds_vary_the_topology(self):
        shapes = {
            build_dist_scenario(seed, quick=False).num_shards for seed in range(12)
        }
        assert len(shapes) > 1

    def test_quick_shrinks_the_batch(self):
        quick = build_dist_scenario(1, quick=True)
        full = build_dist_scenario(1, quick=False)
        assert len(quick.specs) <= len(full.specs)

    def test_specs_actually_cross_shards(self):
        scenario = build_dist_scenario(3, quick=True)
        prefixes_per_spec = [
            {op.key.split(":", 1)[0] for op in spec.operations}
            for spec in scenario.specs
        ]
        assert any(len(prefixes) > 1 for prefixes in prefixes_per_spec)

    def test_describe_names_the_chaos(self):
        text = build_dist_scenario(0, plan="crash", quick=True).describe()
        assert "plan=crash" in text and "CrashSpec" in text


class TestDistOracles:
    def _clean_cell(self):
        from repro.harness.runner import _run_dist_scenario

        scenario = build_dist_scenario(0, plan="none", quick=True)
        return scenario, _run_dist_scenario(scenario)

    def test_clean_run_passes_all_five(self):
        scenario, report = self._clean_cell()
        verdicts = evaluate_dist_run(scenario, report)
        assert [v.oracle for v in verdicts] == [
            "dist-conservation",
            "dist-atomicity",
            "dist-replay",
            "dist-locks",
            "dist-taxonomy",
        ]
        assert all(v.ok and v.required for v in verdicts)

    def test_conservation_catches_minted_money(self):
        scenario, report = self._clean_cell()
        key = next(iter(report.final_snapshot))
        report.final_snapshot[key] += 1
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-conservation"].ok
        assert "sum(balances)" in verdicts["dist-conservation"].detail

    def test_replay_catches_divergent_state(self):
        # conserve the total but swap two balances: conservation stays
        # green while the log replay no longer reproduces the snapshot
        scenario, report = self._clean_cell()
        keys = sorted(report.final_snapshot)
        a, b = keys[0], keys[-1]
        report.final_snapshot[a], report.final_snapshot[b] = (
            report.final_snapshot[b] + 1,
            report.final_snapshot[a] - 1,
        )
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert verdicts["dist-conservation"].ok
        assert not verdicts["dist-replay"].ok

    def test_atomicity_catches_a_partially_applied_commit(self):
        scenario, report = self._clean_cell()
        committed_ids = [txn_id for txn_id, _writes in report.committed]
        assert committed_ids
        victim = committed_ids[0]
        # erase the apply record on one shard that holds the txn
        for participant in report.participants.values():
            if victim in participant.applied:
                participant.applied.discard(victim)
                break
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-atomicity"].ok
        assert "never applied" in verdicts["dist-atomicity"].detail

    def test_locks_catch_an_orphan(self):
        scenario, report = self._clean_cell()
        participant = next(iter(report.participants.values()))
        participant.locks["s0:phantom"] = 999
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-locks"].ok

    def test_taxonomy_catches_an_uncoded_abort(self):
        scenario, report = self._clean_cell()
        from repro.dist.engine import AttemptRecord

        report.attempts[0].append(
            AttemptRecord(0, 9, None, "abort", "mystery-code", "???")
        )
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["dist-taxonomy"].ok
        assert "mystery-code" in verdicts["dist-taxonomy"].detail


class TestReplicationOracles:
    def _replicated_cell(self, plan="none"):
        from repro.harness.runner import _run_dist_scenario

        scenario = build_dist_scenario(0, plan=plan, quick=True, replicas=3)
        return scenario, _run_dist_scenario(scenario)

    def test_replicated_run_passes_all_nine(self):
        scenario, report = self._replicated_cell()
        verdicts = evaluate_dist_run(scenario, report)
        assert [v.oracle for v in verdicts] == [
            "dist-conservation",
            "dist-atomicity",
            "dist-replay",
            "dist-locks",
            "dist-taxonomy",
            "repl-log-safety",
            "repl-lease-uniqueness",
            "repl-state-agreement",
            "repl-quorum-liveness",
        ]
        assert all(v.ok and v.required for v in verdicts)

    def test_flat_run_skips_the_replication_oracles(self):
        from repro.harness.runner import _run_dist_scenario

        scenario = build_dist_scenario(0, plan="none", quick=True)
        report = _run_dist_scenario(scenario)
        oracle_names = {v.oracle for v in evaluate_dist_run(scenario, report)}
        assert not any(name.startswith("repl-") for name in oracle_names)

    def test_log_safety_catches_a_diverged_committed_slot(self):
        scenario, report = self._replicated_cell()
        group = report.groups[sorted(report.groups)[0]]
        victim = group.replicas[1]
        assert victim.commit_index > 0
        term, _command = victim.log[0]
        victim.log[0] = (term, ("tampered",))
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["repl-log-safety"].ok
        assert "disagree" in verdicts["repl-log-safety"].detail

    def test_lease_uniqueness_catches_two_leaders_in_one_term(self):
        scenario, report = self._replicated_cell()
        group = report.groups[sorted(report.groups)[0]]
        stinted = [r for r in group.replicas if r.leader_stints]
        term = stinted[0].leader_stints[0]["term"]
        impostor = next(r for r in group.replicas if r is not stinted[0])
        impostor.leader_stints.append({"term": term, "replica": impostor.name})
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["repl-lease-uniqueness"].ok

    def test_lease_uniqueness_catches_a_double_vote(self):
        scenario, report = self._replicated_cell()
        group = report.groups[sorted(report.groups)[0]]
        voter = group.replicas[0]
        voter.vote_grants.append((1, "shard0.r1"))
        voter.vote_grants.append((1, "shard0.r2"))
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["repl-lease-uniqueness"].ok
        assert "granted" in verdicts["repl-lease-uniqueness"].detail

    def test_state_agreement_catches_a_tampered_store(self):
        scenario, report = self._replicated_cell()
        group = report.groups[sorted(report.groups)[0]]
        authority = group.authoritative
        key = sorted(authority.store.snapshot())[0]
        authority.store.write(key, authority.store.read(key) + 1, writer=None)
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["repl-state-agreement"].ok

    def test_quorum_liveness_catches_a_false_alarm(self):
        # a repl-no-quorum abort on the faultless plan means the group
        # cried quorum loss with no fault injected
        from repro.dist.engine import AttemptRecord
        from repro.engine.reasons import ABORT_REPL_NO_QUORUM

        scenario, report = self._replicated_cell(plan="none")
        report.attempts[0].append(
            AttemptRecord(0, 9, None, "abort", ABORT_REPL_NO_QUORUM, "shed")
        )
        verdicts = {v.oracle: v for v in evaluate_dist_run(scenario, report)}
        assert not verdicts["repl-quorum-liveness"].ok


class TestDistCells:
    @pytest.mark.parametrize("plan", DIST_PLANS)
    def test_quick_cells_conform(self, plan):
        outcome = run_dist_cell(build_dist_scenario(0, plan=plan, quick=True))
        assert outcome.ok, outcome.violations
        assert outcome.replay_ok
        assert outcome.committed > 0

    def test_crash_cells_actually_crash(self):
        outcome = run_dist_cell(build_dist_scenario(0, plan="crash", quick=True))
        assert outcome.crashes >= 1

    def test_violations_property_filters_required_failures(self):
        outcome = run_dist_cell(build_dist_scenario(1, plan="none", quick=True))
        assert outcome.violations == ()
        broken = dataclasses.replace(outcome, replay_ok=False)
        assert not broken.ok and broken.violations == ()

    def test_seed_sweep_reports_and_summaries(self):
        # the default matrix is plans × {flat, replicated}
        reports = run_dist_seeds([0, 1], quick=True)
        assert len(reports) == 2
        for report in reports:
            assert report.ok
            assert len(report.outcomes) == len(DIST_PLANS) * 2
            assert f"dist seed {report.seed}" in report.summary()
            assert "+r3" in report.summary()
            assert report.summary().endswith("ok")

    def test_plan_filter_restricts_the_matrix(self):
        [report] = run_dist_seeds([3], plans=("loss",), quick=True)
        assert [outcome.plan for _s, outcome in report.outcomes] == ["loss", "loss"]
        assert [outcome.replicas for _s, outcome in report.outcomes] == [1, 3]

    def test_replication_axis_restricts_the_matrix(self):
        [off] = run_dist_seeds([3], plans=("none",), quick=True, replication="off")
        assert [o.replicas for _s, o in off.outcomes] == [1]
        [on] = run_dist_seeds([3], plans=("none",), quick=True, replication="on")
        assert [o.replicas for _s, o in on.outcomes] == [3]
        assert on.ok

    def test_replicated_cells_conform_under_every_plan(self):
        for plan in DIST_PLANS:
            outcome = run_dist_cell(
                build_dist_scenario(0, plan=plan, quick=True, replicas=3)
            )
            assert outcome.ok, (plan, outcome.violations)
            assert outcome.replay_ok
            assert outcome.committed > 0

    def test_render_failures_names_the_replay_command(self):
        [report] = run_dist_seeds([4], plans=("crash",), quick=True)
        scenario, outcome = report.outcomes[0]
        report.outcomes[0] = (scenario, dataclasses.replace(outcome, replay_ok=False))
        text = report.render_failures()
        assert "replay mismatch" in text
        assert "python -m repro.harness --dist --seed 4 --plan crash" in text


class TestDistCLI:
    def test_dist_sweep_invocation(self, capsys):
        code = harness_main(["--dist", "--seed", "0..1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all conforming" in out
        assert "dist seed 0" in out and "dist seed 1" in out

    def test_plan_pin_and_report_file(self, tmp_path, capsys):
        path = tmp_path / "dist-report.txt"
        code = harness_main(
            ["--dist", "--seed", "2", "--plan", "crash", "--quick",
             "--report", str(path)]
        )
        assert code == 0
        assert "all conforming" in path.read_text()
        assert "crash:" in capsys.readouterr().out

    def test_replication_flag_pins_the_axis(self, capsys):
        code = harness_main(
            ["--dist", "--seed", "0", "--plan", "partition", "--quick",
             "--replication", "on"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "partition+r3:" in out
        assert "partition:" not in out.replace("partition+r3:", "")

    def test_replication_flag_rejects_nonsense(self):
        with pytest.raises(SystemExit):
            harness_main(["--dist", "--replication", "sometimes"])
